//! Failure injection: malformed and adversarial inputs must produce
//! errors (or graceful degradation), never panics — across all eight
//! evaluated algorithms, including the STRUT variants.

use etsc::core::{EarlyClassifier, Ecec, EcecConfig, Ects, EctsConfig};
use etsc::data::{Dataset, DatasetBuilder, MultiSeries, Series};
use etsc::eval::experiment::{AlgoSpec, RunConfig};

/// A run configuration trimmed far below `fast()` so fitting all eight
/// algorithms on the toy dataset stays test-suite cheap.
fn test_config() -> RunConfig {
    RunConfig {
        logistic_epochs: 20,
        weasel_features: 32,
        weasel_windows: 2,
        mlstm_epochs: 2,
        edsc_candidates: 100,
        ..RunConfig::fast()
    }
}

/// Every evaluated algorithm (all eight `AlgoSpec`s, so the STRUT
/// variants are exercised too), fitted on `data`.
fn trained_algorithms(data: &Dataset) -> Vec<Box<dyn EarlyClassifier>> {
    let config = test_config();
    AlgoSpec::ALL
        .into_iter()
        .map(|spec| {
            let mut clf = spec.build(data, &config);
            clf.fit(data)
                .unwrap_or_else(|e| panic!("{} fails on clean training data: {e}", spec.name()));
            clf
        })
        .collect()
}

fn toy() -> Dataset {
    let mut b = DatasetBuilder::new("fi");
    for i in 0..10 {
        let phase = i as f64 * 0.3;
        let slow: Vec<f64> = (0..20).map(|t| ((t as f64 * 0.3) + phase).sin()).collect();
        let fast: Vec<f64> = (0..20).map(|t| ((t as f64 * 1.6) + phase).sin()).collect();
        b.push_named(MultiSeries::univariate(Series::new(slow)), "slow");
        b.push_named(MultiSeries::univariate(Series::new(fast)), "fast");
    }
    b.build().unwrap()
}

#[test]
fn longer_test_instance_than_training_does_not_panic() {
    let data = toy();
    for clf in trained_algorithms(&data) {
        let long = MultiSeries::univariate(Series::new(vec![0.3; 50]));
        let p = clf.predict_early(&long).expect("longer instance handled");
        assert!(p.prefix_len <= 50, "{}", clf.name());
    }
}

#[test]
fn shorter_test_instance_than_training_does_not_panic() {
    let data = toy();
    for clf in trained_algorithms(&data) {
        let short = MultiSeries::univariate(Series::new(vec![0.3; 5]));
        let p = clf.predict_early(&short).expect("shorter instance handled");
        assert!(p.prefix_len <= 5, "{}", clf.name());
    }
}

#[test]
fn extreme_values_do_not_panic() {
    let data = toy();
    for clf in trained_algorithms(&data) {
        let huge = MultiSeries::univariate(Series::new(vec![1e12; 20]));
        let p = clf.predict_early(&huge);
        assert!(
            p.is_ok(),
            "{}: {:?}",
            clf.name(),
            p.err().map(|e| e.to_string())
        );
        let tiny = MultiSeries::univariate(Series::new(vec![-1e12; 20]));
        assert!(clf.predict_early(&tiny).is_ok(), "{}", clf.name());
    }
}

#[test]
fn single_class_training_data() {
    // Degenerate but possible after aggressive filtering: one class only.
    let mut b = DatasetBuilder::new("single");
    for i in 0..6 {
        b.push_named(
            MultiSeries::univariate(Series::new(vec![i as f64; 10])),
            "only",
        );
    }
    let data = b.build().unwrap();
    // ECTS and EDSC are distance/shapelet-based: they can fit one class.
    let mut ects = Ects::new(EctsConfig { support: 0 });
    ects.fit(&data).expect("1-NN handles a single class");
    let p = ects
        .predict_early(data.instance(0))
        .expect("predicts the only class");
    assert_eq!(p.label, 0);
    // WEASEL-based heads need ≥ 2 classes and must say so, not panic.
    let mut ecec = Ecec::new(EcecConfig {
        n_prefixes: 3,
        cv_folds: 2,
        ..EcecConfig::default()
    });
    assert!(ecec.fit(&data).is_err());
}

#[test]
fn two_instance_dataset_is_survivable_for_distance_methods() {
    let mut b = DatasetBuilder::new("tiny");
    b.push_named(MultiSeries::univariate(Series::new(vec![0.0; 8])), "a");
    b.push_named(MultiSeries::univariate(Series::new(vec![9.0; 8])), "b");
    let data = b.build().unwrap();
    let mut ects = Ects::new(EctsConfig { support: 0 });
    ects.fit(&data).unwrap();
    assert_eq!(
        ects.predict_early(data.instance(0)).unwrap().label,
        data.label(0)
    );
}

#[test]
fn constant_training_series_do_not_panic() {
    let mut b = DatasetBuilder::new("const");
    for i in 0..8 {
        let v = if i % 2 == 0 { 0.0 } else { 5.0 };
        b.push_named(
            MultiSeries::univariate(Series::new(vec![v; 12])),
            if i % 2 == 0 { "lo" } else { "hi" },
        );
    }
    let data = b.build().unwrap();
    for clf in trained_algorithms(&data) {
        let p = clf
            .predict_early(data.instance(1))
            .expect("constant data handled");
        assert!(p.prefix_len >= 1, "{}", clf.name());
    }
}

#[test]
fn nan_in_test_instance_degrades_gracefully() {
    // NaNs should be imputed upstream, but a stray NaN at predict time
    // must not panic (distances/transforms may treat it as worst-case).
    let data = toy();
    let mut dirty = vec![0.3; 20];
    dirty[7] = f64::NAN;
    for clf in trained_algorithms(&data) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            clf.predict_early(&MultiSeries::univariate(Series::new(dirty.clone())))
        }));
        assert!(result.is_ok(), "{} panicked on NaN input", clf.name());
    }
}

#[test]
fn infinities_in_test_instance_degrade_gracefully() {
    let data = toy();
    let mut dirty = vec![0.3; 20];
    dirty[3] = f64::INFINITY;
    dirty[11] = f64::NEG_INFINITY;
    for clf in trained_algorithms(&data) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            clf.predict_early(&MultiSeries::univariate(Series::new(dirty.clone())))
        }));
        assert!(result.is_ok(), "{} panicked on Inf input", clf.name());
    }
}

#[test]
fn empty_test_instance_errors_instead_of_panicking() {
    // A zero-length variable can reach predict when an upstream reader
    // emits a truncated record; it must surface as an error (or a
    // degraded prediction), never a panic.
    let data = toy();
    let empty = MultiSeries::univariate(Series::new(vec![]));
    for clf in trained_algorithms(&data) {
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| clf.predict_early(&empty)));
        assert!(result.is_ok(), "{} panicked on empty input", clf.name());
    }
}

#[test]
fn nan_in_training_data_never_panics() {
    // Training on dirty data may legitimately fail — but with an error,
    // not an abort.
    let mut b = DatasetBuilder::new("dirty-train");
    for i in 0..10 {
        let phase = i as f64 * 0.3;
        let mut slow: Vec<f64> = (0..20).map(|t| ((t as f64 * 0.3) + phase).sin()).collect();
        let mut fast: Vec<f64> = (0..20).map(|t| ((t as f64 * 1.6) + phase).sin()).collect();
        if i == 4 {
            slow[9] = f64::NAN;
            fast[2] = f64::INFINITY;
        }
        b.push_named(MultiSeries::univariate(Series::new(slow)), "slow");
        b.push_named(MultiSeries::univariate(Series::new(fast)), "fast");
    }
    let data = b.build().unwrap();
    let config = test_config();
    for spec in AlgoSpec::ALL {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut clf = spec.build(&data, &config);
            clf.fit(&data)
        }));
        assert!(
            result.is_ok(),
            "{} panicked while training on NaN/Inf data",
            spec.name()
        );
    }
}
