//! Integration tests of the observability layer end to end: a traced
//! matrix run must export a JSONL trace that parses back into a
//! well-formed span tree, the metrics registry must produce identical
//! counter snapshots across repeated parallel runs, and the unified
//! `MatrixRunner` must reproduce the legacy entry points' results
//! bit-for-bit (same seed, same metrics).

use std::collections::BTreeMap;

use etsc::data::Dataset;
use etsc::datasets::{GenOptions, PaperDataset};
use etsc::eval::experiment::{run_cell, AlgoSpec, RunConfig};
use etsc::eval::{MatrixRunner, Obs, SupervisorOptions};
use etsc::obs::{parse_jsonl, validate_prometheus, TraceRecord, TraceTree};

fn datasets() -> Vec<Dataset> {
    [PaperDataset::PowerCons, PaperDataset::DodgerLoopGame]
        .iter()
        .map(|d| {
            d.generate(GenOptions {
                height_scale: 0.12,
                length_scale: 0.25,
                seed: 9,
            })
        })
        .collect()
}

#[test]
fn trace_jsonl_round_trips_into_a_well_formed_span_tree() {
    let obs = Obs::enabled();
    let datasets = &datasets()[..1];
    let outcomes = MatrixRunner::new(RunConfig::fast())
        .obs(obs.clone())
        .run(datasets, &[AlgoSpec::Ects])
        .unwrap();
    assert_eq!(outcomes.len(), 1);

    // Emit → parse: the meta line, every span, and every event survive
    // the JSONL round trip.
    let dir = std::env::temp_dir().join("etsc-observability-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    obs.tracer.export_to_path(&path).unwrap();
    let log = parse_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(log.dropped, 0);
    assert_eq!(log.records.len(), obs.tracer.records().len());

    // Tree shape: one matrix root, every parent id resolves, every
    // event joins a recorded span.
    let tree = TraceTree::build(&log.records).unwrap();
    assert_eq!(tree.roots().len(), 1);
    let root = tree.span(tree.roots()[0]).unwrap();
    assert_eq!(root.name, "matrix");
    for record in &log.records {
        let parent = match record {
            TraceRecord::Span(s) => s.parent,
            TraceRecord::Event(e) => e.span,
        };
        if let Some(parent) = parent {
            assert!(tree.span(parent).is_some(), "dangling parent id {parent}");
        }
    }

    // Per-phase instrumentation: every fold span carries fit and
    // predict children, and each fit nests at least the ECTS fit work.
    let folds = tree.spans_named("fold");
    assert_eq!(folds.len(), RunConfig::fast().folds);
    for fold in &folds {
        let children: Vec<&str> = tree
            .children(fold.id)
            .iter()
            .filter_map(|&id| tree.span(id))
            .map(|s| s.name.as_str())
            .collect();
        assert!(children.contains(&"fit"), "fold children: {children:?}");
        assert!(children.contains(&"predict"), "fold children: {children:?}");
    }
}

/// Runs a 2x2 matrix on four worker threads with a fresh registry and
/// returns the counter snapshot.
fn parallel_counters() -> BTreeMap<String, u64> {
    let obs = Obs::enabled();
    let outcomes = MatrixRunner::new(RunConfig::fast())
        .parallel(4)
        .obs(obs.clone())
        .run(&datasets(), &[AlgoSpec::Ects, AlgoSpec::SWeasel])
        .unwrap();
    assert_eq!(outcomes.len(), 4);
    validate_prometheus(&obs.metrics.render_prometheus()).unwrap();
    obs.metrics.snapshot_counters()
}

#[test]
fn metrics_snapshot_is_deterministic_across_parallel_runs() {
    let first = parallel_counters();
    let second = parallel_counters();
    assert_eq!(first, second);
    assert_eq!(first["matrix_cells_total"], 4);
    assert_eq!(first["matrix_cells_ok_total"], 4);
    assert_eq!(
        first["eval_folds_total"],
        4 * RunConfig::fast().folds as u64
    );
}

/// The deterministic half of a [`RunResult`]: everything except the
/// wall-clock timings, which legitimately differ between executions.
fn fingerprint(r: &etsc::eval::RunResult) -> (AlgoSpec, String, Option<etsc::eval::Metrics>, bool) {
    (r.algo, r.dataset.clone(), r.metrics, r.dnf)
}

#[test]
fn matrix_runner_entry_points_agree() {
    let datasets = datasets();
    let algos = [AlgoSpec::Ects, AlgoSpec::SWeasel];
    let config = RunConfig::fast();

    // run_cell ≡ a single-cell MatrixRunner.
    let direct = run_cell(AlgoSpec::Ects, &datasets[0], &config, &Obs::disabled()).unwrap();
    let single = MatrixRunner::new(config.clone())
        .run_results(&datasets[..1], &algos[..1])
        .unwrap();
    assert_eq!(fingerprint(&direct), fingerprint(&single[0]));

    // parallel(n).run_results ≡ supervised(opts).run on the same matrix.
    let parallel = MatrixRunner::new(config.clone())
        .parallel(2)
        .run_results(&datasets, &algos)
        .unwrap();
    let options = SupervisorOptions {
        max_threads: 2,
        ..SupervisorOptions::default()
    };
    let supervised = MatrixRunner::new(config)
        .supervised(options)
        .run(&datasets, &algos)
        .unwrap();
    assert_eq!(parallel.len(), supervised.len());
    for (a, b) in parallel.iter().zip(&supervised) {
        let outcome = b.run_result().expect("supervised cell finished");
        assert_eq!(fingerprint(a), fingerprint(outcome));
        assert_eq!(a.algo, b.algo());
        assert_eq!(a.dataset, b.dataset());
    }
}
