//! Integration tests of the evaluation harness: cross-validated runs,
//! category aggregation, figure rendering, and the online heatmap —
//! the machinery behind every figure of the paper.

use std::collections::BTreeMap;

use etsc::data::stats::Category;
use etsc::datasets::{GenOptions, PaperDataset};
use etsc::eval::aggregate::aggregate_by_category;
use etsc::eval::experiment::{run_cell, AlgoSpec, RunConfig};
use etsc::eval::online::online_cell;
use etsc::eval::report::{figure_csv, render_figure, render_online_heatmap, FigureMetric};
use etsc::obs::Obs;

fn quick_config() -> RunConfig {
    RunConfig::fast()
}

#[test]
fn cv_run_produces_complete_results() {
    let data = PaperDataset::PowerCons.generate(GenOptions {
        height_scale: 0.2,
        length_scale: 0.4,
        seed: 3,
    });
    let r = run_cell(AlgoSpec::Ects, &data, &quick_config(), &Obs::disabled()).unwrap();
    assert_eq!(r.dataset, "PowerCons");
    assert!(!r.dnf);
    let m = r.metrics.unwrap();
    assert!(m.accuracy > 0.5);
    assert!(m.earliness > 0.0 && m.earliness <= 1.0);
    assert!(r.train_secs > 0.0);
    assert!(r.test_secs_per_instance > 0.0);
}

#[test]
fn sweep_aggregation_and_reports() {
    // Two datasets x two algorithms, aggregated into categories and
    // rendered through every figure path.
    let datasets = [PaperDataset::PowerCons, PaperDataset::DodgerLoopWeekend];
    let algos = [AlgoSpec::Ects, AlgoSpec::SWeasel];
    let config = quick_config();
    let mut results = Vec::new();
    let mut categories: BTreeMap<String, Vec<Category>> = BTreeMap::new();
    let mut meta = BTreeMap::new();
    for ds in datasets {
        let spec = ds.spec();
        let data = ds.generate(GenOptions {
            height_scale: (60.0 / spec.height as f64).min(1.0),
            length_scale: (48.0 / spec.length as f64).min(1.0),
            seed: 5,
        });
        categories.insert(spec.name.to_owned(), spec.categories.to_vec());
        meta.insert(
            spec.name.to_owned(),
            (spec.obs_frequency_secs, data.max_len()),
        );
        for algo in algos {
            results.push(run_cell(algo, &data, &config, &Obs::disabled()).unwrap());
        }
    }
    let aggregated = aggregate_by_category(&results, &categories);
    // PowerCons is Common+Univariate; DodgerLoopWeekend Imbalanced+Univariate.
    assert!(aggregated.contains_key(&Category::Common));
    assert!(aggregated.contains_key(&Category::Imbalanced));
    assert!(aggregated.contains_key(&Category::Univariate));
    let uni = &aggregated[&Category::Univariate];
    assert_eq!(uni[&AlgoSpec::Ects].n_datasets, 2);

    for metric in [
        FigureMetric::Accuracy,
        FigureMetric::F1,
        FigureMetric::Earliness,
        FigureMetric::HarmonicMean,
        FigureMetric::TrainMinutes,
    ] {
        let table = render_figure(&aggregated, metric);
        assert!(table.contains("Univariate"), "{table}");
        let csv = figure_csv(&aggregated, metric);
        assert!(csv.lines().count() > 2);
    }

    // Online heatmap.
    let cells: Vec<_> = results
        .iter()
        .map(|r| {
            let (freq, len) = meta[&r.dataset];
            online_cell(r, freq, len, &config)
        })
        .collect();
    let names: Vec<String> = datasets.iter().map(|d| d.spec().name.to_owned()).collect();
    let heatmap = render_online_heatmap(&cells, &names);
    assert!(heatmap.contains("PowerCons"));
    // PowerCons observations arrive every 600 s; all algorithms keep up.
    assert!(cells
        .iter()
        .filter(|c| c.dataset == "PowerCons")
        .all(|c| c.feasible()));
}

#[test]
fn results_are_reproducible_across_runs() {
    let data = PaperDataset::DodgerLoopGame.generate(GenOptions {
        height_scale: 0.3,
        length_scale: 0.2,
        seed: 11,
    });
    let a = run_cell(AlgoSpec::Ects, &data, &quick_config(), &Obs::disabled()).unwrap();
    let b = run_cell(AlgoSpec::Ects, &data, &quick_config(), &Obs::disabled()).unwrap();
    assert_eq!(a.metrics.unwrap(), b.metrics.unwrap());
}

#[test]
fn multivariate_dataset_runs_univariate_algo_through_voting() {
    let data = PaperDataset::Biological.generate(GenOptions {
        height_scale: 0.12,
        length_scale: 0.6,
        seed: 13,
    });
    assert_eq!(data.vars(), 3);
    let r = run_cell(AlgoSpec::Ects, &data, &quick_config(), &Obs::disabled()).unwrap();
    let m = r.metrics.unwrap();
    // Majority class is 80%; the ensemble must be in a sane band.
    assert!(m.accuracy > 0.5, "accuracy {}", m.accuracy);
}
