//! End-to-end integration: every ETSC algorithm trains on generated
//! paper datasets and produces sensible early predictions.

use etsc::core::{
    EarlyClassifier, Ecec, EcecConfig, EconomyK, EconomyKConfig, Ects, EctsConfig, Edsc,
    EdscConfig, Strut, StrutConfig, Teaser, TeaserConfig, TruncationSearch,
};
use etsc::data::Dataset;
use etsc::datasets::{GenOptions, PaperDataset};

fn small(ds: PaperDataset, seed: u64) -> Dataset {
    let spec = ds.spec();
    ds.generate(GenOptions {
        height_scale: (60.0 / spec.height as f64).min(1.0),
        length_scale: (48.0 / spec.length as f64).min(1.0),
        seed,
    })
}

/// Train/test split + accuracy/earliness audit shared by the cases.
fn audit(clf: &mut dyn EarlyClassifier, data: &Dataset) -> (f64, f64) {
    // Stratified split: generators interleave classes deterministically,
    // so a strided split can collide with the class pattern.
    let (train, test) = etsc::data::train_validation_split(data, 0.25, 99).expect("valid split");
    clf.fit(&data.subset(&train)).expect("training succeeds");
    let mut correct = 0usize;
    let mut prefix_sum = 0usize;
    let mut len_sum = 0usize;
    for &i in &test {
        let inst = data.instance(i);
        let p = clf.predict_early(inst).expect("prediction succeeds");
        assert!(p.prefix_len >= 1 && p.prefix_len <= inst.len());
        assert!(p.label < data.n_classes());
        if p.label == data.label(i) {
            correct += 1;
        }
        prefix_sum += p.prefix_len;
        len_sum += inst.len();
    }
    (
        correct as f64 / test.len() as f64,
        prefix_sum as f64 / len_sum as f64,
    )
}

#[test]
fn ects_on_power_cons() {
    let data = small(PaperDataset::PowerCons, 1);
    let mut clf = Ects::new(EctsConfig { support: 0 });
    let (acc, earliness) = audit(&mut clf, &data);
    assert!(acc > 0.7, "accuracy {acc}");
    assert!(earliness <= 1.0);
}

#[test]
fn economy_k_on_power_cons() {
    let data = small(PaperDataset::PowerCons, 2);
    let mut clf = EconomyK::new(EconomyKConfig {
        k_candidates: vec![2],
        ..EconomyKConfig::default()
    });
    let (acc, earliness) = audit(&mut clf, &data);
    assert!(acc > 0.7, "accuracy {acc}");
    assert!(earliness < 1.0, "ECO-K should not always wait");
}

#[test]
fn edsc_on_house_twenty() {
    let data = small(PaperDataset::HouseTwenty, 3);
    let mut clf = Edsc::new(EdscConfig {
        max_candidates: 600,
        ..EdscConfig::default()
    });
    let (acc, _) = audit(&mut clf, &data);
    assert!(acc > 0.6, "accuracy {acc}");
}

#[test]
fn ecec_on_dodger_game() {
    let data = small(PaperDataset::DodgerLoopGame, 4);
    let mut clf = Ecec::new(EcecConfig {
        n_prefixes: 6,
        cv_folds: 3,
        ..EcecConfig::default()
    });
    let (acc, _) = audit(&mut clf, &data);
    assert!(acc > 0.6, "accuracy {acc}");
}

#[test]
fn teaser_on_share_price() {
    // SharePriceIncrease's signal only exists in the final third and is
    // drowned in noise — the paper's hard-earliness case. Use a larger
    // sample so the WEASEL bags see enough instances.
    let spec = PaperDataset::SharePriceIncrease.spec();
    let data = PaperDataset::SharePriceIncrease.generate(GenOptions {
        height_scale: (160.0 / spec.height as f64).min(1.0),
        length_scale: (60.0 / spec.length as f64).min(1.0),
        seed: 8,
    });
    let mut clf = Teaser::new(TeaserConfig {
        s_prefixes: 6,
        ..TeaserConfig::default()
    });
    let (acc, earliness) = audit(&mut clf, &data);
    // Majority baseline is 0.65; the classifier must land in its band.
    assert!(acc >= 0.6, "accuracy {acc}");
    assert!(earliness <= 1.0);
}

#[test]
fn strut_weasel_on_pickup_gesture() {
    let data = small(PaperDataset::PickupGestureWiimoteZ, 6);
    let mut clf = Strut::s_weasel_with(
        StrutConfig {
            search: TruncationSearch::FixedGrid(vec![0.4, 0.7, 1.0]),
            ..StrutConfig::default()
        },
        Default::default(),
    );
    let (acc, _) = audit(&mut clf, &data);
    // 10-class problem; random is 0.1.
    assert!(acc > 0.3, "accuracy {acc}");
}

#[test]
fn strut_mini_on_basic_motions_multivariate() {
    let data = small(PaperDataset::BasicMotions, 7);
    assert!(data.vars() > 1);
    let mut clf = Strut::s_mini();
    let (acc, _) = audit(&mut clf, &data);
    // 4-class problem; random is 0.25.
    assert!(acc > 0.5, "accuracy {acc}");
}

#[test]
fn every_algorithm_commits_no_later_than_the_final_point() {
    let data = small(PaperDataset::DodgerLoopWeekend, 8);
    let train = data.subset(&(0..data.len() / 2).collect::<Vec<_>>());
    let mut algos: Vec<Box<dyn EarlyClassifier>> = vec![
        Box::new(Ects::with_defaults()),
        Box::new(Edsc::new(EdscConfig {
            max_candidates: 300,
            ..EdscConfig::default()
        })),
        Box::new(Teaser::new(TeaserConfig {
            s_prefixes: 4,
            ..TeaserConfig::default()
        })),
    ];
    for clf in &mut algos {
        clf.fit(&train).expect("training succeeds");
        for i in (data.len() / 2)..data.len().min(data.len() / 2 + 10) {
            let inst = data.instance(i);
            let p = clf.predict_early(inst).expect("prediction succeeds");
            assert!(p.prefix_len <= inst.len(), "{}", clf.name());
        }
    }
}
