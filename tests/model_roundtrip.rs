//! Model-store round-trip properties: for every algorithm, a model
//! persisted with `etsc::serve` and decoded back must (a) predict
//! bit-identically to the in-memory original on held-out instances and
//! (b) re-encode to exactly the bytes it was decoded from.
//!
//! The eight models are fitted once (tiny configuration, synthetic
//! PowerCons) and cached; the property then samples held-out instances.

use std::sync::OnceLock;

use proptest::prelude::*;

use etsc::data::Dataset;
use etsc::datasets::{GenOptions, PaperDataset};
use etsc::eval::experiment::{AlgoSpec, RunConfig};
use etsc::serve::{fit_model, StoredModel};

struct Fitted {
    algo: AlgoSpec,
    bytes: Vec<u8>,
    original: StoredModel,
    decoded: StoredModel,
}

fn tiny_config() -> RunConfig {
    RunConfig {
        folds: 2,
        ecec_prefixes: 4,
        teaser_prefixes_ucr: 4,
        teaser_prefixes_new: 4,
        edsc_candidates: 60,
        weasel_features: 32,
        weasel_windows: 2,
        logistic_epochs: 10,
        minirocket_features: 84,
        mlstm_epochs: 1,
        mlstm_filters: [2, 3, 2],
        mlstm_lstm_grid: vec![2],
        ..RunConfig::default()
    }
}

/// Train set, held-out set (same generator, different seed), and the
/// eight fitted + round-tripped models. Built once for all cases.
fn fixture() -> &'static (Dataset, Vec<Fitted>) {
    static CELL: OnceLock<(Dataset, Vec<Fitted>)> = OnceLock::new();
    CELL.get_or_init(|| {
        let gen = |seed| {
            PaperDataset::PowerCons.generate(GenOptions {
                height_scale: 0.1,
                length_scale: 0.2,
                seed,
            })
        };
        let train = gen(9);
        let held_out = gen(10);
        let config = tiny_config();
        let models = AlgoSpec::ALL
            .into_iter()
            .map(|algo| {
                let original = fit_model(algo, &train, &config)
                    .unwrap_or_else(|e| panic!("{} fits: {e}", algo.name()));
                let bytes = original.to_bytes().expect("model encodes");
                let decoded = StoredModel::from_bytes(&bytes).expect("model decodes");
                Fitted {
                    algo,
                    bytes,
                    original,
                    decoded,
                }
            })
            .collect();
        (held_out, models)
    })
}

/// Robustness: decoding any strict prefix of a valid model file must
/// return a clean error — never panic, never allocate unboundedly. This
/// covers torn writes at every possible byte offset.
#[test]
fn truncation_at_every_offset_errors_cleanly() {
    let train = PaperDataset::PowerCons.generate(GenOptions {
        height_scale: 0.1,
        length_scale: 0.1,
        seed: 9,
    });
    // A small subset keeps the encoded model tiny, so sweeping every
    // one of its byte offsets stays fast.
    let subset: Vec<usize> = (0..train.len().min(12)).collect();
    let train = train.subset(&subset);
    let stored = fit_model(AlgoSpec::Ects, &train, &tiny_config()).expect("ECTS fits");
    let bytes = stored.to_bytes().expect("model encodes");
    for len in 0..bytes.len() {
        assert!(
            StoredModel::from_bytes(&bytes[..len]).is_err(),
            "a {len}-byte prefix of a {}-byte model decoded successfully",
            bytes.len()
        );
    }
    StoredModel::from_bytes(&bytes).expect("the untruncated buffer still decodes");
}

proptest! {
    #[test]
    fn decoded_models_predict_bit_identically(pick in 0usize..10_000) {
        let (held_out, models) = fixture();
        let instance = held_out.instance(pick % held_out.len());
        for fitted in models {
            let a = fitted
                .original
                .classifier()
                .predict_early(instance)
                .expect("original predicts");
            let b = fitted
                .decoded
                .classifier()
                .predict_early(instance)
                .expect("decoded predicts");
            prop_assert!(
                a == b,
                "{} diverged after round-trip: {a:?} vs {b:?}",
                fitted.algo.name()
            );
        }
    }

    #[test]
    fn decoded_models_reencode_to_the_same_bytes(_nothing in 0usize..1) {
        // Byte-stability: encode(decode(bytes)) == bytes, so artifacts
        // can be copied/verified by hash without a semantic diff.
        for fitted in &fixture().1 {
            let reencoded = fitted.decoded.to_bytes().expect("model re-encodes");
            prop_assert!(
                reencoded == fitted.bytes,
                "{} is not byte-stable ({} vs {} bytes)",
                fitted.algo.name(),
                reencoded.len(),
                fitted.bytes.len()
            );
        }
    }
}
