//! Integration test for the streaming service's online-feasibility
//! verdict: the ratio measured live by `etsc::serve::replay_dataset`
//! must reach the same feasible/infeasible conclusion as the offline
//! Figure-13 cell (`etsc::eval::online::online_cell`) when both are fed
//! the same observation frequency — for at least one feasible and one
//! infeasible pairing.

use etsc::datasets::{GenOptions, PaperDataset};
use etsc::eval::experiment::{AlgoSpec, RunConfig, RunResult};
use etsc::eval::online::online_cell;
use etsc::serve::{fit_model, replay_dataset, ReplayOptions, SchedulerConfig, StoredModel};

fn verdicts(obs_frequency_secs: f64) -> (Option<bool>, bool) {
    let data = PaperDataset::PowerCons.generate(GenOptions {
        height_scale: 0.1,
        length_scale: 0.2,
        seed: 5,
    });
    let config = RunConfig::fast();
    let algo = AlgoSpec::Ects;
    let stored = fit_model(algo, &data, &config).expect("ECTS fits");
    // Serve the persisted artifact, as `etsc serve` would.
    let bytes = stored.to_bytes().expect("model encodes");
    let loaded = StoredModel::from_bytes(&bytes).expect("model decodes");
    let outcome = replay_dataset(
        &loaded,
        &data,
        &ReplayOptions {
            obs_frequency_secs,
            batch: algo.decision_batch(data.max_len(), &config),
            scheduler: SchedulerConfig::default(),
        },
    )
    .expect("replay runs");
    // Feed the measured per-decision latency back into the offline
    // heatmap computation: both sides must agree on feasibility.
    let offline = online_cell(
        &RunResult {
            algo,
            dataset: data.name().to_owned(),
            metrics: None,
            train_secs: 0.0,
            test_secs_per_instance: outcome.mean_latency_secs,
            dnf: false,
        },
        obs_frequency_secs,
        data.max_len(),
        &config,
    );
    (outcome.feasible(), offline.feasible())
}

#[test]
fn measured_verdict_matches_offline_cell_when_feasible() {
    // Observations arrive every 1000 s: any model keeps up.
    let (live, offline) = verdicts(1000.0);
    assert_eq!(live, Some(true), "slow stream must be feasible");
    assert_eq!(live, Some(offline));
}

#[test]
fn measured_verdict_matches_offline_cell_when_infeasible() {
    // Observations arrive every picosecond: no model keeps up.
    let (live, offline) = verdicts(1e-12);
    assert_eq!(live, Some(false), "picosecond stream must be infeasible");
    assert_eq!(live, Some(offline));
}
