//! Chaos suite: the serving stack under deterministic, seeded fault
//! injection (PR 3's acceptance scenario).
//!
//! A 100-session replay runs with a [`FaultPlan`] that injects worker
//! panics, ≥5% artificially delayed decisions against an armed
//! deadline, and NaN stream points — while the model file itself is
//! corrupted and recovered through the crash-consistent store. The
//! invariants:
//!
//! * **zero session drops** — every session ends with an attributable
//!   outcome (decided, fallback, or failed); none starve;
//! * **bounded fallback rate** — fallbacks only happen where delays
//!   were injected, and every fallback shows up in the deadline-breach
//!   counter;
//! * **fault attribution** — sessions untouched by the schedule commit
//!   exactly the offline prediction; accuracy degrades only on
//!   injected cells;
//! * **store recovery** — the corrupted model file is quarantined and
//!   the `.prev` last-good copy serves in its place.

use std::time::Duration;

use etsc::data::Dataset;
use etsc::datasets::{GenOptions, PaperDataset};
use etsc::eval::experiment::{AlgoSpec, RunConfig};
use etsc::eval::FaultPlan;
use etsc::serve::{
    fit_model, load_resilient, serve_sessions, DeadlineConfig, FallbackPolicy, SchedulerConfig,
    SessionOutcome, StoredModel,
};

/// The seeded plan the whole suite runs under (also exercised by the
/// `--faults` CLI flag and the CI chaos step).
const PLAN: &str = "seed=42,panics=2,delay-rate=0.10,delay-ms=30,nan-rate=0.05,corrupt-model=true";

fn hundred_sessions() -> Dataset {
    let data = PaperDataset::PowerCons.generate(GenOptions {
        height_scale: 0.1,
        length_scale: 0.2,
        seed: 13,
    });
    let indices: Vec<usize> = (0..100).map(|i| i % data.len()).collect();
    data.subset(&indices)
}

fn stored_model(data: &Dataset) -> StoredModel {
    fit_model(AlgoSpec::Ects, data, &RunConfig::fast()).expect("ECTS fits")
}

#[test]
fn chaos_replay_zero_session_drops_and_full_attribution() {
    let data = hundred_sessions();
    let stored = stored_model(&data);
    let plan = FaultPlan::parse(PLAN).expect("plan parses");
    let report = serve_sessions(
        stored.classifier(),
        data.instances(),
        1,
        &SchedulerConfig {
            workers: 4,
            queue_capacity: 256,
            deadline: Some(DeadlineConfig {
                deadline: Duration::from_millis(5),
                policy: FallbackPolicy::PriorClass,
                prior_label: stored.meta.prior_label,
            }),
            faults: Some(plan),
            ..SchedulerConfig::default()
        },
    )
    .expect("the pool survives every injected fault");
    let schedule = report
        .fault_schedule
        .as_ref()
        .expect("armed plan reports its schedule");

    // The plan's guaranteed injection floor for the acceptance run.
    assert!(schedule.injected_panics() >= 1, "plan injects a panic");
    assert!(
        schedule.injected_delays() >= 5,
        "plan delays >=5% of 100 sessions (got {})",
        schedule.injected_delays()
    );

    // Zero session drops: all 100 accounted for, none starved.
    assert_eq!(report.outcomes.len(), 100);
    assert_eq!(report.starved(), 0, "no session may vanish");

    // Every injected panic fired, was caught, and restarted a worker.
    assert_eq!(report.worker_panics, schedule.injected_panics());
    assert_eq!(report.worker_restarts, schedule.injected_panics());

    // Failures are attributable: a session may only fail where a fault
    // was injected, and each panic kills exactly one session.
    let failed: Vec<usize> = report
        .outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| matches!(o, SessionOutcome::Failed(_)))
        .map(|(s, _)| s)
        .collect();
    assert_eq!(failed.len(), schedule.injected_panics());
    for &s in &failed {
        assert!(schedule.touches(s), "session {s} failed without a fault");
    }

    // Bounded fallback rate: the 30ms injected delay always breaches
    // the 5ms deadline, so fallbacks happen — but only on sessions the
    // schedule touched, and every one is counted as a breach.
    assert!(report.fallbacks >= 1, "delays must provoke fallbacks");
    assert!(
        report.fallbacks <= schedule.injected_delays(),
        "{} fallbacks from {} injected delays",
        report.fallbacks,
        schedule.injected_delays()
    );
    assert!(
        report.deadline_breaches >= report.fallbacks,
        "every fallback is a counted breach"
    );
    for (s, outcome) in report.outcomes.iter().enumerate() {
        if matches!(outcome, SessionOutcome::Fallback { .. }) {
            assert!(schedule.touches(s), "session {s} fell back without a fault");
        }
    }

    // Accuracy degrades only on injected cells: every untouched session
    // commits exactly the offline prediction.
    for (s, outcome) in report.outcomes.iter().enumerate() {
        if schedule.touches(s) {
            continue;
        }
        let offline = stored
            .classifier()
            .predict_early(data.instance(s))
            .expect("offline prediction");
        assert_eq!(
            *outcome,
            SessionOutcome::Decided(offline),
            "untouched session {s} diverged from offline"
        );
    }
}

#[test]
fn chaos_corrupted_model_recovers_from_last_good_and_serves() {
    let data = hundred_sessions();
    let stored = stored_model(&data);
    let plan = FaultPlan::parse(PLAN).expect("plan parses");
    assert!(plan.corrupt_model, "the acceptance plan corrupts the store");

    let dir = std::env::temp_dir().join("etsc-chaos-suite");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("chaos.model");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(dir.join("chaos.model.prev")).ok();
    std::fs::remove_file(dir.join("chaos.model.quarantine")).ok();

    // Two saves leave a pristine `.prev`; then the plan picks the byte
    // to corrupt in the primary.
    stored.save(&path).expect("first save");
    stored.save(&path).expect("second save");
    let mut bytes = std::fs::read(&path).expect("read model");
    let offset = plan.corruption_offset(bytes.len());
    bytes[offset] ^= 0xff;
    std::fs::write(&path, &bytes).expect("write corrupted model");

    let outcome = load_resilient(&path).expect("resilient load recovers");
    assert!(outcome.recovered_from_prev, "served from last-good copy");
    assert!(
        outcome.quarantined.is_some(),
        "corrupt file preserved as evidence"
    );
    assert!(!outcome.warnings.is_empty(), "degradation is reported");

    // The recovered model serves a clean replay bit-identically to the
    // original artifact.
    let report = serve_sessions(
        outcome.model.classifier(),
        data.instances(),
        1,
        &SchedulerConfig::default(),
    )
    .expect("recovered model serves");
    assert_eq!(report.starved(), 0);
    assert_eq!(report.errors, 0, "{:?}", report.first_error);
    for (s, decision) in report.decisions.iter().enumerate() {
        let offline = stored
            .classifier()
            .predict_early(data.instance(s))
            .expect("offline prediction");
        assert_eq!(*decision, Some(offline), "session {s}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The network extension of the suite: the same dataset streamed over
/// 100 concurrent loopback connections while seeded faults tear
/// frames, drop connections mid-session, and panic a worker on the
/// server side. Invariants: zero server-side session leaks, and every
/// fault attributable — in the stats, in the report, and in the trace.
#[test]
fn chaos_network_hundred_connections_zero_leaks_full_attribution() {
    use etsc::net::{run_loadgen, LoadgenOptions, NetServer, ServerConfig};
    use etsc::obs::{EventRecord, Obs, TraceRecord};
    use std::sync::Arc;

    let data = hundred_sessions();
    let stored = Arc::new(stored_model(&data));
    // Client-side network faults ride the loadgen's schedule; the
    // server draws its own plan for the worker panics so both ends of
    // the wire are exercised.
    let client_plan =
        FaultPlan::parse("seed=7,torn-rate=0.05,disconnect-rate=0.05").expect("client plan");
    let server_plan = FaultPlan::parse("seed=9,panics=2").expect("server plan");

    // One full scenario run. Every invariant below holds on EVERY run;
    // only whether a panic seq lands on an arrival that ever delivers
    // a complete observation is timing-dependent (a tear or disconnect
    // at step 1 kills the arrival before it evaluates), so the caller
    // retries until a panic actually fires.
    let run_once = || -> (u64, Vec<EventRecord>) {
        let obs = Obs::enabled();
        let server = NetServer::bind(
            stored.clone(),
            "127.0.0.1:0",
            ServerConfig {
                max_connections: 256,
                faults: Some(server_plan.clone()),
                // Keyed by arrival order; 100 opens are guaranteed, so
                // panic seqs drawn below 100 always have a taker.
                fault_horizon: 100,
                obs: obs.clone(),
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let addr = server.local_addr().to_string();
        let report = run_loadgen(
            &addr,
            &data,
            &LoadgenOptions {
                connections: 100,
                sessions: 100,
                faults: Some(client_plan.clone()),
                wait_timeout: Duration::from_secs(60),
                ..LoadgenOptions::default()
            },
        );
        server.shutdown();
        let stats = server.join();

        // Nothing silently lost: every session decided, failed with
        // attribution, or was deliberately disconnected.
        assert!(report.clean(), "loadgen errors: {:?}", report.errors);
        assert_eq!(
            report.decided + report.failed + report.disconnected,
            100,
            "{report:?}"
        );
        assert!(report.torn_frames >= 1, "plan tears at least one frame");
        assert!(report.disconnected >= 1, "plan drops at least one session");
        // Every injected tear AND every injected disconnect kills the
        // connection; each recovery is exactly one counted reconnect.
        assert_eq!(
            report.reconnects,
            report.torn_frames + report.disconnected as u64,
            "{report:?}"
        );

        // Zero server-side leaks: opens + resumes all reach a terminal
        // state (decided, failed, or abandoned) even though
        // connections died mid-session.
        assert_eq!(stats.open_sessions(), 0, "leaked sessions: {stats:?}");
        assert_eq!(stats.sessions_opened, 100);
        // Only torn frames resume (a decision racing the tear onto the
        // dying socket can pre-empt the resume, so this is a ceiling).
        assert!(
            stats.sessions_resumed <= report.torn_frames,
            "{stats:?} vs {report:?}"
        );
        // Dying connections abandon their in-flight sessions; a
        // session the server had already answered is counted decided
        // instead.
        assert!(
            stats.sessions_abandoned <= report.disconnected as u64 + report.torn_frames,
            "{stats:?} vs {report:?}"
        );
        assert!(
            stats.sessions_abandoned >= 1,
            "at least one kill lands mid-flight: {stats:?}"
        );

        // Each fired panic failed exactly one session, the loadgen saw
        // exactly those failures, and the trace carries one attributed
        // event per panic.
        assert_eq!(stats.sessions_failed, stats.worker_panics, "{stats:?}");
        assert_eq!(report.failed as u64, stats.worker_panics, "{report:?}");
        let panic_events: Vec<EventRecord> = obs
            .tracer
            .records()
            .into_iter()
            .filter_map(|r| match r {
                TraceRecord::Event(e) if e.name == "net.worker.panic" => Some(e),
                _ => None,
            })
            .collect();
        assert_eq!(panic_events.len() as u64, stats.worker_panics);
        (stats.worker_panics, panic_events)
    };

    let mut fired = Vec::new();
    for _ in 0..3 {
        let (panics, events) = run_once();
        if panics >= 1 {
            fired = events;
            break;
        }
    }
    assert!(
        !fired.is_empty(),
        "no injected panic fired in three attempts"
    );
    // Full attribution: the trace names the fault and pins it to a
    // connection, session, and arrival seq.
    for event in &fired {
        let attr = |k: &str| {
            event
                .attrs
                .iter()
                .find(|(name, _)| name == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("panic event missing {k:?} attr: {:?}", event.attrs))
        };
        assert!(
            attr("panic").contains("injected fault"),
            "{:?}",
            event.attrs
        );
        attr("conn");
        attr("session");
        attr("seq");
    }
}

/// The fleet extension of the suite: 100 sessions streamed through a
/// consistent-hash router over 3 shard servers while the seeded plan
/// kills one shard mid-stream (no drain handshake — its sockets just
/// drop). Invariants: zero lost sessions, exact migration accounting
/// across every layer (router counters, per-shard stats, handoff
/// frames, trace events), and a measured failover recovery time.
#[test]
fn chaos_kill_a_shard_mid_stream_zero_lost_sessions_exact_migration() {
    use etsc::net::{run_fleet, FleetOptions, RouterConfig};
    use etsc::obs::{Obs, TraceRecord};
    use etsc::serve::replicate;
    use std::sync::Arc;

    let data = hundred_sessions();
    let stored = stored_model(&data);

    // Fan the fitted model out through the versioned store — the same
    // crash-consistent replication path production shards load from.
    let dir = std::env::temp_dir().join("etsc-chaos-fleet");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let paths: Vec<std::path::PathBuf> = (0..3)
        .map(|i| dir.join(format!("shard{i}.model")))
        .collect();
    stored.save(&paths[0]).expect("save source replica");
    replicate(&paths[0], &paths[1..]).expect("replicate to shard stores");
    let models: Vec<Arc<StoredModel>> = paths
        .iter()
        .map(|p| Arc::new(StoredModel::load(p).expect("load shard replica")))
        .collect();

    let plan = FaultPlan::parse("seed=42,kill-shard=1,kill-at-step=120").expect("plan parses");
    let obs = Obs::enabled();
    let report = run_fleet(
        &models,
        &data,
        &FleetOptions {
            connections: 10,
            sessions: 100,
            faults: Some(plan),
            router: RouterConfig {
                obs: obs.clone(),
                ..RouterConfig::default()
            },
            ..FleetOptions::default()
        },
    );

    // Zero lost sessions: every one of the 100 decided, none dropped,
    // none failed, and no layer still owes an answer.
    assert!(
        report.clean(),
        "unclean fleet run: {:?}",
        report.load.errors
    );
    assert_eq!(report.load.decided, 100, "{:?}", report.load);
    assert_eq!(report.load.failed, 0, "{:?}", report.load);
    assert_eq!(report.load.dropped, 0, "{:?}", report.load);
    let r = &report.router;
    assert_eq!(r.open_sessions(), 0, "router leaked sessions: {r:?}");
    assert_eq!(r.sessions_opened, 100, "{r:?}");

    // The kill fired at the plan's routed-row step, and the shard's
    // resident sessions migrated instead of vanishing.
    assert_eq!(report.kill_step, Some(120), "seeded kill must fire");
    assert!(report.shards[1].killed, "shard 1 is the kill target");
    assert!(
        r.sessions_migrated >= 1,
        "kill mid-stream must migrate: {r:?}"
    );
    assert_eq!(
        r.sessions_migrated, r.handoffs_sent,
        "every migration announces itself with a handoff: {r:?}"
    );
    assert!(
        r.shard_failures >= 1,
        "an unplanned death is a counted failure"
    );

    // Exact cross-layer accounting: the survivors' resume and handoff
    // counters reconcile with the router's migration count (no client
    // faults are armed, so shard-side resumes can only be migrations),
    // and no shard — including the killed one — leaks a session.
    let mut resumed = 0u64;
    let mut handoffs = 0u64;
    for (i, shard) in report.shards.iter().enumerate() {
        let stats = shard.stats.as_ref().expect("real shard has stats");
        assert_eq!(stats.open_sessions(), 0, "shard {i} leaked: {stats:?}");
        resumed += stats.sessions_resumed;
        handoffs += stats.sessions_handoff;
    }
    assert_eq!(resumed, r.sessions_migrated, "resumes reconcile: {r:?}");
    assert_eq!(handoffs, r.handoffs_sent, "handoffs reconcile: {r:?}");

    // Per-shard balance: the ring spread all 100 sessions, every shard
    // took a share, and placements exceed opens by exactly the
    // migrations (a migrated session is placed twice).
    let balance = report.balance();
    assert!(balance.iter().all(|&p| p > 0), "lopsided ring: {balance:?}");
    assert_eq!(
        balance.iter().sum::<u64>(),
        100 + r.sessions_migrated,
        "placements = opens + migrations: {balance:?} vs {r:?}"
    );
    assert_eq!(
        report.shards.iter().map(|s| s.migrated_off).sum::<u64>(),
        r.sessions_migrated,
        "migrated-off per shard sums to the router's total"
    );

    // Failover recovery time is measured and attributed in the trace.
    assert!(r.failovers >= 1, "{r:?}");
    assert!(r.failover_ns_total > 0, "{r:?}");
    assert!(report.failover_ms() > 0.0);
    let failover_events = obs
        .tracer
        .records()
        .into_iter()
        .filter(|rec| matches!(rec, TraceRecord::Event(e) if e.name == "router.failover"))
        .count() as u64;
    assert_eq!(failover_events, r.failovers, "one trace event per failover");
    assert_eq!(
        obs.metrics
            .histogram("router_failover_seconds")
            .snapshot()
            .len() as u64,
        r.failovers,
        "one recovery-time sample per failover"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The store under concurrent replication pressure: one writer saving
/// new model versions through the crash-consistent path while readers
/// hammer [`load_resilient`]. Every read must land on the last-good or
/// the new version — never an error, a torn read, or a degraded
/// recovery — because `save` stages `.prev` by copy and only ever
/// renames complete files over the primary.
#[test]
fn chaos_concurrent_saves_never_starve_a_resilient_reader() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let data = hundred_sessions();
    let mut stored = stored_model(&data);
    let dir = std::env::temp_dir().join("etsc-chaos-store-race");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("race.model");
    stored.meta.dataset = "v0".to_string();
    stored.save(&path).expect("initial save");

    const VERSIONS: usize = 60;
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let path = path.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for i in 1..=VERSIONS {
                stored.meta.dataset = format!("v{i}");
                stored.save(&path).expect("concurrent save");
            }
            done.store(true, Ordering::SeqCst);
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let path = path.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                let deadline = std::time::Instant::now() + Duration::from_secs(120);
                loop {
                    assert!(std::time::Instant::now() < deadline, "writer stalled");
                    let outcome = etsc::serve::load_resilient(&path)
                        .expect("resilient load never errors mid-save");
                    assert!(
                        outcome.warnings.is_empty(),
                        "no degraded recovery under clean concurrent saves: {:?}",
                        outcome.warnings
                    );
                    assert!(!outcome.recovered_from_prev, "primary always present");
                    let v = &outcome.model.meta.dataset;
                    let num: usize = v
                        .strip_prefix('v')
                        .and_then(|n| n.parse().ok())
                        .unwrap_or_else(|| panic!("torn version string {v:?}"));
                    assert!(num <= VERSIONS, "impossible version {v:?}");
                    reads += 1;
                    if done.load(Ordering::SeqCst) {
                        return reads;
                    }
                }
            })
        })
        .collect();
    writer.join().expect("writer survives");
    let total: u64 = readers
        .into_iter()
        .map(|r| r.join().expect("reader survives"))
        .sum();
    assert!(
        total >= 4,
        "readers actually raced the writer ({total} reads)"
    );

    // After the dust settles: the primary is the final version and the
    // `.prev` last-good copy is intact and loadable too.
    let last = etsc::serve::load_resilient(&path).expect("final load");
    assert_eq!(last.model.meta.dataset, format!("v{VERSIONS}"));
    let prev = StoredModel::load(dir.join("race.model.prev")).expect("prev intact");
    assert!(prev.meta.dataset.starts_with('v'));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_schedule_is_deterministic_across_runs() {
    let plan = FaultPlan::parse(PLAN).expect("plan parses");
    let lens = vec![144usize; 100];
    assert_eq!(plan.schedule(&lens), plan.schedule(&lens));
    assert_eq!(
        plan.corruption_offset(4096),
        plan.corruption_offset(4096),
        "corruption lands on the same byte every run"
    );
}

/// Satellite of the online-adaptation PR: a real [`Adapter`] commits
/// repeated refit + hot-swap cycles through the crash-consistent store
/// while resilient readers hammer the same path. No reader may ever
/// see a torn, absent, or degraded model — the atomic-rename protocol
/// must hold under the adapter's swap cadence exactly as it does under
/// plain concurrent saves.
#[test]
fn chaos_adapter_swap_cycles_never_tear_resilient_readers() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use etsc::adapt::{Adapter, AdapterConfig, LabeledExample};

    let data = hundred_sessions();
    let stored = Arc::new(stored_model(&data));
    let dir = std::env::temp_dir().join("etsc-chaos-adapt-swap");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("adaptive.model");
    stored.save(&path).expect("initial save");

    let adapter = Adapter::new(
        Arc::clone(&stored),
        Some(path.clone()),
        AdapterConfig {
            min_refit_examples: 8,
            ..AdapterConfig::default()
        },
    );
    // Refit training data: real labeled series, seeded once — every
    // cycle retrains on the same sample and swaps the result in.
    adapter.seed_reservoir((0..24).map(|i| {
        let inst = data.instance(i);
        LabeledExample {
            rows: (0..inst.vars())
                .map(|v| (0..inst.len()).map(|t| inst.at(v, t)).collect())
                .collect(),
            class: data.class_names()[data.label(i)].clone(),
        }
    }));

    const SWAPS: u64 = 40;
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let adapter = adapter.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for _ in 0..SWAPS {
                adapter.request_refit();
                adapter.poll().expect("refit trains and swap saves");
            }
            done.store(true, Ordering::SeqCst);
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let path = path.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                let deadline = std::time::Instant::now() + Duration::from_secs(120);
                loop {
                    assert!(std::time::Instant::now() < deadline, "swapper stalled");
                    let outcome = etsc::serve::load_resilient(&path)
                        .expect("resilient load never errors mid-swap");
                    assert!(
                        outcome.warnings.is_empty(),
                        "no degraded recovery under adapter swaps: {:?}",
                        outcome.warnings
                    );
                    assert!(!outcome.recovered_from_prev, "primary always present");
                    let gen = outcome.model.meta.generation;
                    assert!(
                        (1..=1 + SWAPS).contains(&gen),
                        "impossible generation {gen}"
                    );
                    reads += 1;
                    if done.load(Ordering::SeqCst) {
                        return reads;
                    }
                }
            })
        })
        .collect();
    writer.join().expect("writer survives");
    let total: u64 = readers
        .into_iter()
        .map(|r| r.join().expect("reader survives"))
        .sum();
    assert!(
        total >= 4,
        "readers actually raced the swapper ({total} reads)"
    );

    // Every cycle refitted and swapped; the store's primary holds the
    // final generation and the `.prev` last-good copy is loadable.
    let a = adapter.stats();
    assert_eq!(a.refits, SWAPS);
    assert_eq!(a.swaps, SWAPS);
    assert_eq!(a.generation, 1 + SWAPS);
    let last = etsc::serve::load_resilient(&path).expect("final load");
    assert_eq!(last.model.meta.generation, 1 + SWAPS);
    let prev = StoredModel::load(dir.join("adaptive.model.prev")).expect("prev intact");
    assert_eq!(prev.meta.generation, SWAPS);
    std::fs::remove_dir_all(&dir).ok();
}
