//! End-to-end robustness of the experiment supervisor: a deliberately
//! panicking classifier must become a `PANIC` cell while every other
//! cell of the matrix completes, and a journaled run killed part-way
//! must resume to a cell-for-cell identical result.

use std::sync::atomic::{AtomicUsize, Ordering};

use etsc::data::Dataset;
use etsc::datasets::{GenOptions, PaperDataset};
use etsc::eval::experiment::{run_cell, AlgoSpec, RunConfig, RunResult};
use etsc::eval::report::render_matrix_status;
use etsc::eval::supervisor::{supervise_matrix_with, CellOutcome, CellStatus, SupervisorOptions};
use etsc::obs::Obs;

fn datasets() -> Vec<Dataset> {
    [PaperDataset::PowerCons, PaperDataset::DodgerLoopGame]
        .iter()
        .map(|d| {
            d.generate(GenOptions {
                height_scale: 0.12,
                length_scale: 0.25,
                seed: 9,
            })
        })
        .collect()
}

#[test]
fn panicking_classifier_yields_a_panicked_cell_and_the_rest_complete() {
    let datasets = datasets();
    let algos = [AlgoSpec::Ects, AlgoSpec::EcoK, AlgoSpec::Teaser];
    let config = RunConfig::fast();
    let options = SupervisorOptions {
        max_threads: 3,
        ..SupervisorOptions::default()
    };
    // A "classifier" that aborts on one specific cell; every other cell
    // runs the real cross-validation.
    let outcomes = supervise_matrix_with(
        &datasets,
        &algos,
        &config,
        &options,
        |algo, dataset, config| {
            if algo == AlgoSpec::Teaser && dataset.name() == "PowerCons" {
                panic!("injected classifier bug");
            }
            run_cell(algo, dataset, config, &Obs::disabled())
        },
    )
    .unwrap();

    assert_eq!(outcomes.len(), 6);
    let panicked: Vec<&CellOutcome> = outcomes
        .iter()
        .filter(|c| c.status() == CellStatus::Panic)
        .collect();
    assert_eq!(panicked.len(), 1);
    assert_eq!(panicked[0].algo(), AlgoSpec::Teaser);
    assert_eq!(panicked[0].dataset(), "PowerCons");
    // Every other cell finished with real metrics.
    let finished = outcomes
        .iter()
        .filter(|c| c.status() == CellStatus::Ok)
        .count();
    assert_eq!(finished, 5, "{outcomes:?}");

    // The status table reports the failure without losing the matrix.
    let names: Vec<String> = datasets.iter().map(|d| d.name().to_owned()).collect();
    let table = render_matrix_status(&outcomes, &names);
    assert!(table.contains("PANIC"), "{table}");
    assert!(
        table.contains("5 OK, 0 DNF, 0 ERR, 1 PANIC of 6 cells"),
        "{table}"
    );
}

#[test]
fn killed_journaled_run_resumes_to_identical_results() {
    let dir = std::env::temp_dir().join("etsc-supervisor-robustness");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("resume.jsonl");
    std::fs::remove_file(&path).ok();

    let datasets = datasets();
    let algos = [AlgoSpec::Ects, AlgoSpec::EcoK];
    let config = RunConfig::fast();
    let options = SupervisorOptions {
        max_threads: 2,
        journal: Some(path.clone()),
        ..SupervisorOptions::default()
    };
    let runner = |algo: AlgoSpec,
                  dataset: &Dataset,
                  config: &RunConfig|
     -> Result<RunResult, etsc::core::EtscError> {
        run_cell(algo, dataset, config, &Obs::disabled())
    };

    let full = supervise_matrix_with(&datasets, &algos, &config, &options, runner).unwrap();
    assert!(full.iter().all(|c| c.status() == CellStatus::Ok));

    // Simulate a kill after two journaled cells.
    let text = std::fs::read_to_string(&path).unwrap();
    let keep: Vec<&str> = text.lines().take(3).collect();
    std::fs::write(&path, format!("{}\n", keep.join("\n"))).unwrap();

    let resumed_calls = AtomicUsize::new(0);
    let resumed = supervise_matrix_with(
        &datasets,
        &algos,
        &config,
        &SupervisorOptions {
            resume: true,
            ..options
        },
        |algo, dataset, config| {
            resumed_calls.fetch_add(1, Ordering::SeqCst);
            runner(algo, dataset, config)
        },
    )
    .unwrap();
    assert_eq!(
        resumed_calls.load(Ordering::SeqCst),
        2,
        "only the two lost cells are recomputed"
    );
    // Journaled cells roundtrip exactly; recomputed cells only differ in
    // wall-clock timings, so compare the scientific payload.
    assert_eq!(resumed.len(), full.len());
    for (a, b) in resumed.iter().zip(&full) {
        assert_eq!(a.status(), b.status());
        assert_eq!(a.algo(), b.algo());
        assert_eq!(a.dataset(), b.dataset());
        let (ra, rb) = (a.run_result().unwrap(), b.run_result().unwrap());
        assert_eq!(
            ra.metrics,
            rb.metrics,
            "cell {}/{}",
            ra.dataset,
            ra.algo.name()
        );
        assert_eq!(ra.dnf, rb.dnf);
    }
    std::fs::remove_file(path).ok();
}
