//! End-to-end online adaptation under concept drift (the `etsc-adapt`
//! acceptance scenario).
//!
//! 100 loopback sessions replay a seeded step-drift stream — label
//! semantics flip halfway — through a real TCP server whose feedback
//! sink is an [`Adapter`] wired to hot-swap refits into the live
//! server. The invariants:
//!
//! * **drift is detected** — the post-change error burst trips the DDM
//!   monitor on the feedback stream;
//! * **refit + atomic hot-swap** — the adapter retrains on its
//!   reservoir and the server serves the new generation without
//!   dropping a session;
//! * **rollback works** — a seeded degraded refit
//!   ([`Adapter::sabotage_next_refit`]) is caught by post-swap
//!   probation and rolled back to the last good generation;
//! * **everything is attributable** — every drift, swap, and rollback
//!   shows up in the shared trace and metrics registry.

use std::sync::Arc;
use std::time::{Duration, Instant};

use etsc::adapt::{Adapter, AdapterConfig, DetectorKind};
use etsc::datasets::{drift_stream, DriftKind, DriftOptions, GenOptions, PaperDataset};
use etsc::eval::experiment::{AlgoSpec, RunConfig};
use etsc::net::{run_loadgen, Client, ClientConfig, LoadgenOptions, NetServer, ServerConfig};
use etsc::obs::{Obs, SpanRecord, TraceRecord};
use etsc::serve::fit_model;

const SESSIONS: usize = 100;

/// Spins until `done` holds or the budget expires.
fn wait_until(what: &str, adapter: &Adapter, done: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !done() {
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; adapter stats: {:?}",
            adapter.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn adaptation_under_step_drift_survives_sabotage_and_attributes_everything() {
    let obs = Obs::enabled();
    let stream = drift_stream(
        PaperDataset::PowerCons,
        &DriftOptions {
            kind: DriftKind::Step { at: 0.5 },
            n: SESSIONS,
            rotate: 1,
            gen: GenOptions {
                height_scale: 0.1,
                length_scale: 0.2,
                seed: 13,
            },
        },
    );
    // Train the initial model on the pre-drift head only, so the label
    // flip at the midpoint genuinely invalidates it.
    let head: Vec<usize> = (0..30).collect();
    let train = stream.subset(&head);
    let stored =
        Arc::new(fit_model(AlgoSpec::Ects, &train, &RunConfig::fast()).expect("ECTS fits"));

    let dir = std::env::temp_dir().join(format!("etsc-adapt-drift-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp store dir");
    let adapter = Adapter::new(
        Arc::clone(&stored),
        Some(dir.join("adaptive.model")),
        AdapterConfig {
            detector: DetectorKind::Ddm,
            // Tight recency-biased reservoir: by refit time the
            // post-drift concept dominates the sample, so the refit
            // genuinely learns the flipped labels instead of averaging
            // both concepts into a coin flip.
            reservoir_cap: 24,
            min_refit_examples: 16,
            rollback_window: 12,
            obs: obs.clone(),
            ..AdapterConfig::default()
        },
    );
    let server = Arc::new(
        NetServer::bind(
            Arc::clone(&stored),
            "127.0.0.1:0",
            ServerConfig {
                feedback: Some(Arc::new(adapter.clone())),
                obs: obs.clone(),
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback server"),
    );
    {
        let server = Arc::clone(&server);
        adapter.set_swap_hook(move |model| {
            server.reload(model).expect("hot-swap reload");
        });
    }
    let addr = server.local_addr().to_string();

    // One connection keeps the feedback stream in session order — the
    // stream's time axis — so the detector's warm-up sees the clean
    // pre-drift regime. [`Adapter::poll`] (the maintenance tick a
    // deployment would run from a poller thread) is called explicitly
    // between waves to keep the scenario deterministic.
    let opts = LoadgenOptions {
        connections: 1,
        sessions: SESSIONS,
        rate: 0.0,
        faults: None,
        client: ClientConfig::default(),
        wait_timeout: Duration::from_secs(60),
        low_priority_share: 0.0,
        open_ahead: 0,
        feedback: true,
        send_shutdown: false,
        // One row per frame: feedback grading below counts on strict
        // session-order arrival, which batching would not change, but
        // the drift replay predates rev 2 and is pinned as-is.
        batch: 1,
    };

    // Wave 1: the full stream, label feedback after every decision.
    // The step drift at session 50 must be detected on the feedback
    // stream alone — no refits have run yet.
    let wave1 = run_loadgen(&addr, &stream, &opts);
    assert!(
        wave1.clean(),
        "wave 1 dropped {} sessions, errors: {:?}",
        wave1.dropped,
        wave1.errors
    );
    assert_eq!(wave1.feedback_sent as usize, wave1.decided);
    wait_until("wave 1 feedback to be graded", &adapter, || {
        adapter.stats().feedbacks >= wave1.feedback_sent
    });
    assert!(
        adapter.stats().drifts >= 1,
        "the step drift was not detected on the feedback stream"
    );

    // First maintenance tick: the pending drift refits on the
    // recency-biased reservoir (post-drift concept by now) and
    // hot-swaps into the live server.
    adapter.poll().expect("drift refit trains and swaps");
    assert!(
        adapter.stats().swaps >= 1,
        "no hot-swap after the drift refit"
    );

    // Wave 2: part of the post-drift tail against the adapted model.
    // These live feedbacks settle the drift swap's probation and leave
    // a healthy accuracy baseline in the rolling window.
    let tail: Vec<usize> = (SESSIONS / 2..SESSIONS).collect();
    let tail_data = stream.subset(&tail);
    let wave2 = run_loadgen(
        &addr,
        &tail_data.subset(&(0..20).collect::<Vec<_>>()),
        &LoadgenOptions {
            sessions: 20,
            ..opts.clone()
        },
    );
    assert!(
        wave2.clean(),
        "wave 2 dropped {} sessions, errors: {:?}",
        wave2.dropped,
        wave2.errors
    );
    wait_until("wave 2 feedback to be graded", &adapter, || {
        adapter.stats().feedbacks >= wave1.feedback_sent + wave2.feedback_sent
    });
    adapter.poll().expect("the drift swap's probation settles");
    assert_eq!(adapter.stats().rollbacks, 0, "a good refit was rolled back");

    // The rollback drill: force a refit whose training labels are
    // deterministically rotated — on this two-class stream, the swapped
    // model is close to the good one inverted.
    adapter.sabotage_next_refit();
    adapter.request_refit();
    adapter.poll().expect("sabotaged refit trains and swaps");
    assert!(
        adapter.stats().swaps >= 2,
        "the sabotaged refit did not hot-swap"
    );

    // Wave 3: the rest of the tail judges the degraded generation —
    // post-swap probation must catch the regression and roll back.
    let wave3 = run_loadgen(
        &addr,
        &tail_data.subset(&(20..tail.len()).collect::<Vec<_>>()),
        &LoadgenOptions {
            sessions: tail.len() - 20,
            ..opts
        },
    );
    assert!(
        wave3.clean(),
        "wave 3 dropped {} sessions, errors: {:?}",
        wave3.dropped,
        wave3.errors
    );
    let fed = wave1.feedback_sent + wave2.feedback_sent + wave3.feedback_sent;
    wait_until("wave 3 feedback to be graded", &adapter, || {
        adapter.stats().feedbacks >= fed
    });
    adapter.poll().expect("probation settles into a rollback");
    assert!(
        adapter.stats().rollbacks >= 1,
        "the sabotaged swap was not rolled back; stats: {:?}",
        adapter.stats()
    );

    // Tear down: release the swap hook's server handle, drain, join.
    adapter.set_swap_hook(|_| {});
    let mut closer = Client::connect(&addr, ClientConfig::default()).expect("drain connection");
    closer.shutdown_server().expect("drain request");
    closer
        .wait_drain(Duration::from_secs(10))
        .expect("drain ack");
    let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("server handle still shared"));
    let stats = server.join();

    // No session was lost anywhere, and every feedback was graded.
    assert_eq!(stats.open_sessions(), 0, "sessions leaked server-side");
    assert_eq!(stats.feedback_received, fed);

    // The adaptation story: drift seen, refits committed, the
    // sabotaged one rolled back, generation strictly advancing.
    let a = adapter.stats();
    assert!(a.drifts >= 1, "the step drift was never detected");
    assert!(
        a.refits >= 2,
        "expected a drift refit and the sabotaged refit"
    );
    assert!(
        a.swaps >= 3,
        "expected the drift swap, the sabotaged swap, and the rollback swap"
    );
    assert!(
        a.rollbacks >= 1,
        "the sabotaged refit was never rolled back"
    );
    assert_eq!(
        a.generation,
        1 + a.swaps,
        "every swap (rollbacks included) must bump the generation"
    );
    assert_eq!(a.feedbacks, fed);

    // Attribution: every drift, swap, and rollback appears in the
    // trace, and the refit spans carry the sabotage marker. The raw
    // record buffer is inspected directly — the server's drain span can
    // outlive its parent by the join race, which strict tree building
    // rejects.
    let records = obs.tracer.records();
    let events = |name: &str| -> u64 {
        records
            .iter()
            .filter(|r| matches!(r, TraceRecord::Event(e) if e.name == name))
            .count() as u64
    };
    assert!(events("adapt.drift") >= 1);
    assert_eq!(events("adapt.swap"), a.swaps);
    assert_eq!(events("adapt.rollback"), a.rollbacks);
    assert_eq!(events("net.model.swap"), a.swaps);
    assert_eq!(events("net.session.feedback"), fed);
    let refits: Vec<&SpanRecord> = records
        .iter()
        .filter_map(|r| match r {
            TraceRecord::Span(s) if s.name == "adapt.refit" => Some(s),
            _ => None,
        })
        .collect();
    assert_eq!(refits.len() as u64, a.refits + a.refit_failures);
    assert!(
        refits
            .iter()
            .any(|s| s.attrs.iter().any(|(k, v)| k == "sabotaged" && v == "true")),
        "the sabotaged refit span is not marked"
    );

    // And in the metrics registry.
    let counters = obs.metrics.snapshot_counters();
    let counter = |name: &str| counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("adapt_feedback_total"), fed);
    assert_eq!(counter("net_feedback_total"), fed);
    assert_eq!(counter("adapt_drift_total"), a.drifts);
    assert_eq!(counter("adapt_refit_total"), a.refits);
    assert_eq!(counter("adapt_swap_total"), a.swaps);
    assert_eq!(counter("adapt_rollback_total"), a.rollbacks);
    assert_eq!(counter("net_model_swaps_total"), a.swaps);

    let _ = std::fs::remove_dir_all(&dir);
}
