//! Property-based tests (proptest) over the framework's invariants:
//! metric algebra, data-structure round trips, imputation, CV partitions
//! and the SFA/transform layers.

use proptest::prelude::*;

use etsc::data::impute::impute_gaps;
use etsc::data::loader::{read_csv, write_csv};
use etsc::data::series::{z_normalize, MultiSeries, Series};
use etsc::data::{DatasetBuilder, StratifiedKFold};
use etsc::eval::metrics::{harmonic_mean, EvalOutcome, Metrics};
use etsc::ml::logistic::softmax;
use etsc::transforms::fourier::dft_features;

proptest! {
    #[test]
    fn harmonic_mean_is_bounded_and_symmetric_in_credit(
        acc in 0.0f64..=1.0,
        earliness in 0.0f64..=1.0,
    ) {
        let hm = harmonic_mean(acc, earliness);
        prop_assert!((0.0..=1.0).contains(&hm));
        // HM lies between the min and max of its two arguments, and is
        // zero whenever either argument is zero.
        let credit = 1.0 - earliness;
        let (lo, hi) = (acc.min(credit), acc.max(credit));
        if lo > 0.0 {
            prop_assert!(hm >= lo - 1e-12, "hm {hm} < lo {lo}");
        } else {
            prop_assert!(hm == 0.0);
        }
        prop_assert!(hm <= hi + 1e-12, "hm {hm} > hi {hi}");
    }

    #[test]
    fn metrics_accuracy_matches_manual_count(
        outcomes in prop::collection::vec((0usize..3, 0usize..3, 1usize..20), 1..40)
    ) {
        let evals: Vec<EvalOutcome> = outcomes
            .iter()
            .map(|&(truth, predicted, prefix)| EvalOutcome {
                truth,
                predicted,
                prefix_len: prefix,
                full_len: 20,
            })
            .collect();
        let m = Metrics::compute(&evals, 3);
        let manual = outcomes.iter().filter(|(t, p, _)| t == p).count() as f64
            / outcomes.len() as f64;
        prop_assert!((m.accuracy - manual).abs() < 1e-12);
        prop_assert!(m.earliness > 0.0 && m.earliness <= 1.0);
        prop_assert!((0.0..=1.0).contains(&m.f1));
    }

    #[test]
    fn znormalize_produces_unit_stats(xs in prop::collection::vec(-1e3f64..1e3, 2..100)) {
        let z = z_normalize(&xs);
        prop_assert_eq!(z.len(), xs.len());
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        prop_assert!(mean.abs() < 1e-6);
        let var: f64 = z.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / z.len() as f64;
        // Either unit variance or the degenerate all-zero case.
        prop_assert!((var - 1.0).abs() < 1e-6 || var.abs() < 1e-12);
    }

    #[test]
    fn imputation_removes_every_gap(
        mut xs in prop::collection::vec(prop::option::of(-100f64..100.0), 1..60)
    ) {
        let mut values: Vec<f64> = xs
            .drain(..)
            .map(|o| o.unwrap_or(f64::NAN))
            .collect();
        impute_gaps(&mut values);
        prop_assert!(values.iter().all(|v| !v.is_nan()));
    }

    #[test]
    fn imputation_is_idempotent(
        mut xs in prop::collection::vec(prop::option::of(-100f64..100.0), 1..60)
    ) {
        let mut values: Vec<f64> = xs
            .drain(..)
            .map(|o| o.unwrap_or(f64::NAN))
            .collect();
        impute_gaps(&mut values);
        let snapshot = values.clone();
        impute_gaps(&mut values);
        prop_assert_eq!(values, snapshot);
    }

    #[test]
    fn prefix_of_prefix_composes(
        values in prop::collection::vec(-10f64..10.0, 2..50),
        split in 1usize..49,
    ) {
        prop_assume!(split < values.len());
        let series = MultiSeries::univariate(Series::new(values.clone()));
        let p = series.prefix(split).unwrap();
        let pp = p.prefix(split.min(p.len())).unwrap();
        prop_assert_eq!(pp.var(0), &values[..split]);
    }

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-50f64..50.0, 1..10)) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| v >= 0.0));
        // Order-preserving.
        for i in 0..logits.len() {
            for j in 0..logits.len() {
                if logits[i] > logits[j] {
                    prop_assert!(p[i] >= p[j]);
                }
            }
        }
    }

    #[test]
    fn dft_is_linear(
        a in prop::collection::vec(-10f64..10.0, 8..32),
        scale in -3f64..3.0,
    ) {
        let fa = dft_features(&a, 4);
        let scaled: Vec<f64> = a.iter().map(|v| v * scale).collect();
        let fs = dft_features(&scaled, 4);
        for (x, y) in fa.iter().zip(&fs) {
            prop_assert!((x * scale - y).abs() < 1e-6 * (1.0 + x.abs() * scale.abs()));
        }
    }

    #[test]
    fn stratified_folds_partition_and_stratify(
        per_class in 4usize..20,
        folds in 2usize..4,
    ) {
        let mut b = DatasetBuilder::new("p");
        for i in 0..per_class * 2 {
            let class = if i % 2 == 0 { "a" } else { "b" };
            b.push_named(
                MultiSeries::univariate(Series::new(vec![i as f64, 0.0])),
                class,
            );
        }
        let data = b.build().unwrap();
        let splits = StratifiedKFold::new(folds, 9).unwrap().split(&data).unwrap();
        let mut seen = vec![0usize; data.len()];
        for f in &splits {
            for &i in &f.test {
                seen[i] += 1;
            }
            // Class balance within each fold differs by at most 1+.
            let a = f.test.iter().filter(|&&i| data.label(i) == 0).count() as i64;
            let b_count = f.test.iter().filter(|&&i| data.label(i) == 1).count() as i64;
            prop_assert!((a - b_count).abs() <= 1, "fold balance {a} vs {b_count}");
        }
        prop_assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn csv_roundtrip_preserves_data(
        rows in prop::collection::vec(
            (0usize..3, prop::collection::vec(-100f64..100.0, 3..10)),
            1..12,
        ),
        len_choice in 3usize..10,
    ) {
        let mut b = DatasetBuilder::new("rt");
        for (class, values) in &rows {
            let mut v = values.clone();
            v.truncate(len_choice.min(v.len()).max(3));
            b.push_named(
                MultiSeries::univariate(Series::new(v)),
                &format!("c{class}"),
            );
        }
        let original = b.build().unwrap();
        let mut csv = Vec::new();
        write_csv(&original, &mut csv).unwrap();
        let loaded = read_csv(std::io::Cursor::new(csv), "rt", 1).unwrap();
        prop_assert_eq!(loaded.len(), original.len());
        for i in 0..original.len() {
            prop_assert_eq!(loaded.label(i), original.label(i));
            let a = original.instance(i).var(0);
            let b = loaded.instance(i).var(0);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
