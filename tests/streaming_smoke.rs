//! Streaming smoke test (run as a dedicated CI step): serve 100
//! concurrent sessions of a small synthetic dataset through the
//! blocking scheduler and assert that every session commits a decision
//! — zero dropped decisions, zero shed observations, zero errors.

use etsc::datasets::{GenOptions, PaperDataset};
use etsc::eval::experiment::{AlgoSpec, RunConfig};
use etsc::serve::{fit_model, replay_dataset, ReplayOptions, SchedulerConfig};

#[test]
fn one_hundred_sessions_commit_without_drops() {
    let data = PaperDataset::PowerCons.generate(GenOptions {
        height_scale: 0.1,
        length_scale: 0.2,
        seed: 13,
    });
    let config = RunConfig::fast();
    let algo = AlgoSpec::Ects;
    let stored = fit_model(algo, &data, &config).expect("ECTS fits");
    // 100 sessions cycling over the dataset's instances.
    let indices: Vec<usize> = (0..100).map(|i| i % data.len()).collect();
    let sessions = data.subset(&indices);
    let outcome = replay_dataset(
        &stored,
        &sessions,
        &ReplayOptions {
            obs_frequency_secs: 1.0,
            batch: algo.decision_batch(sessions.max_len(), &config),
            scheduler: SchedulerConfig::default(),
        },
    )
    .expect("replay runs");
    assert_eq!(outcome.sessions, 100);
    assert_eq!(outcome.report.committed(), 100, "every session decides");
    assert_eq!(outcome.report.dropped_decisions, 0);
    assert_eq!(outcome.report.shed_observations, 0);
    assert_eq!(outcome.report.errors, 0, "{:?}", outcome.report.first_error);
}
