//! Wire-protocol robustness: a recorded session transcript survives
//! every possible truncation and every single-byte corruption with a
//! structured [`ProtoError`] — never a panic, never a hang, never a
//! silently wrong frame.
//!
//! The transcript is the full frame vocabulary in session order (both
//! Hello directions, open, a stream of observations, the decision,
//! close, an error report, shutdown), so the sweeps cover every
//! payload codec path the protocol has.

use etsc::net::{
    encode_frame, BatchDecision, DecisionKind, ErrorCode, Frame, FrameDecoder, ModelInfo,
    ProtoError, RetryClass, MAX_FRAME_BYTES, PRIORITY_HIGH, PROTO_MINOR, PROTO_VERSION,
};

/// A realistic session transcript covering every frame type.
fn transcript_frames() -> Vec<Frame> {
    let mut frames = vec![
        Frame::Hello {
            version: PROTO_VERSION,
            minor: 0,
            agent: "recorder".to_owned(),
            meta: None,
        },
        Frame::Hello {
            version: PROTO_VERSION,
            minor: PROTO_MINOR,
            agent: "etsc-net-server".to_owned(),
            meta: Some(ModelInfo {
                algo: "ECTS".to_owned(),
                dataset: "PowerCons".to_owned(),
                vars: 1,
                train_len: 96,
                batch: 1,
                prior_label: 0,
                classes: vec!["warm".to_owned(), "cold".to_owned()],
                generation: 1,
            }),
        },
        // Deadline and priority are revision-1 trailing extensions, so
        // the corruption sweeps below also cover the extension bytes.
        Frame::OpenSession {
            id: 1,
            vars: 1,
            expected_len: 96,
            resume: false,
            deadline_ms: 250,
            priority: PRIORITY_HIGH,
        },
    ];
    for t in 0..6u64 {
        frames.push(Frame::Observe {
            session: 1,
            step: t + 1,
            row: vec![t as f64 * 0.25 - 0.5],
            deadline_ms: if t % 2 == 0 { 40 } else { 0 },
        });
    }
    // Revision-2 pipelining frames: a multi-row batch with a deadline,
    // a single-row batch without one (empty batches are corruption by
    // contract, not a degenerate), and the coalesced verdict dual — so
    // the truncation and corruption sweeps below also walk every batch
    // codec path.
    frames.push(Frame::ObserveBatch {
        session: 1,
        start_step: 7,
        rows: vec![vec![1.0], vec![1.25], vec![-0.75]],
        deadline_ms: 80,
    });
    frames.push(Frame::ObserveBatch {
        session: 1,
        start_step: 10,
        rows: vec![vec![2.5]],
        deadline_ms: 0,
    });
    frames.push(Frame::DecisionBatch {
        decisions: vec![
            BatchDecision {
                session: 1,
                label: 1,
                prefix_len: 9,
                kind: DecisionKind::Genuine,
            },
            BatchDecision {
                session: 2,
                label: 0,
                prefix_len: 4,
                kind: DecisionKind::DrainPrior,
            },
        ],
    });
    frames.push(Frame::Decision {
        session: 1,
        label: 1,
        prefix_len: 6,
        kind: DecisionKind::Genuine,
    });
    frames.push(Frame::Feedback {
        session: 1,
        label: 1,
    });
    frames.push(Frame::Handoff {
        session: 1,
        origin: "127.0.0.1:7971".to_owned(),
        replayed: 6,
    });
    frames.push(Frame::CloseSession { session: 1 });
    frames.push(Frame::Error {
        code: ErrorCode::Draining,
        session: None,
        message: "shutting down".to_owned(),
        retry: RetryClass::Retryable { retry_after_ms: 75 },
    });
    frames.push(Frame::Error {
        code: ErrorCode::Shutdown,
        session: None,
        message: "graceful drain".to_owned(),
        retry: RetryClass::Terminal,
    });
    frames.push(Frame::Shutdown);
    frames
}

/// Encodes the transcript and returns the byte stream plus the set of
/// clean frame-boundary offsets (0 and after each frame).
fn transcript_bytes() -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut boundaries = vec![0usize];
    for frame in transcript_frames() {
        bytes.extend_from_slice(&encode_frame(&frame, MAX_FRAME_BYTES).expect("encodes"));
        boundaries.push(bytes.len());
    }
    (bytes, boundaries)
}

/// Drains a decoder, asserting strict progress on every pull so a
/// decode loop can never hang. Returns (frames decoded, errors seen).
fn drain(dec: &mut FrameDecoder, context: &str) -> (usize, usize) {
    let mut decoded = 0;
    let mut errors = 0;
    loop {
        let before = dec.buffered();
        match dec.next_frame() {
            Ok(Some(_)) => decoded += 1,
            Ok(None) => break,
            Err(ProtoError::TooLarge { .. }) => {
                // Framing itself is untrusted: terminal by contract.
                errors += 1;
                break;
            }
            Err(_) => errors += 1,
        }
        assert!(
            dec.buffered() < before,
            "decoder made no progress ({context})"
        );
    }
    (decoded, errors)
}

#[test]
fn every_truncation_offset_is_structured() {
    let (bytes, boundaries) = transcript_bytes();
    for cut in 0..=bytes.len() {
        let mut dec = FrameDecoder::new(MAX_FRAME_BYTES);
        dec.feed(&bytes[..cut]);
        let (decoded, errors) = drain(&mut dec, &format!("truncation at {cut}"));
        // Truncation never corrupts: every complete frame before the
        // cut decodes, and nothing errors.
        assert_eq!(errors, 0, "truncation at {cut} corrupted a frame");
        let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        assert_eq!(decoded, complete, "truncation at {cut}");
        match dec.finish() {
            Ok(()) => assert!(
                boundaries.contains(&cut),
                "offset {cut} is mid-frame but finish() saw a clean end"
            ),
            Err(ProtoError::Truncated { buffered }) => {
                assert!(
                    !boundaries.contains(&cut),
                    "clean boundary {cut} reported torn"
                );
                assert_eq!(
                    buffered,
                    cut - boundaries.iter().filter(|&&b| b <= cut).max().unwrap()
                );
            }
            Err(other) => panic!("truncation at {cut}: unexpected {other}"),
        }
    }
}

#[test]
fn every_single_byte_flip_is_detected_and_structured() {
    let (bytes, _) = transcript_bytes();
    let total = transcript_frames().len();
    for pos in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0xff;
        let mut dec = FrameDecoder::new(MAX_FRAME_BYTES);
        dec.feed(&mutated);
        let (decoded, errors) = drain(&mut dec, &format!("flip at {pos}"));
        // The corruption must be detected somewhere: as a structured
        // decode error, or as a torn tail when a length field grew and
        // the final frame ran past the end of the stream.
        assert!(
            errors > 0 || dec.finish().is_err(),
            "flip at byte {pos} went undetected ({decoded}/{total} frames decoded)"
        );
        assert!(
            decoded < total,
            "flip at byte {pos} decoded all frames as if untouched"
        );
    }
}

/// A rev-1 peer that sends a rev-2 batch frame anyway must get a
/// structured `Error` reply on the same connection — not a hangup, not
/// a panic — and the connection must keep serving rev-1 traffic.
#[test]
fn rev1_peer_sending_batch_frame_gets_clean_error_reply() {
    use etsc::data::{DatasetBuilder, MultiSeries, Series};
    use etsc::eval::experiment::{AlgoSpec, RunConfig};
    use etsc::net::{NetServer, ServerConfig};
    use etsc::serve::fit_model;
    use std::io::Write;
    use std::sync::Arc;
    use std::time::Duration;

    let mut b = DatasetBuilder::new("synthetic");
    for i in 0..8 {
        let (class, base) = if i % 2 == 0 {
            ("up", 1.0)
        } else {
            ("down", -1.0)
        };
        let values: Vec<f64> = (0..16)
            .map(|t| base * (t as f64 + i as f64 * 0.1))
            .collect();
        b.push_named(MultiSeries::univariate(Series::new(values)), class);
    }
    let data = b.build().unwrap();
    let model = Arc::new(fit_model(AlgoSpec::Ects, &data, &RunConfig::fast()).unwrap());
    let server = NetServer::bind(model, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let send = |raw: &mut std::net::TcpStream, frame: &Frame| {
        raw.write_all(&encode_frame(frame, MAX_FRAME_BYTES).unwrap())
            .unwrap();
        raw.flush().unwrap();
    };
    // Advertise minor 1: the negotiated revision excludes batching.
    send(
        &mut raw,
        &Frame::Hello {
            version: PROTO_VERSION,
            minor: 1,
            agent: "stuck-in-rev1".to_owned(),
            meta: None,
        },
    );
    let mut dec = FrameDecoder::new(MAX_FRAME_BYTES);
    let next = |raw: &mut std::net::TcpStream, dec: &mut FrameDecoder, what: &str| -> Frame {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(f) = dec.next_frame().unwrap() {
                return f;
            }
            assert!(std::time::Instant::now() < deadline, "timed out on {what}");
            match dec.read_from(raw) {
                Ok(0) => panic!("server hung up waiting for {what}"),
                Ok(_) => {}
                Err(ProtoError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(e) => panic!("decode failed waiting for {what}: {e}"),
            }
        }
    };
    match next(&mut raw, &mut dec, "hello") {
        Frame::Hello { minor, .. } => assert!(minor >= 1, "server hello advertises its minor"),
        other => panic!("expected hello, got {other:?}"),
    }
    send(
        &mut raw,
        &Frame::OpenSession {
            id: 1,
            vars: 1,
            expected_len: 16,
            resume: false,
            deadline_ms: 0,
            priority: 0,
        },
    );
    // The forbidden frame: a batch on a rev-1 connection.
    send(
        &mut raw,
        &Frame::ObserveBatch {
            session: 1,
            start_step: 1,
            rows: vec![vec![0.5], vec![0.75]],
            deadline_ms: 0,
        },
    );
    match next(&mut raw, &mut dec, "batch refusal") {
        Frame::Error {
            code,
            session,
            message,
            ..
        } => {
            assert_eq!(code, ErrorCode::BadFrame, "{message}");
            assert_eq!(session, Some(1));
            assert!(message.contains("minor revision"), "{message}");
        }
        other => panic!("expected error reply, got {other:?}"),
    }
    // The connection survived the refusal: plain rev-1 observes still
    // stream and the session still decides.
    for t in 0..16u64 {
        send(
            &mut raw,
            &Frame::Observe {
                session: 1,
                step: t + 1,
                row: vec![(t as f64) + 1.0],
                deadline_ms: 0,
            },
        );
    }
    loop {
        match next(&mut raw, &mut dec, "decision") {
            Frame::Decision { session, .. } => {
                assert_eq!(session, 1);
                break;
            }
            Frame::Error { message, .. } => panic!("session failed: {message}"),
            _ => {}
        }
    }
    drop(raw);
    let stats = server.join();
    assert_eq!(stats.sessions_decided, 1);
    assert_eq!(stats.open_sessions(), 0, "{stats:?}");
}

#[test]
fn flipped_frames_never_round_trip_as_different_valid_frames() {
    // Deeper check on a single Observe frame: whatever byte is
    // flipped, the decoder must never hand back a VALID frame whose
    // contents silently differ from the original. CRC-64 catches every
    // single-byte payload change; header flips surface as framing
    // errors or checksum mismatches.
    let frame = Frame::Observe {
        session: 7,
        step: 3,
        row: vec![1.5, -2.25, 0.0],
        deadline_ms: 12,
    };
    let bytes = encode_frame(&frame, MAX_FRAME_BYTES).expect("encodes");
    for pos in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0xff;
        let mut dec = FrameDecoder::new(MAX_FRAME_BYTES);
        dec.feed(&mutated);
        match dec.next_frame() {
            Ok(Some(decoded)) => panic!("flip at {pos} produced a valid frame: {decoded:?}"),
            Ok(None) => {
                // A grown length field: the frame now claims more
                // bytes than arrived — a torn frame, not a decode.
                assert!(dec.finish().is_err(), "flip at {pos} vanished");
            }
            Err(_) => {}
        }
    }
}
