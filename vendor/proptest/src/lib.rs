//! Offline stand-in for the `proptest` crate.
//!
//! Implements the property-testing surface the workspace uses: the
//! `proptest!` macro with `pattern in strategy` arguments, range /
//! tuple / `prop::collection::vec` / `prop::option::of` strategies, and
//! the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` case macros.
//! Cases are generated from a deterministic per-test RNG (seeded from
//! the test's module path and name), so failures reproduce exactly.
//! There is no shrinking: a failing case reports its assertion message
//! and the generated `Debug` values.

pub mod test_runner {
    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails with this message.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
    }

    /// Deterministic generator for test inputs (SplitMix64 seeded from
    /// a hash of the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the generator for a given test identity string.
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the fully qualified test name.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[lo, hi)`.
        ///
        /// # Panics
        /// When `lo >= hi`.
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "empty integer range");
            lo + self.next_u64() % (hi - lo)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.below(self.start as u64, self.end as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    if hi == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    rng.below(lo, hi + 1) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, u8);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Anything usable as the size argument of [`vec()`]: an exact
    /// length or a half-open range of lengths.
    pub trait SizeRange {
        /// `[lo, hi)` bounds on the generated length.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for `Vec<E::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<E> {
        element: E,
        lo: usize,
        hi: usize,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<E: Strategy>(element: E, size: impl SizeRange) -> VecStrategy<E> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty size range");
        VecStrategy { element, lo, hi }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let len = rng.below(self.lo as u64, self.hi as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`; `None` roughly a quarter of the
    /// time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Generates `Some` values from `inner`, interleaved with `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies: `proptest! { #[test] fn f(x in 0usize..10) { ... } }`.
/// Each test runs 64 deterministic cases (rejections via `prop_assume!`
/// are retried, up to a bounded number of attempts).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                const CASES: u32 = 64;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < CASES {
                    attempts += 1;
                    assert!(
                        attempts <= CASES * 32,
                        "prop_assume! rejected too many generated cases"
                    );
                    $(let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            panic!("property failed on case {attempts}: {message}");
                        }
                    }
                }
            }
        )+
    };
}

/// `assert!` for property bodies: fails the generated case with a
/// message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Skips the current generated case when its inputs don't satisfy a
/// precondition; the runner draws a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            x in -2f64..2.0,
            n in 1usize..10,
            m in 0usize..=4,
        ) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(m <= 4);
        }

        #[test]
        fn vec_sizes_and_tuples(
            xs in prop::collection::vec((-1f64..1.0, 0usize..3), 1..40),
            exact in prop::collection::vec(0u32..9, 5),
            maybe in prop::option::of(-100f64..100.0),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 40);
            prop_assert_eq!(exact.len(), 5);
            if let Some(v) = maybe {
                prop_assert!((-100.0..100.0).contains(&v));
            }
        }

        #[test]
        fn assume_filters_cases(mut n in 0usize..50) {
            prop_assume!(n % 2 == 0);
            n += 1;
            prop_assert!(n % 2 == 1);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = TestRng::deterministic("case");
        let mut b = TestRng::deterministic("case");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.unit_f64(), b.unit_f64());
    }

    #[test]
    fn failing_property_panics_with_message() {
        proptest! {
            fn always_fails(x in 0usize..2) {
                prop_assert!(x > 10, "x was {x}");
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("property failed"), "{msg}");
    }
}
