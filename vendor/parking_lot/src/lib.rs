//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` with parking_lot's API shape: `lock()`
//! returns the guard directly and a panic while holding the lock never
//! poisons it (the inner poison flag is ignored).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive; unlike `std::sync::Mutex` it does not
/// poison on panic.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Returns a mutable reference to the inner value (no locking
    /// needed — `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Mutex::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock();
            panic!("while holding the lock");
        }));
        assert!(result.is_err());
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
