//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the scoped-thread API the workspace uses
//! (`crossbeam::thread::scope` + `Scope::spawn`) on top of
//! `std::thread::scope`. The one behavioural difference from std that
//! matters here is preserved from upstream crossbeam: a panicking
//! spawned thread does not abort the scope — `scope` returns `Err`
//! carrying the first panic payload after every thread has finished.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex, PoisonError};

    /// A captured panic payload, as produced by `std::thread::JoinHandle::join`.
    pub type Panic = Box<dyn Any + Send + 'static>;

    /// Handle to a scope in which threads can be spawned. Mirrors
    /// `crossbeam::thread::Scope`; spawn closures receive `&Scope` so
    /// they can spawn nested threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        first_panic: Arc<Mutex<Option<Panic>>>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            Scope {
                inner: self.inner,
                first_panic: Arc::clone(&self.first_panic),
            }
        }
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish.
        ///
        /// # Errors
        /// When the thread panicked. The payload itself is recorded on
        /// the owning scope (and surfaced by [`scope`]); a placeholder
        /// is returned here.
        pub fn join(self) -> Result<T, Panic> {
            match self.inner.join() {
                Ok(Some(value)) => Ok(value),
                Ok(None) => Err(Box::new("scoped thread panicked")),
                Err(payload) => Err(payload),
            }
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to `'env` borrows. Panics inside `f`
        /// are caught and recorded; the scope keeps running its other
        /// threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let child = self.clone();
            let inner =
                self.inner
                    .spawn(move || match catch_unwind(AssertUnwindSafe(|| f(&child))) {
                        Ok(value) => Some(value),
                        Err(payload) => {
                            let mut first = child
                                .first_panic
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner);
                            if first.is_none() {
                                *first = Some(payload);
                            }
                            None
                        }
                    });
            ScopedJoinHandle { inner }
        }
    }

    /// Creates a scope for spawning threads that borrow from the
    /// enclosing stack frame. All spawned threads are joined before
    /// this returns.
    ///
    /// # Errors
    /// The first panic payload from any spawned thread (or from the
    /// scope body itself).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Panic>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let first_panic: Arc<Mutex<Option<Panic>>> = Arc::new(Mutex::new(None));
        let shared = Arc::clone(&first_panic);
        let body = catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                f(&Scope {
                    inner: s,
                    first_panic: shared,
                })
            })
        }));
        let recorded = first_panic
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        match (body, recorded) {
            (Err(payload), _) => Err(payload),
            (Ok(_), Some(payload)) => Err(payload),
            (Ok(value), None) => Ok(value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let out = thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            "done"
        })
        .unwrap();
        assert_eq!(out, "done");
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn panicking_thread_does_not_kill_siblings() {
        let survived = AtomicUsize::new(0);
        let result = thread::scope(|scope| {
            scope.spawn(|_| panic!("boom {}", 42));
            for _ in 0..4 {
                scope.spawn(|_| {
                    survived.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        let payload = result.unwrap_err();
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(message, "boom 42");
        assert_eq!(survived.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn join_returns_thread_result() {
        thread::scope(|scope| {
            let handle = scope.spawn(|_| 6 * 7);
            assert_eq!(handle.join().unwrap(), 42);
        })
        .unwrap();
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let hits = AtomicUsize::new(0);
        thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
