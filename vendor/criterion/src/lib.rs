//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::bench_with_input`, `Bencher::iter`, `BenchmarkId`)
//! backed by a simple wall-clock timing loop: each benchmark runs until
//! ~200 ms or an iteration cap is reached and the mean time per
//! iteration is printed. No statistics, plots, or baselines — just
//! enough for `cargo bench` to run and report.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (benches may import either
/// this or `std::hint::black_box`).
pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `("ECTS", "PowerCons")`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

/// Drives the timing loop for one benchmark.
pub struct Bencher {
    sample_size: u64,
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly until the time budget or
    /// the group's sample size is exhausted.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iterations: u32 = 0;
        loop {
            black_box(routine());
            iterations += 1;
            if u64::from(iterations) >= self.sample_size || start.elapsed() >= budget {
                break;
            }
        }
        self.last_mean = Some(start.elapsed() / iterations);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Caps the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark with an input value passed to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            last_mean: None,
        };
        f(&mut bencher, input);
        report(
            &self.name,
            &format!("{}/{}", id.function, id.parameter),
            bencher.last_mean,
        );
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            last_mean: None,
        };
        f(&mut bencher);
        report(&self.name, &id.to_string(), bencher.last_mean);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn report(group: &str, bench: &str, mean: Option<Duration>) {
    match mean {
        Some(mean) => println!("bench {group}/{bench}: {mean:?}/iter"),
        None => println!("bench {group}/{bench}: no iterations recorded"),
    }
}

/// The top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            _criterion: self,
        }
    }
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_closure() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(10);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &3u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            });
        });
        group.finish();
        assert!(runs > 0);
    }

    criterion_group!(smoke_group, smoke_fn);

    fn smoke_fn(c: &mut Criterion) {
        c.benchmark_group("macro")
            .bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macros_compose() {
        smoke_group();
    }
}
