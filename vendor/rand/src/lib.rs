//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the surface the workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256** seeded via
//! SplitMix64), the [`RngExt`] extension methods (`random`,
//! `random_range`, `random_bool`), and [`seq::SliceRandom::shuffle`].
//! Streams differ from the upstream `StdRng` (ChaCha12), but every
//! consumer in this workspace only requires determinism for a fixed
//! seed, not a specific stream.

use std::ops::{Range, RangeInclusive};

/// Raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface (the subset of upstream `SeedableRng` in use).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator via [`RngExt::random`].
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges samplable via [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    ///
    /// # Panics
    /// When the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + f64::sample_from(rng) * (end - start)
    }
}

/// The convenience methods the workspace calls on generators.
pub trait RngExt: RngCore {
    /// Uniform sample of `T` (`f64` in `[0, 1)`, fair `bool`, …).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    /// Uniform sample inside `range`.
    ///
    /// # Panics
    /// When the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_from(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Upstream-compatible alias: `rand::Rng` and `rand::RngExt` are the
/// same trait here.
pub use RngExt as Rng;

/// The deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — deterministic, fast, and
    /// statistically solid for simulation workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// The slice helpers the workspace uses (`shuffle`).
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<f64>(), c.random::<f64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let n = rng.random_range(3usize..10);
            assert!((3..10).contains(&n));
            let m = rng.random_range(0usize..=4);
            assert!(m <= 4);
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
