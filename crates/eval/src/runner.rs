//! The unified evaluation-matrix runner.
//!
//! [`MatrixRunner`] is the single front door to the (dataset ×
//! algorithm) matrix — sequential or pooled execution, supervision,
//! journaling and observability behind one builder:
//!
//! ```no_run
//! use etsc_eval::{AlgoSpec, MatrixRunner, RunConfig, SupervisorOptions};
//! use etsc_obs::Tracer;
//! # let datasets: Vec<etsc_data::Dataset> = vec![];
//! let outcomes = MatrixRunner::new(RunConfig::fast())
//!     .parallel(4)
//!     .supervised(SupervisorOptions { retries: 1, ..SupervisorOptions::default() })
//!     .journal("matrix.jsonl")
//!     .tracer(Tracer::enabled())
//!     .run(&datasets, &AlgoSpec::ALL)
//!     .unwrap();
//! ```
//!
//! Every cell runs isolated behind [`std::panic::catch_unwind`] with
//! bounded retries for transient errors, optional JSONL journaling
//! with resume, and full observability: a `matrix` root span with one
//! `cell` span per executed cell (attributes `cell` — the row-major
//! cell index, which is also the order journal lines are appended in a
//! fresh run — plus `dataset` and `algo`, the join key used by the
//! journal on resume), `cell.queued` / `cell.retry` / `cell.done` /
//! `cell.resumed` lifecycle events, and `matrix_*` counters in the
//! metrics registry. Inside each cell, [`run_cell`] adds per-fold
//! `fold`/`fit`/`predict` spans.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use etsc_core::{panic_message, EtscError};
use etsc_data::Dataset;
use etsc_obs::{with_ambient, MetricsRegistry, Obs, Tracer};

use crate::experiment::{run_cell, AlgoSpec, RunConfig, RunResult};
use crate::journal::{Journal, JournalHeader};
use crate::supervisor::{transient, CellOutcome, CellStatus, SupervisorOptions};
use crate::trigger_axis::{base_of, pseudo_algo, run_triggered_cell, TriggerCellResult};

/// Builder-style runner for the (dataset × algorithm) evaluation
/// matrix; see the [module docs](self) for the full feature set.
#[derive(Debug, Clone)]
pub struct MatrixRunner {
    config: RunConfig,
    options: SupervisorOptions,
    obs: Obs,
}

impl MatrixRunner {
    /// A sequential, unsupervised, uninstrumented runner for `config`.
    pub fn new(config: RunConfig) -> MatrixRunner {
        MatrixRunner {
            config,
            options: SupervisorOptions {
                max_threads: 1,
                ..SupervisorOptions::default()
            },
            obs: Obs::disabled(),
        }
    }

    /// Sets the worker-pool width (1 = sequential).
    pub fn parallel(mut self, max_threads: usize) -> MatrixRunner {
        self.options.max_threads = max_threads.max(1);
        self
    }

    /// Replaces the full supervision options (threads, retries,
    /// journal, resume) at once. Later builder calls still override
    /// individual fields.
    pub fn supervised(mut self, options: SupervisorOptions) -> MatrixRunner {
        self.options = options;
        self
    }

    /// Sets the retry budget for transient (data/model) cell errors.
    pub fn retries(mut self, retries: usize) -> MatrixRunner {
        self.options.retries = retries;
        self
    }

    /// Enables JSONL checkpoint journaling to `path`.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> MatrixRunner {
        self.options.journal = Some(path.into());
        self
    }

    /// Resumes from an existing journal instead of truncating it.
    pub fn resume(mut self, resume: bool) -> MatrixRunner {
        self.options.resume = resume;
        self
    }

    /// Installs a span tracer for this run.
    pub fn tracer(mut self, tracer: Tracer) -> MatrixRunner {
        self.obs.tracer = tracer;
        self
    }

    /// Installs a metrics registry for this run.
    pub fn metrics(mut self, metrics: MetricsRegistry) -> MatrixRunner {
        self.obs.metrics = metrics;
        self
    }

    /// Installs a combined observability context (tracer + metrics).
    pub fn obs(mut self, obs: Obs) -> MatrixRunner {
        self.obs = obs;
        self
    }

    /// The run configuration this runner was built with.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The effective supervision options.
    pub fn options(&self) -> &SupervisorOptions {
        &self.options
    }

    /// Runs the full matrix and returns one [`CellOutcome`] per cell
    /// in row-major order (datasets outer, algorithms inner).
    ///
    /// # Errors
    /// Only infrastructure failures (journal I/O, header mismatch on
    /// resume, a panic escaping the worker pool itself). Per-cell
    /// failures — including panics — are *outcomes*, not errors.
    pub fn run(
        &self,
        datasets: &[Dataset],
        algos: &[AlgoSpec],
    ) -> Result<Vec<CellOutcome>, EtscError> {
        self.run_with(datasets, algos, |algo, dataset, config| {
            run_cell(algo, dataset, config, &etsc_obs::ambient())
        })
    }

    /// Like [`MatrixRunner::run`], but with strict error semantics:
    /// the first failed or panicked cell is reported as an error after
    /// all cells have run, and successful runs come back as plain
    /// [`RunResult`]s.
    ///
    /// # Errors
    /// Infrastructure failures, then the first cell failure or panic.
    pub fn run_results(
        &self,
        datasets: &[Dataset],
        algos: &[AlgoSpec],
    ) -> Result<Vec<RunResult>, EtscError> {
        self.run(datasets, algos)?
            .into_iter()
            .map(|cell| match cell {
                CellOutcome::Finished(result) => Ok(result),
                CellOutcome::Failed { error, .. } => {
                    Err(EtscError::Config(format!("cell failed: {error}")))
                }
                CellOutcome::Panicked { message, .. } => Err(EtscError::Panicked { message }),
            })
            .collect()
    }

    /// Runs the trigger axis of the matrix: every (dataset × base ×
    /// trigger) cell through the same supervised worker pool, one
    /// supervised sweep per trigger spec. Results come back flat in
    /// (spec-major, then dataset-major, then base) order.
    ///
    /// Journaling is disabled for trigger sweeps even when configured:
    /// journal keys are (dataset, algorithm) and do not carry the
    /// trigger dimension, so resume would conflate specs.
    ///
    /// # Errors
    /// Infrastructure failures only; per-cell failures come back inside
    /// [`TriggerCellResult::error`].
    pub fn run_triggered(
        &self,
        datasets: &[Dataset],
        bases: &[etsc_core::TriggeredBase],
        specs: &[etsc_trigger::TriggerSpec],
    ) -> Result<Vec<TriggerCellResult>, EtscError> {
        let mut sub = self.clone();
        sub.options.journal = None;
        sub.options.resume = false;
        let algos: Vec<AlgoSpec> = bases.iter().map(|&b| pseudo_algo(b)).collect();
        let mut results = Vec::with_capacity(datasets.len() * bases.len() * specs.len());
        for spec in specs {
            let outcomes = sub.run_with(datasets, &algos, |algo, dataset, config| {
                run_triggered_cell(base_of(algo), spec, dataset, config, &etsc_obs::ambient())
            })?;
            for (i, outcome) in outcomes.into_iter().enumerate() {
                let (d, b) = (i / bases.len(), i % bases.len());
                results.push(TriggerCellResult::from_outcome(
                    datasets[d].name(),
                    bases[b],
                    spec,
                    outcome,
                ));
            }
        }
        Ok(results)
    }

    /// [`MatrixRunner::run`] with an injectable cell runner, used by
    /// tests to exercise panic isolation and retry behaviour without
    /// building a misbehaving classifier. The runner's observability
    /// context is installed [ambiently](etsc_obs::with_ambient) around
    /// every `run` invocation, so instrumented cell bodies (and the
    /// default [`run_cell`] path) pick it up without plumbing.
    ///
    /// # Errors
    /// See [`MatrixRunner::run`].
    pub fn run_with<F>(
        &self,
        datasets: &[Dataset],
        algos: &[AlgoSpec],
        run: F,
    ) -> Result<Vec<CellOutcome>, EtscError>
    where
        F: Fn(AlgoSpec, &Dataset, &RunConfig) -> Result<RunResult, EtscError> + Sync,
    {
        let obs = &self.obs;
        let options = &self.options;
        let config = self.effective_config();

        let cells: Vec<(usize, usize)> = (0..datasets.len())
            .flat_map(|d| (0..algos.len()).map(move |a| (d, a)))
            .collect();

        let mut matrix_span = obs.tracer.span("matrix");
        matrix_span.attr("datasets", &datasets.len().to_string());
        matrix_span.attr("algos", &algos.len().to_string());
        matrix_span.attr("cells", &cells.len().to_string());
        let matrix_id = matrix_span.id();
        obs.metrics
            .counter("matrix_cells_total")
            .add(cells.len() as u64);
        obs.metrics
            .gauge("matrix_threads")
            .set(options.max_threads.max(1) as f64);

        // Journal setup: on resume, previously recorded cells prefill
        // their slots and are skipped by the workers.
        let header = JournalHeader::for_run(&config, datasets.len(), algos.len());
        let mut slots: Vec<Mutex<Option<CellOutcome>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        let journal = match (&options.journal, options.resume) {
            (Some(path), true) if path.exists() => {
                let (journal, recorded, warnings) = Journal::open_resume(path, &header)?;
                for warning in warnings {
                    eprintln!("warning: {warning}");
                }
                let mut by_key: HashMap<(String, AlgoSpec), CellOutcome> = recorded
                    .into_iter()
                    .map(|c| ((c.dataset().to_owned(), c.algo()), c))
                    .collect();
                for (cell_idx, (slot, &(d, a))) in slots.iter_mut().zip(&cells).enumerate() {
                    let key = (datasets[d].name().to_owned(), algos[a]);
                    if let Some(cell) = by_key.remove(&key) {
                        obs.tracer.event_under(
                            "cell.resumed",
                            matrix_id,
                            &[
                                ("cell", &cell_idx.to_string()),
                                ("dataset", datasets[d].name()),
                                ("algo", algos[a].name()),
                            ],
                        );
                        obs.metrics.counter("matrix_cells_resumed_total").inc();
                        *slot
                            .get_mut()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(cell);
                    }
                }
                Some(journal)
            }
            (Some(path), _) => Some(Journal::create(path, &header)?),
            (None, _) => None,
        };
        let journal = Mutex::new(journal);
        let journal_error: Mutex<Option<EtscError>> = Mutex::new(None);

        // Only cells without a prefilled (resumed) outcome are scheduled.
        let pending: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| {
                slot.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .is_none()
            })
            .map(|(i, _)| i)
            .collect();
        for &cell_idx in &pending {
            let (d, a) = cells[cell_idx];
            obs.tracer.event_under(
                "cell.queued",
                matrix_id,
                &[
                    ("cell", &cell_idx.to_string()),
                    ("dataset", datasets[d].name()),
                    ("algo", algos[a].name()),
                ],
            );
        }

        let cell_hist = obs.metrics.histogram("matrix_cell_secs");
        let next = AtomicUsize::new(0);
        let threads = options.max_threads.max(1).min(pending.len().max(1));
        let scope_result = crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    let job = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&cell_idx) = pending.get(job) else {
                        break;
                    };
                    let (d, a) = cells[cell_idx];
                    let mut cell_span = obs.tracer.span_under("cell", matrix_id);
                    cell_span.attr("cell", &cell_idx.to_string());
                    cell_span.attr("dataset", datasets[d].name());
                    cell_span.attr("algo", algos[a].name());
                    let t0 = Instant::now();
                    let outcome = with_ambient(obs, || {
                        run_supervised_cell(
                            obs,
                            algos[a],
                            &datasets[d],
                            &config,
                            options.retries,
                            &run,
                        )
                    });
                    cell_hist.record(t0.elapsed().as_secs_f64());
                    let status = outcome.status();
                    obs.metrics.counter(status_counter(status)).inc();
                    obs.tracer.event("cell.done", &[("status", status.label())]);
                    drop(cell_span);
                    if let Some(journal) = journal
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .as_mut()
                    {
                        if let Err(e) = journal.append(&outcome) {
                            journal_error
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .get_or_insert(e);
                        }
                    }
                    *slots[cell_idx]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
                });
            }
        });
        if let Err(payload) = scope_result {
            return Err(EtscError::from_panic(payload.as_ref()));
        }
        if let Some(e) = journal_error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            return Err(e);
        }

        Ok(slots
            .into_iter()
            .zip(cells)
            .map(|(slot, (d, a))| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .unwrap_or_else(|| CellOutcome::Failed {
                        algo: algos[a],
                        dataset: datasets[d].name().to_owned(),
                        error: "cell was never executed".to_owned(),
                        attempts: 0,
                    })
            })
            .collect())
    }

    /// The per-cell configuration: `fit_threads == 0` (auto) resolves
    /// to the machine parallelism divided by the worker-pool width, so
    /// in-cell parallelism (voting-adapter voter training) never
    /// oversubscribes the machine on top of the cell workers.
    fn effective_config(&self) -> RunConfig {
        let mut config = self.config.clone();
        if config.fit_threads == 0 {
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            config.fit_threads = (cores / self.options.max_threads.max(1)).max(1);
        }
        config
    }
}

fn status_counter(status: CellStatus) -> &'static str {
    match status {
        CellStatus::Ok => "matrix_cells_ok_total",
        CellStatus::Dnf => "matrix_cells_dnf_total",
        CellStatus::Err => "matrix_cells_err_total",
        CellStatus::Panic => "matrix_cells_panic_total",
    }
}

/// Runs one cell with panic isolation and bounded retries.
fn run_supervised_cell<F>(
    obs: &Obs,
    algo: AlgoSpec,
    dataset: &Dataset,
    config: &RunConfig,
    retries: usize,
    run: &F,
) -> CellOutcome
where
    F: Fn(AlgoSpec, &Dataset, &RunConfig) -> Result<RunResult, EtscError> + Sync,
{
    let mut attempts = 0;
    loop {
        attempts += 1;
        match catch_unwind(AssertUnwindSafe(|| run(algo, dataset, config))) {
            Ok(Ok(result)) => return CellOutcome::Finished(result),
            Ok(Err(error)) => {
                if transient(&error) && attempts <= retries {
                    obs.metrics.counter("matrix_retries_total").inc();
                    obs.tracer.event(
                        "cell.retry",
                        &[
                            ("attempt", &attempts.to_string()),
                            ("error", &error.to_string()),
                        ],
                    );
                    continue;
                }
                return CellOutcome::Failed {
                    algo,
                    dataset: dataset.name().to_owned(),
                    error: error.to_string(),
                    attempts,
                };
            }
            // Panics are never retried: a panic signals a bug, not a
            // transient condition, and retrying would re-trip it.
            Err(payload) => {
                return CellOutcome::Panicked {
                    algo,
                    dataset: dataset.name().to_owned(),
                    message: panic_message(payload.as_ref()),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_datasets::{GenOptions, PaperDataset};
    use etsc_obs::TraceTree;

    fn small_datasets() -> Vec<Dataset> {
        [PaperDataset::PowerCons, PaperDataset::DodgerLoopGame]
            .iter()
            .map(|d| {
                d.generate(GenOptions {
                    height_scale: 0.1,
                    length_scale: 0.15,
                    seed: 5,
                })
            })
            .collect()
    }

    #[test]
    fn runner_traces_cell_lifecycle_and_counts_statuses() {
        let datasets = small_datasets();
        let algos = [AlgoSpec::Ects, AlgoSpec::EcoK];
        let obs = Obs::enabled();
        let outcomes = MatrixRunner::new(RunConfig::fast())
            .parallel(2)
            .obs(obs.clone())
            .run_with(&datasets, &algos, |algo, dataset, _| {
                if algo == AlgoSpec::EcoK && dataset.name().contains("PowerCons") {
                    panic!("injected");
                }
                Ok(RunResult {
                    algo,
                    dataset: dataset.name().to_owned(),
                    metrics: None,
                    train_secs: 0.0,
                    test_secs_per_instance: 0.0,
                    dnf: true,
                })
            })
            .unwrap();
        assert_eq!(outcomes.len(), 4);
        let tree = TraceTree::build(&obs.tracer.records()).unwrap();
        let roots = tree.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(tree.span(roots[0]).unwrap().name, "matrix");
        let cell_spans = tree.spans_named("cell");
        assert_eq!(cell_spans.len(), 4);
        for span in &cell_spans {
            assert_eq!(span.parent, Some(roots[0]));
            assert!(span.attr("dataset").is_some());
            assert!(span.attr("algo").is_some());
        }
        assert_eq!(tree.events_named("cell.queued").len(), 4);
        assert_eq!(tree.events_named("cell.done").len(), 4);
        let counters = obs.metrics.snapshot_counters();
        assert_eq!(counters["matrix_cells_total"], 4);
        assert_eq!(counters["matrix_cells_dnf_total"], 3);
        assert_eq!(counters["matrix_cells_panic_total"], 1);
    }

    #[test]
    fn retry_events_join_cell_spans() {
        let datasets = small_datasets()[..1].to_vec();
        let algos = [AlgoSpec::Ects];
        let obs = Obs::enabled();
        let calls = AtomicUsize::new(0);
        let outcomes = MatrixRunner::new(RunConfig::fast())
            .retries(2)
            .obs(obs.clone())
            .run_with(&datasets, &algos, |algo, dataset, _| {
                if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    return Err(EtscError::Data(etsc_data::DataError::Empty("transient")));
                }
                Ok(RunResult {
                    algo,
                    dataset: dataset.name().to_owned(),
                    metrics: None,
                    train_secs: 0.0,
                    test_secs_per_instance: 0.0,
                    dnf: true,
                })
            })
            .unwrap();
        assert_eq!(outcomes[0].status(), CellStatus::Dnf);
        let tree = TraceTree::build(&obs.tracer.records()).unwrap();
        let retries = tree.events_named("cell.retry");
        assert_eq!(retries.len(), 2);
        let cell = &tree.spans_named("cell")[0];
        for retry in retries {
            assert_eq!(
                retry.span,
                Some(cell.id),
                "retry events join their cell span"
            );
        }
        assert_eq!(obs.metrics.counter("matrix_retries_total").get(), 2);
    }

    #[test]
    fn auto_fit_threads_divides_machine_parallelism() {
        let runner = MatrixRunner::new(RunConfig {
            fit_threads: 0,
            ..RunConfig::fast()
        })
        .parallel(64);
        // 64 workers on any machine leaves at most 1 thread per cell.
        assert_eq!(runner.effective_config().fit_threads, 1);
        let explicit = MatrixRunner::new(RunConfig {
            fit_threads: 3,
            ..RunConfig::fast()
        });
        assert_eq!(explicit.effective_config().fit_threads, 3);
    }

    #[test]
    fn builder_accumulates_options() {
        let runner = MatrixRunner::new(RunConfig::fast())
            .parallel(3)
            .retries(2)
            .journal("/tmp/x.jsonl")
            .resume(true);
        assert_eq!(runner.options().max_threads, 3);
        assert_eq!(runner.options().retries, 2);
        assert!(runner.options().resume);
        assert_eq!(
            runner.options().journal.as_deref(),
            Some(std::path::Path::new("/tmp/x.jsonl"))
        );
        assert_eq!(runner.config().folds, RunConfig::fast().folds);
    }
}
