//! Per-category aggregation (the grouping behind Figures 9-12).
//!
//! Each dataset belongs to one or more of the eight Table 3 categories;
//! a category's score for an algorithm is the average over the datasets
//! in that category for which the algorithm finished (DNF runs are
//! excluded, matching the paper's missing EDSC bars on Wide datasets).

use std::collections::BTreeMap;

use etsc_data::stats::Category;

use crate::experiment::{AlgoSpec, RunResult};
use crate::metrics::Metrics;

/// Averaged scores of one algorithm within one category.
#[derive(Debug, Clone)]
pub struct CategoryScore {
    /// Averaged metrics over the finished datasets of the category.
    pub metrics: Metrics,
    /// Mean training minutes.
    pub train_minutes: f64,
    /// Datasets contributing (finished runs).
    pub n_datasets: usize,
    /// Datasets skipped because the run was DNF.
    pub n_dnf: usize,
}

/// Aggregates per-dataset results into per-category averages.
///
/// `dataset_categories` maps each dataset name to its Table 3 categories.
/// Returns `category → algorithm → score`; categories or algorithms with
/// no finished run are absent.
pub fn aggregate_by_category(
    results: &[RunResult],
    dataset_categories: &BTreeMap<String, Vec<Category>>,
) -> BTreeMap<Category, BTreeMap<AlgoSpec, CategoryScore>> {
    let mut out: BTreeMap<Category, BTreeMap<AlgoSpec, CategoryScore>> = BTreeMap::new();
    // Accumulate sums first.
    struct Acc {
        acc: f64,
        f1: f64,
        earl: f64,
        hm: f64,
        train_min: f64,
        n: usize,
        dnf: usize,
    }
    let mut sums: BTreeMap<(Category, AlgoSpec), Acc> = BTreeMap::new();
    for r in results {
        let Some(cats) = dataset_categories.get(&r.dataset) else {
            continue;
        };
        for &cat in cats {
            let entry = sums.entry((cat, r.algo)).or_insert(Acc {
                acc: 0.0,
                f1: 0.0,
                earl: 0.0,
                hm: 0.0,
                train_min: 0.0,
                n: 0,
                dnf: 0,
            });
            match &r.metrics {
                Some(m) => {
                    entry.acc += m.accuracy;
                    entry.f1 += m.f1;
                    entry.earl += m.earliness;
                    entry.hm += m.harmonic_mean;
                    entry.train_min += r.train_minutes();
                    entry.n += 1;
                }
                None => entry.dnf += 1,
            }
        }
    }
    for ((cat, algo), acc) in sums {
        if acc.n == 0 && acc.dnf == 0 {
            continue;
        }
        let nf = acc.n.max(1) as f64;
        let score = CategoryScore {
            metrics: Metrics {
                accuracy: acc.acc / nf,
                f1: acc.f1 / nf,
                earliness: acc.earl / nf,
                harmonic_mean: acc.hm / nf,
            },
            train_minutes: acc.train_min / nf,
            n_datasets: acc.n,
            n_dnf: acc.dnf,
        };
        out.entry(cat).or_default().insert(algo, score);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(algo: AlgoSpec, dataset: &str, acc: f64, dnf: bool) -> RunResult {
        RunResult {
            algo,
            dataset: dataset.to_owned(),
            metrics: if dnf {
                None
            } else {
                Some(Metrics {
                    accuracy: acc,
                    f1: acc,
                    earliness: 0.5,
                    harmonic_mean: acc,
                })
            },
            train_secs: 60.0,
            test_secs_per_instance: 0.01,
            dnf,
        }
    }

    fn categories() -> BTreeMap<String, Vec<Category>> {
        let mut m = BTreeMap::new();
        m.insert("A".to_owned(), vec![Category::Wide, Category::Univariate]);
        m.insert("B".to_owned(), vec![Category::Wide]);
        m
    }

    #[test]
    fn averages_within_category() {
        let results = vec![
            result(AlgoSpec::Ects, "A", 0.8, false),
            result(AlgoSpec::Ects, "B", 0.6, false),
        ];
        let agg = aggregate_by_category(&results, &categories());
        let wide = &agg[&Category::Wide][&AlgoSpec::Ects];
        assert_eq!(wide.n_datasets, 2);
        assert!((wide.metrics.accuracy - 0.7).abs() < 1e-12);
        assert!((wide.train_minutes - 1.0).abs() < 1e-12);
        let uni = &agg[&Category::Univariate][&AlgoSpec::Ects];
        assert_eq!(uni.n_datasets, 1);
        assert!((uni.metrics.accuracy - 0.8).abs() < 1e-12);
    }

    #[test]
    fn dnf_runs_are_counted_but_not_averaged() {
        let results = vec![
            result(AlgoSpec::Edsc, "A", 0.9, false),
            result(AlgoSpec::Edsc, "B", 0.0, true),
        ];
        let agg = aggregate_by_category(&results, &categories());
        let wide = &agg[&Category::Wide][&AlgoSpec::Edsc];
        assert_eq!(wide.n_datasets, 1);
        assert_eq!(wide.n_dnf, 1);
        assert!((wide.metrics.accuracy - 0.9).abs() < 1e-12);
    }

    #[test]
    fn unknown_dataset_ignored() {
        let results = vec![result(AlgoSpec::Ects, "unknown", 0.5, false)];
        let agg = aggregate_by_category(&results, &categories());
        assert!(agg.is_empty());
    }
}
