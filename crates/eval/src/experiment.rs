//! Cross-validated experiment runner (Section 6.1).
//!
//! Every (algorithm, dataset) pair is evaluated with stratified
//! random-sampling 5-fold cross-validation; univariate algorithms are
//! automatically wrapped in the voting adapter on multivariate datasets;
//! EDSC runs under the framework's (scaled) training budget and records
//! a DNF exactly like the paper's "did not produce results within 48
//! hours" entries.

use std::time::{Duration, Instant};

use etsc_core::full::{MiniRocketClassifierConfig, MlstmClassifierConfig, WeaselClassifierConfig};
use etsc_core::{
    EarlyClassifier, Ecec, EcecConfig, EconomyK, EconomyKConfig, Ects, EctsConfig, Edsc,
    EdscConfig, EtscError, Strut, StrutConfig, Teaser, TeaserConfig, VotingAdapter,
};
use etsc_data::{Dataset, StratifiedKFold};
use etsc_ml::logistic::LogisticConfig;
use etsc_ml::nn::MlstmFcnConfig;
use etsc_obs::Obs;
use etsc_transforms::minirocket::MiniRocketConfig;
use etsc_transforms::weasel::WeaselConfig;

use crate::metrics::{EvalOutcome, Metrics};

/// The eight algorithms of the empirical comparison (Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AlgoSpec {
    /// ECEC (Lv et al.).
    Ecec,
    /// ECONOMY-K.
    EcoK,
    /// ECTS.
    Ects,
    /// EDSC.
    Edsc,
    /// TEASER.
    Teaser,
    /// STRUT + MiniROCKET.
    SMini,
    /// STRUT + MLSTM-FCN.
    SMlstm,
    /// STRUT + WEASEL(+MUSE).
    SWeasel,
}

impl AlgoSpec {
    /// All algorithms in the paper's reporting order.
    pub const ALL: [AlgoSpec; 8] = [
        AlgoSpec::Ecec,
        AlgoSpec::EcoK,
        AlgoSpec::Ects,
        AlgoSpec::Edsc,
        AlgoSpec::Teaser,
        AlgoSpec::SMini,
        AlgoSpec::SMlstm,
        AlgoSpec::SWeasel,
    ];

    /// Display name (paper spelling).
    pub fn name(self) -> &'static str {
        match self {
            AlgoSpec::Ecec => "ECEC",
            AlgoSpec::EcoK => "ECO-K",
            AlgoSpec::Ects => "ECTS",
            AlgoSpec::Edsc => "EDSC",
            AlgoSpec::Teaser => "TEASER",
            AlgoSpec::SMini => "S-MINI",
            AlgoSpec::SMlstm => "S-MLSTM",
            AlgoSpec::SWeasel => "S-WEASEL",
        }
    }

    /// Looks an algorithm up by display name (case-insensitive).
    pub fn by_name(name: &str) -> Option<AlgoSpec> {
        AlgoSpec::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
    }

    /// `true` when the underlying algorithm is univariate-only and needs
    /// the voting adapter for multivariate datasets.
    pub fn univariate_only(self) -> bool {
        !matches!(self, AlgoSpec::SMini | AlgoSpec::SMlstm | AlgoSpec::SWeasel)
    }

    /// Decision batch length for the Figure 13 heatmap: ECEC and TEASER
    /// evaluate every `L/N` points, the rest every point.
    pub fn decision_batch(self, series_len: usize, config: &RunConfig) -> usize {
        match self {
            AlgoSpec::Ecec => (series_len / config.ecec_prefixes.max(1)).max(1),
            AlgoSpec::Teaser => (series_len / config.teaser_prefixes_ucr.max(1)).max(1),
            _ => 1,
        }
    }

    /// Builds an untrained classifier for a dataset, wrapping in the
    /// voting adapter when needed.
    pub fn build(self, dataset: &Dataset, config: &RunConfig) -> Box<dyn EarlyClassifier> {
        let multivariate = dataset.vars() > 1;
        // TEASER's S parameter is dataset-dependent (Table 4): 10 for the
        // Biological and Maritime datasets, 20 for UCR/UEA.
        let teaser_s = if dataset.name() == "Biological" || dataset.name() == "Maritime" {
            config.teaser_prefixes_new
        } else {
            config.teaser_prefixes_ucr
        };
        let c = config.clone();
        match self {
            AlgoSpec::Ecec => {
                let make = move || Ecec::new(c.ecec_config());
                wrap(multivariate, config.fit_threads, make)
            }
            AlgoSpec::EcoK => {
                let make = move || EconomyK::new(c.economy_config());
                wrap(multivariate, config.fit_threads, make)
            }
            AlgoSpec::Ects => {
                let make = move || Ects::new(EctsConfig { support: 0 });
                wrap(multivariate, config.fit_threads, make)
            }
            AlgoSpec::Edsc => {
                let make = move || Edsc::new(c.edsc_config());
                wrap(multivariate, config.fit_threads, make)
            }
            AlgoSpec::Teaser => {
                let make = move || Teaser::new(c.teaser_config(teaser_s));
                wrap(multivariate, config.fit_threads, make)
            }
            AlgoSpec::SMini => Box::new(Strut::s_mini_with(
                c.strut_config(),
                MiniRocketClassifierConfig {
                    transform: c.minirocket_config(),
                    ..MiniRocketClassifierConfig::default()
                },
            )),
            AlgoSpec::SMlstm => Box::new(Strut::s_mlstm_with(
                StrutConfig {
                    search: etsc_core::TruncationSearch::FixedGrid(vec![
                        0.05, 0.2, 0.4, 0.6, 0.8, 1.0,
                    ]),
                    ..c.strut_config()
                },
                MlstmClassifierConfig {
                    network: c.mlstm_config(),
                    lstm_grid: c.mlstm_lstm_grid.clone(),
                },
            )),
            AlgoSpec::SWeasel => Box::new(Strut::s_weasel_with(
                c.strut_config(),
                WeaselClassifierConfig {
                    weasel: c.weasel_config(),
                    logistic: c.logistic_config(),
                },
            )),
        }
    }
}

fn wrap<C: EarlyClassifier + Send + 'static>(
    multivariate: bool,
    fit_threads: usize,
    make: impl Fn() -> C + Send + Sync + 'static,
) -> Box<dyn EarlyClassifier> {
    if multivariate {
        Box::new(VotingAdapter::new(make).with_fit_threads(fit_threads))
    } else {
        Box::new(make())
    }
}

/// Global run configuration: cross-validation, algorithm parameters
/// (Table 4 defaults), and the scaled training budget.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Cross-validation folds (paper: 5).
    pub folds: usize,
    /// Seed for CV shuffling and stochastic components.
    pub seed: u64,
    /// ECEC prefix count N (Table 4: 20).
    pub ecec_prefixes: usize,
    /// TEASER S for UCR/UEA datasets (Table 4: 20).
    pub teaser_prefixes_ucr: usize,
    /// TEASER S for the Biological and Maritime datasets (Table 4: 10).
    pub teaser_prefixes_new: usize,
    /// Universal wall-clock training budget — the framework's 48-hour
    /// rule, scaled. Every algorithm's cross-validated training is
    /// checked against this deadline between folds (and EDSC also
    /// checks it internally while enumerating candidates); an overrun
    /// records a DNF instead of failing the run.
    pub train_budget: Duration,
    /// EDSC candidate budget.
    pub edsc_candidates: usize,
    /// WEASEL feature budget (affects ECEC/TEASER/S-WEASEL).
    pub weasel_features: usize,
    /// WEASEL window-size count.
    pub weasel_windows: usize,
    /// Logistic-regression epochs.
    pub logistic_epochs: usize,
    /// MiniROCKET feature budget.
    pub minirocket_features: usize,
    /// MLSTM epochs.
    pub mlstm_epochs: usize,
    /// MLSTM conv filter counts.
    pub mlstm_filters: [usize; 3],
    /// MLSTM cell-count grid (paper: {8, 64, 128}).
    pub mlstm_lstm_grid: Vec<usize>,
    /// Thread budget for parallelism *inside* one cell's fit (the
    /// voting adapter trains per-variable voters concurrently up to
    /// this cap): 1 = sequential (default), 0 = auto — resolved by
    /// [`crate::runner::MatrixRunner`] to the machine parallelism
    /// divided by its worker count, so nested parallelism never
    /// oversubscribes the machine.
    pub fit_threads: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            folds: 5,
            seed: 2024,
            ecec_prefixes: 20,
            teaser_prefixes_ucr: 20,
            teaser_prefixes_new: 10,
            train_budget: Duration::from_secs(120),
            edsc_candidates: 1500,
            weasel_features: 256,
            weasel_windows: 6,
            logistic_epochs: 120,
            minirocket_features: 500,
            mlstm_epochs: 30,
            mlstm_filters: [8, 16, 8],
            mlstm_lstm_grid: vec![8],
            fit_threads: 1,
        }
    }
}

impl RunConfig {
    /// A reduced profile for CI-speed sweeps: fewer prefixes/features/
    /// epochs, tight EDSC budget. Scaling is reported by the harness.
    pub fn fast() -> RunConfig {
        RunConfig {
            folds: 3,
            ecec_prefixes: 8,
            teaser_prefixes_ucr: 8,
            teaser_prefixes_new: 5,
            train_budget: Duration::from_secs(20),
            edsc_candidates: 400,
            weasel_features: 128,
            weasel_windows: 4,
            logistic_epochs: 60,
            minirocket_features: 250,
            mlstm_epochs: 15,
            mlstm_filters: [4, 8, 4],
            mlstm_lstm_grid: vec![4],
            ..RunConfig::default()
        }
    }

    /// WEASEL configuration derived from this run profile.
    pub fn weasel_config(&self) -> WeaselConfig {
        WeaselConfig {
            top_features: self.weasel_features,
            max_windows: self.weasel_windows,
            ..WeaselConfig::default()
        }
    }

    /// Logistic-regression configuration derived from this run profile.
    pub fn logistic_config(&self) -> LogisticConfig {
        LogisticConfig {
            max_epochs: self.logistic_epochs,
            seed: self.seed,
            ..LogisticConfig::default()
        }
    }

    /// ECEC configuration derived from this run profile.
    pub fn ecec_config(&self) -> EcecConfig {
        EcecConfig {
            n_prefixes: self.ecec_prefixes,
            cv_folds: 3,
            weasel: self.weasel_config(),
            logistic: self.logistic_config(),
            seed: self.seed,
            ..EcecConfig::default()
        }
    }

    /// Economy-K configuration derived from this run profile.
    pub fn economy_config(&self) -> EconomyKConfig {
        EconomyKConfig {
            seed: self.seed,
            ..EconomyKConfig::default()
        }
    }

    /// Returns a copy with the universal training budget replaced.
    pub fn with_train_budget(mut self, budget: Duration) -> RunConfig {
        self.train_budget = budget;
        self
    }

    /// EDSC configuration derived from this run profile.
    pub fn edsc_config(&self) -> EdscConfig {
        EdscConfig {
            max_candidates: self.edsc_candidates,
            train_budget: Some(self.train_budget),
            ..EdscConfig::default()
        }
    }

    /// TEASER configuration for `s` prefixes, derived from this run profile.
    pub fn teaser_config(&self, s: usize) -> TeaserConfig {
        TeaserConfig {
            s_prefixes: s,
            weasel: self.weasel_config(),
            logistic: self.logistic_config(),
            ..TeaserConfig::default()
        }
    }

    /// SR-CF (Strut) configuration derived from this run profile.
    pub fn strut_config(&self) -> StrutConfig {
        StrutConfig {
            seed: self.seed,
            ..StrutConfig::default()
        }
    }

    /// MiniROCKET configuration derived from this run profile.
    pub fn minirocket_config(&self) -> MiniRocketConfig {
        MiniRocketConfig {
            num_features: self.minirocket_features,
            seed: self.seed,
            ..MiniRocketConfig::default()
        }
    }

    /// MLSTM-FCN network configuration derived from this run profile.
    pub fn mlstm_config(&self) -> MlstmFcnConfig {
        MlstmFcnConfig {
            epochs: self.mlstm_epochs,
            filters: self.mlstm_filters,
            seed: self.seed,
            ..MlstmFcnConfig::default()
        }
    }
}

/// Result of one (algorithm, dataset) cross-validated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Algorithm evaluated.
    pub algo: AlgoSpec,
    /// Dataset name.
    pub dataset: String,
    /// Averaged metrics; `None` when the run did not finish (DNF).
    pub metrics: Option<Metrics>,
    /// Mean wall-clock training time per fold, seconds.
    pub train_secs: f64,
    /// Mean wall-clock testing time per instance, seconds.
    pub test_secs_per_instance: f64,
    /// `true` when training exceeded the budget (the paper's hatched
    /// cells / missing bars).
    pub dnf: bool,
}

impl RunResult {
    /// Training time in minutes, the unit of Figure 12.
    pub fn train_minutes(&self) -> f64 {
        self.train_secs / 60.0
    }
}

/// Runs one algorithm on one dataset with stratified K-fold CV.
///
/// This is the instrumented primitive behind every runner entry point:
/// the whole cell runs inside a `cv` span (attributes `dataset`,
/// `algo`), each fold inside a `fold` span with `fit` and `predict`
/// child spans, and metric aggregation inside a `metrics` span.
/// Transform-backed algorithms (WEASEL, MiniROCKET) additionally emit
/// `transform` spans nested under `fit`, because `obs` is installed as
/// the [ambient context](etsc_obs::with_ambient) for the duration of
/// the cell. Per-phase durations also land in the registry's
/// `eval_fit_secs` / `eval_predict_secs` histograms. Pass
/// [`Obs::disabled`] for an uninstrumented run — the result is
/// identical either way.
///
/// Every algorithm runs under the universal `train_budget` deadline
/// (the paper's 48-hour rule, scaled): accumulated training time is
/// checked cooperatively before each fold, and EDSC additionally
/// checks it while enumerating candidates. An overrun in any fold
/// marks the whole run DNF (matching the paper's treatment of EDSC on
/// Wide datasets); any other error propagates.
///
/// # Errors
/// Data/model failures other than budget overruns.
pub fn run_cell(
    algo: AlgoSpec,
    dataset: &Dataset,
    config: &RunConfig,
    obs: &Obs,
) -> Result<RunResult, EtscError> {
    etsc_obs::with_ambient(obs, || {
        run_cell_inner(
            algo,
            algo.name(),
            &|d, c| algo.build(d, c),
            dataset,
            config,
            obs,
        )
    })
}

/// [`run_cell`] with an injected classifier builder and display name —
/// the shared CV engine behind the algorithm axis and the trigger axis
/// ([`crate::trigger_axis`]). `algo` is only carried into the
/// [`RunResult`] for journal compatibility; `display` labels the spans.
pub(crate) fn run_cell_inner(
    algo: AlgoSpec,
    display: &str,
    build: &(dyn Fn(&Dataset, &RunConfig) -> Box<dyn EarlyClassifier> + Sync),
    dataset: &Dataset,
    config: &RunConfig,
    obs: &Obs,
) -> Result<RunResult, EtscError> {
    let mut cv_span = obs.tracer.span("cv");
    cv_span.attr("dataset", dataset.name());
    cv_span.attr("algo", display);
    obs.metrics.counter("eval_cells_total").inc();
    let fit_hist = obs.metrics.histogram("eval_fit_secs");
    let predict_hist = obs.metrics.histogram("eval_predict_secs");
    let folds_counter = obs.metrics.counter("eval_folds_total");
    let dnf_counter = obs.metrics.counter("eval_dnf_total");

    let folds = StratifiedKFold::new(config.folds, config.seed)
        .map_err(EtscError::from)?
        .split(dataset)
        .map_err(EtscError::from)?;
    let budget_secs = config.train_budget.as_secs_f64();
    let mut outcomes = Vec::new();
    let mut train_total = 0.0;
    let mut test_total = 0.0;
    let mut test_count = 0usize;
    for (fold_idx, fold) in folds.iter().enumerate() {
        // Cooperative universal deadline: refuse to start the next
        // fold's training once the budget is spent.
        if train_total >= budget_secs {
            dnf_counter.inc();
            return Ok(RunResult {
                algo,
                dataset: dataset.name().to_owned(),
                metrics: None,
                train_secs: train_total,
                test_secs_per_instance: 0.0,
                dnf: true,
            });
        }
        let mut fold_span = obs.tracer.span("fold");
        fold_span.attr("fold", &fold_idx.to_string());
        let train = dataset.subset(&fold.train);
        let mut clf = build(dataset, config);
        let fit_span = obs.tracer.span("fit");
        let t0 = Instant::now();
        let fit_result = clf.fit(&train);
        let fit_secs = t0.elapsed().as_secs_f64();
        drop(fit_span);
        fit_hist.record(fit_secs);
        match fit_result {
            Ok(()) => {}
            Err(EtscError::TrainingBudgetExceeded { .. }) => {
                dnf_counter.inc();
                return Ok(RunResult {
                    algo,
                    dataset: dataset.name().to_owned(),
                    metrics: None,
                    train_secs: train_total + fit_secs,
                    test_secs_per_instance: 0.0,
                    dnf: true,
                });
            }
            Err(e) => return Err(e),
        }
        train_total += fit_secs;
        let predict_span = obs.tracer.span("predict");
        for &i in &fold.test {
            let inst = dataset.instance(i);
            let t1 = Instant::now();
            let p = clf.predict_early(inst)?;
            let predict_secs = t1.elapsed().as_secs_f64();
            predict_hist.record(predict_secs);
            test_total += predict_secs;
            test_count += 1;
            outcomes.push(EvalOutcome {
                truth: dataset.label(i),
                predicted: p.label,
                prefix_len: p.prefix_len,
                full_len: inst.len(),
            });
        }
        drop(predict_span);
        folds_counter.inc();
    }
    let metrics_span = obs.tracer.span("metrics");
    let metrics = Metrics::compute(&outcomes, dataset.n_classes());
    drop(metrics_span);
    Ok(RunResult {
        algo,
        dataset: dataset.name().to_owned(),
        metrics: Some(metrics),
        train_secs: train_total / folds.len() as f64,
        test_secs_per_instance: test_total / test_count.max(1) as f64,
        dnf: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, MultiSeries};

    fn toy(vars: usize) -> Dataset {
        let mut b = DatasetBuilder::new("toy");
        for i in 0..12 {
            let phase = i as f64 * 0.29;
            for (freq, class) in [(0.3, "slow"), (1.6, "fast")] {
                let rows: Vec<Vec<f64>> = (0..vars)
                    .map(|v| {
                        (0..24)
                            .map(|t| ((t as f64 * freq) + phase + v as f64).sin())
                            .collect()
                    })
                    .collect();
                b.push_named(MultiSeries::from_rows(rows).unwrap(), class);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn names_roundtrip() {
        for a in AlgoSpec::ALL {
            assert_eq!(AlgoSpec::by_name(a.name()), Some(a));
        }
        assert_eq!(AlgoSpec::by_name("eco-k"), Some(AlgoSpec::EcoK));
        assert!(AlgoSpec::by_name("nope").is_none());
    }

    #[test]
    fn univariate_flags() {
        assert!(AlgoSpec::Ecec.univariate_only());
        assert!(!AlgoSpec::SMini.univariate_only());
    }

    #[test]
    fn decision_batches() {
        let cfg = RunConfig::default();
        assert_eq!(AlgoSpec::Ecec.decision_batch(100, &cfg), 5);
        assert_eq!(AlgoSpec::Ects.decision_batch(100, &cfg), 1);
    }

    #[test]
    fn run_cell_ects_on_univariate() {
        let d = toy(1);
        let r = run_cell(AlgoSpec::Ects, &d, &RunConfig::fast(), &Obs::disabled()).unwrap();
        assert!(!r.dnf);
        let m = r.metrics.unwrap();
        assert!(m.accuracy > 0.7, "accuracy {}", m.accuracy);
        assert!(r.train_secs >= 0.0);
        assert!(r.test_secs_per_instance >= 0.0);
    }

    #[test]
    fn run_cell_wraps_univariate_algo_on_multivariate_data() {
        let d = toy(2);
        let r = run_cell(AlgoSpec::Ects, &d, &RunConfig::fast(), &Obs::disabled()).unwrap();
        let m = r.metrics.unwrap();
        assert!(m.accuracy > 0.6, "accuracy {}", m.accuracy);
    }

    #[test]
    fn edsc_budget_yields_dnf() {
        let d = toy(1);
        let cfg = RunConfig {
            train_budget: Duration::from_nanos(0),
            ..RunConfig::fast()
        };
        let r = run_cell(AlgoSpec::Edsc, &d, &cfg, &Obs::disabled()).unwrap();
        assert!(r.dnf);
        assert!(r.metrics.is_none());
    }

    #[test]
    fn train_budget_applies_to_every_algorithm() {
        let d = toy(1);
        let cfg = RunConfig::fast().with_train_budget(Duration::from_nanos(0));
        for algo in [AlgoSpec::Ects, AlgoSpec::Teaser, AlgoSpec::SMini] {
            let r = run_cell(algo, &d, &cfg, &Obs::disabled()).unwrap();
            assert!(r.dnf, "{} should DNF under a zero budget", algo.name());
            assert!(r.metrics.is_none());
        }
    }

    #[test]
    fn build_produces_named_algorithms() {
        let d = toy(1);
        let cfg = RunConfig::fast();
        for a in AlgoSpec::ALL {
            let clf = a.build(&d, &cfg);
            assert!(!clf.name().is_empty());
        }
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use etsc_datasets::{GenOptions, PaperDataset};

    #[test]
    fn parallel_matrix_matches_sequential() {
        let datasets: Vec<Dataset> = [PaperDataset::PowerCons, PaperDataset::DodgerLoopGame]
            .iter()
            .map(|d| {
                d.generate(GenOptions {
                    height_scale: 0.15,
                    length_scale: 0.25,
                    seed: 5,
                })
            })
            .collect();
        let algos = [AlgoSpec::Ects, AlgoSpec::EcoK];
        let config = RunConfig::fast();
        let parallel = crate::runner::MatrixRunner::new(config.clone())
            .parallel(4)
            .run_results(&datasets, &algos)
            .unwrap();
        assert_eq!(parallel.len(), 4);
        let mut k = 0;
        for ds in &datasets {
            for &algo in &algos {
                let sequential = run_cell(algo, ds, &config, &Obs::disabled()).unwrap();
                let p = &parallel[k];
                assert_eq!(p.algo, algo);
                assert_eq!(p.dataset, sequential.dataset);
                assert_eq!(p.metrics.unwrap(), sequential.metrics.unwrap());
                k += 1;
            }
        }
    }
}
