//! Cross-validated experiment runner (Section 6.1).
//!
//! Every (algorithm, dataset) pair is evaluated with stratified
//! random-sampling 5-fold cross-validation; univariate algorithms are
//! automatically wrapped in the voting adapter on multivariate datasets;
//! EDSC runs under the framework's (scaled) training budget and records
//! a DNF exactly like the paper's "did not produce results within 48
//! hours" entries.

use std::time::{Duration, Instant};

use etsc_core::full::{MiniRocketClassifierConfig, MlstmClassifierConfig, WeaselClassifierConfig};
use etsc_core::{
    EarlyClassifier, Ecec, EcecConfig, EconomyK, EconomyKConfig, Ects, EctsConfig, Edsc,
    EdscConfig, EtscError, Strut, StrutConfig, Teaser, TeaserConfig, VotingAdapter,
};
use etsc_data::{Dataset, StratifiedKFold};
use etsc_ml::logistic::LogisticConfig;
use etsc_ml::nn::MlstmFcnConfig;
use etsc_transforms::minirocket::MiniRocketConfig;
use etsc_transforms::weasel::WeaselConfig;

use crate::metrics::{EvalOutcome, Metrics};

/// The eight algorithms of the empirical comparison (Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AlgoSpec {
    /// ECEC (Lv et al.).
    Ecec,
    /// ECONOMY-K.
    EcoK,
    /// ECTS.
    Ects,
    /// EDSC.
    Edsc,
    /// TEASER.
    Teaser,
    /// STRUT + MiniROCKET.
    SMini,
    /// STRUT + MLSTM-FCN.
    SMlstm,
    /// STRUT + WEASEL(+MUSE).
    SWeasel,
}

impl AlgoSpec {
    /// All algorithms in the paper's reporting order.
    pub const ALL: [AlgoSpec; 8] = [
        AlgoSpec::Ecec,
        AlgoSpec::EcoK,
        AlgoSpec::Ects,
        AlgoSpec::Edsc,
        AlgoSpec::Teaser,
        AlgoSpec::SMini,
        AlgoSpec::SMlstm,
        AlgoSpec::SWeasel,
    ];

    /// Display name (paper spelling).
    pub fn name(self) -> &'static str {
        match self {
            AlgoSpec::Ecec => "ECEC",
            AlgoSpec::EcoK => "ECO-K",
            AlgoSpec::Ects => "ECTS",
            AlgoSpec::Edsc => "EDSC",
            AlgoSpec::Teaser => "TEASER",
            AlgoSpec::SMini => "S-MINI",
            AlgoSpec::SMlstm => "S-MLSTM",
            AlgoSpec::SWeasel => "S-WEASEL",
        }
    }

    /// Looks an algorithm up by display name (case-insensitive).
    pub fn by_name(name: &str) -> Option<AlgoSpec> {
        AlgoSpec::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
    }

    /// `true` when the underlying algorithm is univariate-only and needs
    /// the voting adapter for multivariate datasets.
    pub fn univariate_only(self) -> bool {
        !matches!(self, AlgoSpec::SMini | AlgoSpec::SMlstm | AlgoSpec::SWeasel)
    }

    /// Decision batch length for the Figure 13 heatmap: ECEC and TEASER
    /// evaluate every `L/N` points, the rest every point.
    pub fn decision_batch(self, series_len: usize, config: &RunConfig) -> usize {
        match self {
            AlgoSpec::Ecec => (series_len / config.ecec_prefixes.max(1)).max(1),
            AlgoSpec::Teaser => (series_len / config.teaser_prefixes_ucr.max(1)).max(1),
            _ => 1,
        }
    }

    /// Builds an untrained classifier for a dataset, wrapping in the
    /// voting adapter when needed.
    pub fn build(self, dataset: &Dataset, config: &RunConfig) -> Box<dyn EarlyClassifier> {
        let multivariate = dataset.vars() > 1;
        // TEASER's S parameter is dataset-dependent (Table 4): 10 for the
        // Biological and Maritime datasets, 20 for UCR/UEA.
        let teaser_s = if dataset.name() == "Biological" || dataset.name() == "Maritime" {
            config.teaser_prefixes_new
        } else {
            config.teaser_prefixes_ucr
        };
        let c = config.clone();
        match self {
            AlgoSpec::Ecec => {
                let make = move || Ecec::new(c.ecec_config());
                wrap(multivariate, make)
            }
            AlgoSpec::EcoK => {
                let make = move || EconomyK::new(c.economy_config());
                wrap(multivariate, make)
            }
            AlgoSpec::Ects => {
                let make = move || Ects::new(EctsConfig { support: 0 });
                wrap(multivariate, make)
            }
            AlgoSpec::Edsc => {
                let make = move || Edsc::new(c.edsc_config());
                wrap(multivariate, make)
            }
            AlgoSpec::Teaser => {
                let make = move || Teaser::new(c.teaser_config(teaser_s));
                wrap(multivariate, make)
            }
            AlgoSpec::SMini => Box::new(Strut::s_mini_with(
                c.strut_config(),
                MiniRocketClassifierConfig {
                    transform: c.minirocket_config(),
                    ..MiniRocketClassifierConfig::default()
                },
            )),
            AlgoSpec::SMlstm => Box::new(Strut::s_mlstm_with(
                StrutConfig {
                    search: etsc_core::TruncationSearch::FixedGrid(vec![
                        0.05, 0.2, 0.4, 0.6, 0.8, 1.0,
                    ]),
                    ..c.strut_config()
                },
                MlstmClassifierConfig {
                    network: c.mlstm_config(),
                    lstm_grid: c.mlstm_lstm_grid.clone(),
                },
            )),
            AlgoSpec::SWeasel => Box::new(Strut::s_weasel_with(
                c.strut_config(),
                WeaselClassifierConfig {
                    weasel: c.weasel_config(),
                    logistic: c.logistic_config(),
                },
            )),
        }
    }
}

fn wrap<C: EarlyClassifier + 'static>(
    multivariate: bool,
    make: impl Fn() -> C + Send + Sync + 'static,
) -> Box<dyn EarlyClassifier> {
    if multivariate {
        Box::new(VotingAdapter::new(make))
    } else {
        Box::new(make())
    }
}

/// Global run configuration: cross-validation, algorithm parameters
/// (Table 4 defaults), and the scaled training budget.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Cross-validation folds (paper: 5).
    pub folds: usize,
    /// Seed for CV shuffling and stochastic components.
    pub seed: u64,
    /// ECEC prefix count N (Table 4: 20).
    pub ecec_prefixes: usize,
    /// TEASER S for UCR/UEA datasets (Table 4: 20).
    pub teaser_prefixes_ucr: usize,
    /// TEASER S for the Biological and Maritime datasets (Table 4: 10).
    pub teaser_prefixes_new: usize,
    /// Universal wall-clock training budget — the framework's 48-hour
    /// rule, scaled. Every algorithm's cross-validated training is
    /// checked against this deadline between folds (and EDSC also
    /// checks it internally while enumerating candidates); an overrun
    /// records a DNF instead of failing the run.
    pub train_budget: Duration,
    /// EDSC candidate budget.
    pub edsc_candidates: usize,
    /// WEASEL feature budget (affects ECEC/TEASER/S-WEASEL).
    pub weasel_features: usize,
    /// WEASEL window-size count.
    pub weasel_windows: usize,
    /// Logistic-regression epochs.
    pub logistic_epochs: usize,
    /// MiniROCKET feature budget.
    pub minirocket_features: usize,
    /// MLSTM epochs.
    pub mlstm_epochs: usize,
    /// MLSTM conv filter counts.
    pub mlstm_filters: [usize; 3],
    /// MLSTM cell-count grid (paper: {8, 64, 128}).
    pub mlstm_lstm_grid: Vec<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            folds: 5,
            seed: 2024,
            ecec_prefixes: 20,
            teaser_prefixes_ucr: 20,
            teaser_prefixes_new: 10,
            train_budget: Duration::from_secs(120),
            edsc_candidates: 1500,
            weasel_features: 256,
            weasel_windows: 6,
            logistic_epochs: 120,
            minirocket_features: 500,
            mlstm_epochs: 30,
            mlstm_filters: [8, 16, 8],
            mlstm_lstm_grid: vec![8],
        }
    }
}

impl RunConfig {
    /// A reduced profile for CI-speed sweeps: fewer prefixes/features/
    /// epochs, tight EDSC budget. Scaling is reported by the harness.
    pub fn fast() -> RunConfig {
        RunConfig {
            folds: 3,
            ecec_prefixes: 8,
            teaser_prefixes_ucr: 8,
            teaser_prefixes_new: 5,
            train_budget: Duration::from_secs(20),
            edsc_candidates: 400,
            weasel_features: 128,
            weasel_windows: 4,
            logistic_epochs: 60,
            minirocket_features: 250,
            mlstm_epochs: 15,
            mlstm_filters: [4, 8, 4],
            mlstm_lstm_grid: vec![4],
            ..RunConfig::default()
        }
    }

    /// WEASEL configuration derived from this run profile.
    pub fn weasel_config(&self) -> WeaselConfig {
        WeaselConfig {
            top_features: self.weasel_features,
            max_windows: self.weasel_windows,
            ..WeaselConfig::default()
        }
    }

    /// Logistic-regression configuration derived from this run profile.
    pub fn logistic_config(&self) -> LogisticConfig {
        LogisticConfig {
            max_epochs: self.logistic_epochs,
            seed: self.seed,
            ..LogisticConfig::default()
        }
    }

    /// ECEC configuration derived from this run profile.
    pub fn ecec_config(&self) -> EcecConfig {
        EcecConfig {
            n_prefixes: self.ecec_prefixes,
            cv_folds: 3,
            weasel: self.weasel_config(),
            logistic: self.logistic_config(),
            seed: self.seed,
            ..EcecConfig::default()
        }
    }

    /// Economy-K configuration derived from this run profile.
    pub fn economy_config(&self) -> EconomyKConfig {
        EconomyKConfig {
            seed: self.seed,
            ..EconomyKConfig::default()
        }
    }

    /// The training budget, under its pre-generalization name.
    #[deprecated(note = "the budget now applies to every algorithm; use `train_budget`")]
    pub fn edsc_budget(&self) -> Duration {
        self.train_budget
    }

    /// Returns a copy with the universal training budget replaced.
    pub fn with_train_budget(mut self, budget: Duration) -> RunConfig {
        self.train_budget = budget;
        self
    }

    /// EDSC configuration derived from this run profile.
    pub fn edsc_config(&self) -> EdscConfig {
        EdscConfig {
            max_candidates: self.edsc_candidates,
            train_budget: Some(self.train_budget),
            ..EdscConfig::default()
        }
    }

    /// TEASER configuration for `s` prefixes, derived from this run profile.
    pub fn teaser_config(&self, s: usize) -> TeaserConfig {
        TeaserConfig {
            s_prefixes: s,
            weasel: self.weasel_config(),
            logistic: self.logistic_config(),
            ..TeaserConfig::default()
        }
    }

    /// SR-CF (Strut) configuration derived from this run profile.
    pub fn strut_config(&self) -> StrutConfig {
        StrutConfig {
            seed: self.seed,
            ..StrutConfig::default()
        }
    }

    /// MiniROCKET configuration derived from this run profile.
    pub fn minirocket_config(&self) -> MiniRocketConfig {
        MiniRocketConfig {
            num_features: self.minirocket_features,
            seed: self.seed,
            ..MiniRocketConfig::default()
        }
    }

    /// MLSTM-FCN network configuration derived from this run profile.
    pub fn mlstm_config(&self) -> MlstmFcnConfig {
        MlstmFcnConfig {
            epochs: self.mlstm_epochs,
            filters: self.mlstm_filters,
            seed: self.seed,
            ..MlstmFcnConfig::default()
        }
    }
}

/// Result of one (algorithm, dataset) cross-validated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Algorithm evaluated.
    pub algo: AlgoSpec,
    /// Dataset name.
    pub dataset: String,
    /// Averaged metrics; `None` when the run did not finish (DNF).
    pub metrics: Option<Metrics>,
    /// Mean wall-clock training time per fold, seconds.
    pub train_secs: f64,
    /// Mean wall-clock testing time per instance, seconds.
    pub test_secs_per_instance: f64,
    /// `true` when training exceeded the budget (the paper's hatched
    /// cells / missing bars).
    pub dnf: bool,
}

impl RunResult {
    /// Training time in minutes, the unit of Figure 12.
    pub fn train_minutes(&self) -> f64 {
        self.train_secs / 60.0
    }
}

/// Runs one algorithm on one dataset with stratified K-fold CV.
///
/// Every algorithm runs under the universal `train_budget` deadline
/// (the paper's 48-hour rule, scaled): accumulated training time is
/// checked cooperatively before each fold, and EDSC additionally
/// checks it while enumerating candidates. An overrun in any fold
/// marks the whole run DNF (matching the paper's treatment of EDSC on
/// Wide datasets); any other error propagates.
///
/// # Errors
/// Data/model failures other than budget overruns.
pub fn run_cv(
    algo: AlgoSpec,
    dataset: &Dataset,
    config: &RunConfig,
) -> Result<RunResult, EtscError> {
    let folds = StratifiedKFold::new(config.folds, config.seed)
        .map_err(EtscError::from)?
        .split(dataset)
        .map_err(EtscError::from)?;
    let budget_secs = config.train_budget.as_secs_f64();
    let mut outcomes = Vec::new();
    let mut train_total = 0.0;
    let mut test_total = 0.0;
    let mut test_count = 0usize;
    for fold in &folds {
        // Cooperative universal deadline: refuse to start the next
        // fold's training once the budget is spent.
        if train_total >= budget_secs {
            return Ok(RunResult {
                algo,
                dataset: dataset.name().to_owned(),
                metrics: None,
                train_secs: train_total,
                test_secs_per_instance: 0.0,
                dnf: true,
            });
        }
        let train = dataset.subset(&fold.train);
        let mut clf = algo.build(dataset, config);
        let t0 = Instant::now();
        match clf.fit(&train) {
            Ok(()) => {}
            Err(EtscError::TrainingBudgetExceeded { .. }) => {
                return Ok(RunResult {
                    algo,
                    dataset: dataset.name().to_owned(),
                    metrics: None,
                    train_secs: train_total + t0.elapsed().as_secs_f64(),
                    test_secs_per_instance: 0.0,
                    dnf: true,
                });
            }
            Err(e) => return Err(e),
        }
        train_total += t0.elapsed().as_secs_f64();
        for &i in &fold.test {
            let inst = dataset.instance(i);
            let t1 = Instant::now();
            let p = clf.predict_early(inst)?;
            test_total += t1.elapsed().as_secs_f64();
            test_count += 1;
            outcomes.push(EvalOutcome {
                truth: dataset.label(i),
                predicted: p.label,
                prefix_len: p.prefix_len,
                full_len: inst.len(),
            });
        }
    }
    let metrics = Metrics::compute(&outcomes, dataset.n_classes());
    Ok(RunResult {
        algo,
        dataset: dataset.name().to_owned(),
        metrics: Some(metrics),
        train_secs: train_total / folds.len() as f64,
        test_secs_per_instance: test_total / test_count.max(1) as f64,
        dnf: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, MultiSeries};

    fn toy(vars: usize) -> Dataset {
        let mut b = DatasetBuilder::new("toy");
        for i in 0..12 {
            let phase = i as f64 * 0.29;
            for (freq, class) in [(0.3, "slow"), (1.6, "fast")] {
                let rows: Vec<Vec<f64>> = (0..vars)
                    .map(|v| {
                        (0..24)
                            .map(|t| ((t as f64 * freq) + phase + v as f64).sin())
                            .collect()
                    })
                    .collect();
                b.push_named(MultiSeries::from_rows(rows).unwrap(), class);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn names_roundtrip() {
        for a in AlgoSpec::ALL {
            assert_eq!(AlgoSpec::by_name(a.name()), Some(a));
        }
        assert_eq!(AlgoSpec::by_name("eco-k"), Some(AlgoSpec::EcoK));
        assert!(AlgoSpec::by_name("nope").is_none());
    }

    #[test]
    fn univariate_flags() {
        assert!(AlgoSpec::Ecec.univariate_only());
        assert!(!AlgoSpec::SMini.univariate_only());
    }

    #[test]
    fn decision_batches() {
        let cfg = RunConfig::default();
        assert_eq!(AlgoSpec::Ecec.decision_batch(100, &cfg), 5);
        assert_eq!(AlgoSpec::Ects.decision_batch(100, &cfg), 1);
    }

    #[test]
    fn run_cv_ects_on_univariate() {
        let d = toy(1);
        let r = run_cv(AlgoSpec::Ects, &d, &RunConfig::fast()).unwrap();
        assert!(!r.dnf);
        let m = r.metrics.unwrap();
        assert!(m.accuracy > 0.7, "accuracy {}", m.accuracy);
        assert!(r.train_secs >= 0.0);
        assert!(r.test_secs_per_instance >= 0.0);
    }

    #[test]
    fn run_cv_wraps_univariate_algo_on_multivariate_data() {
        let d = toy(2);
        let r = run_cv(AlgoSpec::Ects, &d, &RunConfig::fast()).unwrap();
        let m = r.metrics.unwrap();
        assert!(m.accuracy > 0.6, "accuracy {}", m.accuracy);
    }

    #[test]
    fn edsc_budget_yields_dnf() {
        let d = toy(1);
        let cfg = RunConfig {
            train_budget: Duration::from_nanos(0),
            ..RunConfig::fast()
        };
        let r = run_cv(AlgoSpec::Edsc, &d, &cfg).unwrap();
        assert!(r.dnf);
        assert!(r.metrics.is_none());
    }

    #[test]
    fn train_budget_applies_to_every_algorithm() {
        let d = toy(1);
        let cfg = RunConfig::fast().with_train_budget(Duration::from_nanos(0));
        for algo in [AlgoSpec::Ects, AlgoSpec::Teaser, AlgoSpec::SMini] {
            let r = run_cv(algo, &d, &cfg).unwrap();
            assert!(r.dnf, "{} should DNF under a zero budget", algo.name());
            assert!(r.metrics.is_none());
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_budget_alias_reads_train_budget() {
        let cfg = RunConfig::fast().with_train_budget(Duration::from_secs(7));
        assert_eq!(cfg.edsc_budget(), Duration::from_secs(7));
    }

    #[test]
    fn build_produces_named_algorithms() {
        let d = toy(1);
        let cfg = RunConfig::fast();
        for a in AlgoSpec::ALL {
            let clf = a.build(&d, &cfg);
            assert!(!clf.name().is_empty());
        }
    }
}

/// Runs the full (dataset × algorithm) matrix with a bounded worker pool
/// (crossbeam scoped threads pulling jobs from a shared queue).
///
/// Results come back in `(dataset, algorithm)` row-major order, exactly
/// as the sequential double loop would produce them. Wall-clock
/// train/test timings are still measured per job, so heavy parallelism
/// inflates them through CPU contention — use the sequential path when
/// timing fidelity matters (the `reproduce` binary defaults to it).
///
/// This is a compatibility wrapper over
/// [`supervise_matrix`](crate::supervisor::supervise_matrix): every
/// cell runs to completion under panic isolation, and only then is the
/// first failure (if any) reported. Callers that want per-cell
/// outcomes — completed work preserved alongside failed and panicked
/// cells — should use the supervisor directly.
///
/// # Errors
/// The first cell failure or panic, after all cells have run.
pub fn run_matrix_parallel(
    datasets: &[Dataset],
    algos: &[AlgoSpec],
    config: &RunConfig,
    max_threads: usize,
) -> Result<Vec<RunResult>, EtscError> {
    let options = crate::supervisor::SupervisorOptions {
        max_threads,
        ..crate::supervisor::SupervisorOptions::default()
    };
    let outcomes = crate::supervisor::supervise_matrix(datasets, algos, config, &options)?;
    outcomes
        .into_iter()
        .map(|cell| match cell {
            crate::supervisor::CellOutcome::Finished(result) => Ok(result),
            crate::supervisor::CellOutcome::Failed { error, .. } => {
                Err(EtscError::Config(format!("cell failed: {error}")))
            }
            crate::supervisor::CellOutcome::Panicked { message, .. } => {
                Err(EtscError::Panicked { message })
            }
        })
        .collect()
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use etsc_datasets::{GenOptions, PaperDataset};

    #[test]
    fn parallel_matrix_matches_sequential() {
        let datasets: Vec<Dataset> = [PaperDataset::PowerCons, PaperDataset::DodgerLoopGame]
            .iter()
            .map(|d| {
                d.generate(GenOptions {
                    height_scale: 0.15,
                    length_scale: 0.25,
                    seed: 5,
                })
            })
            .collect();
        let algos = [AlgoSpec::Ects, AlgoSpec::EcoK];
        let config = RunConfig::fast();
        let parallel = run_matrix_parallel(&datasets, &algos, &config, 4).unwrap();
        assert_eq!(parallel.len(), 4);
        let mut k = 0;
        for ds in &datasets {
            for &algo in &algos {
                let sequential = run_cv(algo, ds, &config).unwrap();
                let p = &parallel[k];
                assert_eq!(p.algo, algo);
                assert_eq!(p.dataset, sequential.dataset);
                assert_eq!(p.metrics.unwrap(), sequential.metrics.unwrap());
                k += 1;
            }
        }
    }
}
