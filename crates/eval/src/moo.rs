//! Multi-objective optimisation of ETSC configurations — the paper's
//! future-work item **MOO-ETSC** (Mori et al. 2019: "Early classification
//! of time series using multi-objective optimization techniques").
//!
//! A compact NSGA-II searches a bounded real-valued gene space that the
//! caller maps to classifier configurations; every individual is scored
//! by cross-validated **error** (1 − accuracy) and **earliness**, both
//! minimised. The result is the Pareto front of accuracy/earliness
//! trade-offs instead of a single scalarised pick — exactly the framing
//! the harmonic mean collapses.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use etsc_core::{EarlyClassifier, EtscError};
use etsc_data::{Dataset, StratifiedKFold};

use crate::metrics::{EvalOutcome, Metrics};

/// NSGA-II settings.
#[derive(Debug, Clone)]
pub struct MooConfig {
    /// Population size (kept even).
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Mutation step as a fraction of the gene range.
    pub mutation_step: f64,
    /// Internal cross-validation folds per evaluation.
    pub folds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MooConfig {
    fn default() -> Self {
        MooConfig {
            population: 12,
            generations: 5,
            mutation_rate: 0.3,
            mutation_step: 0.25,
            folds: 2,
            seed: 71,
        }
    }
}

/// One evaluated individual.
#[derive(Debug, Clone)]
pub struct Individual {
    /// The genes in `[lo, hi]` per dimension.
    pub genes: Vec<f64>,
    /// Objective 1: `1 − accuracy` (minimised).
    pub error: f64,
    /// Objective 2: earliness (minimised).
    pub earliness: f64,
    /// Full cross-validated metrics.
    pub metrics: Metrics,
}

impl Individual {
    /// Pareto dominance: at least as good in both objectives, strictly
    /// better in one.
    pub fn dominates(&self, other: &Individual) -> bool {
        (self.error <= other.error && self.earliness <= other.earliness)
            && (self.error < other.error || self.earliness < other.earliness)
    }
}

/// Result of an optimisation run.
#[derive(Debug, Clone)]
pub struct ParetoFront {
    /// Non-dominated individuals, sorted by earliness (ascending).
    pub front: Vec<Individual>,
    /// Total configurations evaluated.
    pub evaluated: usize,
}

/// Evolves classifier configurations toward the accuracy/earliness
/// Pareto front.
///
/// `bounds` gives `[lo, hi]` per gene; `build` maps genes to an untrained
/// classifier. Invalid gene combinations may return an error from `fit`,
/// which scores the individual as worst-case instead of aborting.
///
/// # Errors
/// [`EtscError::Config`] on empty bounds or zero population/generations;
/// propagated data-layer failures.
pub fn optimize(
    dataset: &Dataset,
    bounds: &[(f64, f64)],
    mut build: impl FnMut(&[f64]) -> Box<dyn EarlyClassifier>,
    config: &MooConfig,
) -> Result<ParetoFront, EtscError> {
    if bounds.is_empty() {
        return Err(EtscError::Config("empty gene bounds".into()));
    }
    if config.population < 2 || config.generations == 0 {
        return Err(EtscError::Config(
            "population must be >= 2 and generations >= 1".into(),
        ));
    }
    let splits = StratifiedKFold::new(config.folds.max(2), config.seed)
        .map_err(EtscError::from)?
        .split(dataset)
        .map_err(EtscError::from)?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pop_size = config.population + config.population % 2;
    let mut evaluated = 0usize;

    let evaluate = |genes: &[f64],
                    build: &mut dyn FnMut(&[f64]) -> Box<dyn EarlyClassifier>,
                    evaluated: &mut usize|
     -> Result<Individual, EtscError> {
        *evaluated += 1;
        let mut outcomes = Vec::new();
        for fold in &splits {
            let train = dataset.subset(&fold.train);
            let mut clf = build(genes);
            match clf.fit(&train) {
                Ok(()) => {}
                Err(EtscError::TrainingBudgetExceeded { .. }) | Err(EtscError::Config(_)) => {
                    // Infeasible individual: worst-case objectives.
                    return Ok(Individual {
                        genes: genes.to_vec(),
                        error: 1.0,
                        earliness: 1.0,
                        metrics: Metrics {
                            accuracy: 0.0,
                            f1: 0.0,
                            earliness: 1.0,
                            harmonic_mean: 0.0,
                        },
                    });
                }
                Err(e) => return Err(e),
            }
            for &i in &fold.test {
                let inst = dataset.instance(i);
                let p = clf.predict_early(inst)?;
                outcomes.push(EvalOutcome {
                    truth: dataset.label(i),
                    predicted: p.label,
                    prefix_len: p.prefix_len,
                    full_len: inst.len(),
                });
            }
        }
        let metrics = Metrics::compute(&outcomes, dataset.n_classes());
        Ok(Individual {
            genes: genes.to_vec(),
            error: 1.0 - metrics.accuracy,
            earliness: metrics.earliness,
            metrics,
        })
    };

    // --- Initial population: uniform in the bounds ---
    let mut population: Vec<Individual> = Vec::with_capacity(pop_size);
    for _ in 0..pop_size {
        let genes: Vec<f64> = bounds
            .iter()
            .map(|&(lo, hi)| lo + rng.random::<f64>() * (hi - lo))
            .collect();
        population.push(evaluate(&genes, &mut build, &mut evaluated)?);
    }

    for _gen in 0..config.generations {
        // --- Offspring: binary tournament + blend crossover + mutation ---
        let mut offspring = Vec::with_capacity(pop_size);
        while offspring.len() < pop_size {
            let pick = |rng: &mut StdRng, pop: &[Individual]| -> usize {
                let a = rng.random_range(0..pop.len());
                let b = rng.random_range(0..pop.len());
                if pop[a].dominates(&pop[b]) {
                    a
                } else {
                    b
                }
            };
            let pa = pick(&mut rng, &population);
            let pb = pick(&mut rng, &population);
            let mut genes = Vec::with_capacity(bounds.len());
            for (g, &(lo, hi)) in bounds.iter().enumerate() {
                let alpha = rng.random::<f64>();
                let mut v =
                    population[pa].genes[g] * alpha + population[pb].genes[g] * (1.0 - alpha);
                if rng.random::<f64>() < config.mutation_rate {
                    v += (rng.random::<f64>() * 2.0 - 1.0) * config.mutation_step * (hi - lo);
                }
                genes.push(v.clamp(lo, hi));
            }
            offspring.push(evaluate(&genes, &mut build, &mut evaluated)?);
        }
        // --- Environmental selection: non-dominated sorting + crowding ---
        population.extend(offspring);
        population = select(population, pop_size);
    }

    // Final front: non-dominated members of the final population.
    let mut front: Vec<Individual> = Vec::new();
    for ind in &population {
        if !population.iter().any(|other| other.dominates(ind)) {
            front.push(ind.clone());
        }
    }
    // Deduplicate identical objective points, sort by earliness.
    front.sort_by(|a, b| {
        a.earliness
            .partial_cmp(&b.earliness)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    front.dedup_by(|a, b| {
        (a.error - b.error).abs() < 1e-12 && (a.earliness - b.earliness).abs() < 1e-12
    });
    Ok(ParetoFront { front, evaluated })
}

/// NSGA-II environmental selection: rank by non-dominated fronts, break
/// the final front by crowding distance.
fn select(mut pool: Vec<Individual>, keep: usize) -> Vec<Individual> {
    let mut out: Vec<Individual> = Vec::with_capacity(keep);
    while out.len() < keep && !pool.is_empty() {
        // Current non-dominated front within the pool.
        let front_idx: Vec<usize> = (0..pool.len())
            .filter(|&i| !pool.iter().any(|o| o.dominates(&pool[i])))
            .collect();
        let mut front: Vec<Individual> = front_idx.iter().map(|&i| pool[i].clone()).collect();
        // Remove the front from the pool (descending index order).
        for &i in front_idx.iter().rev() {
            pool.swap_remove(i);
        }
        if out.len() + front.len() <= keep {
            out.extend(front);
        } else {
            // Crowding distance on (error, earliness).
            let remaining = keep - out.len();
            let mut scored: Vec<(f64, Individual)> = {
                let n = front.len();
                let mut crowd = vec![0.0f64; n];
                for objective in 0..2 {
                    let val = |ind: &Individual| {
                        if objective == 0 {
                            ind.error
                        } else {
                            ind.earliness
                        }
                    };
                    let mut order: Vec<usize> = (0..n).collect();
                    order.sort_by(|&a, &b| {
                        val(&front[a])
                            .partial_cmp(&val(&front[b]))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    crowd[order[0]] = f64::INFINITY;
                    crowd[order[n - 1]] = f64::INFINITY;
                    let span = (val(&front[order[n - 1]]) - val(&front[order[0]])).max(1e-12);
                    for w in 1..n - 1 {
                        crowd[order[w]] +=
                            (val(&front[order[w + 1]]) - val(&front[order[w - 1]])) / span;
                    }
                }
                crowd.into_iter().zip(front.drain(..)).collect()
            };
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            out.extend(scored.into_iter().take(remaining).map(|(_, ind)| ind));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_core::{Ecec, EcecConfig};
    use etsc_data::{DatasetBuilder, MultiSeries, Series};

    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new("moo");
        for i in 0..10 {
            let phase = i as f64 * 0.31;
            let slow: Vec<f64> = (0..20).map(|t| ((t as f64 * 0.3) + phase).sin()).collect();
            let fast: Vec<f64> = (0..20).map(|t| ((t as f64 * 1.5) + phase).sin()).collect();
            b.push_named(MultiSeries::univariate(Series::new(slow)), "slow");
            b.push_named(MultiSeries::univariate(Series::new(fast)), "fast");
        }
        b.build().unwrap()
    }

    fn ecec_from_genes(genes: &[f64]) -> Box<dyn EarlyClassifier> {
        Box::new(Ecec::new(EcecConfig {
            alpha: genes[0].clamp(0.0, 1.0),
            n_prefixes: 4,
            cv_folds: 2,
            ..EcecConfig::default()
        }))
    }

    #[test]
    fn produces_a_nondominated_front() {
        let data = toy();
        let result = optimize(
            &data,
            &[(0.1, 0.95)],
            ecec_from_genes,
            &MooConfig {
                population: 6,
                generations: 2,
                ..MooConfig::default()
            },
        )
        .unwrap();
        assert!(!result.front.is_empty());
        assert!(result.evaluated >= 6);
        // Pairwise non-domination.
        for a in &result.front {
            for b in &result.front {
                assert!(!a.dominates(b), "front contains dominated members");
            }
        }
        // Sorted by earliness.
        for w in result.front.windows(2) {
            assert!(w[0].earliness <= w[1].earliness + 1e-12);
        }
    }

    #[test]
    fn dominance_definition() {
        let mk = |e: f64, earl: f64| Individual {
            genes: vec![],
            error: e,
            earliness: earl,
            metrics: Metrics {
                accuracy: 1.0 - e,
                f1: 0.0,
                earliness: earl,
                harmonic_mean: 0.0,
            },
        };
        assert!(mk(0.1, 0.1).dominates(&mk(0.2, 0.2)));
        assert!(mk(0.1, 0.2).dominates(&mk(0.1, 0.3)));
        assert!(!mk(0.1, 0.3).dominates(&mk(0.2, 0.2)));
        assert!(!mk(0.1, 0.1).dominates(&mk(0.1, 0.1)));
    }

    #[test]
    fn selection_keeps_the_best_front() {
        let mk = |e: f64, earl: f64| Individual {
            genes: vec![],
            error: e,
            earliness: earl,
            metrics: Metrics {
                accuracy: 1.0 - e,
                f1: 0.0,
                earliness: earl,
                harmonic_mean: 0.0,
            },
        };
        let pool = vec![mk(0.1, 0.9), mk(0.9, 0.1), mk(0.5, 0.5), mk(0.95, 0.95)];
        let kept = select(pool, 3);
        assert_eq!(kept.len(), 3);
        // The dominated straggler (0.95, 0.95) must be dropped.
        assert!(kept
            .iter()
            .all(|i| !((i.error - 0.95).abs() < 1e-12 && (i.earliness - 0.95).abs() < 1e-12)));
    }

    #[test]
    fn config_validation() {
        let data = toy();
        assert!(optimize(&data, &[], ecec_from_genes, &MooConfig::default()).is_err());
        assert!(optimize(
            &data,
            &[(0.0, 1.0)],
            ecec_from_genes,
            &MooConfig {
                population: 1,
                ..MooConfig::default()
            }
        )
        .is_err());
    }
}
