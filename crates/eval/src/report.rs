//! Plain-text and CSV renderers matching the layout of the paper's
//! tables and figures.
//!
//! Figures 9-12 are grouped bar charts (category × algorithm); the
//! renderers emit one aligned text table per figure with categories as
//! rows and algorithms as columns — the same series the paper plots —
//! plus machine-readable CSV.

use std::collections::BTreeMap;

use etsc_data::stats::Category;

use crate::aggregate::CategoryScore;
use crate::experiment::AlgoSpec;
use crate::online::OnlineCell;
use crate::supervisor::{CellOutcome, CellStatus};

/// Which figure quantity to extract from a [`CategoryScore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureMetric {
    /// Figure 9 (left): accuracy.
    Accuracy,
    /// Figure 9 (right): F1-score.
    F1,
    /// Figure 10: earliness (lower is better).
    Earliness,
    /// Figure 11: harmonic mean.
    HarmonicMean,
    /// Figure 12: training minutes.
    TrainMinutes,
}

impl FigureMetric {
    fn extract(self, s: &CategoryScore) -> f64 {
        match self {
            FigureMetric::Accuracy => s.metrics.accuracy,
            FigureMetric::F1 => s.metrics.f1,
            FigureMetric::Earliness => s.metrics.earliness,
            FigureMetric::HarmonicMean => s.metrics.harmonic_mean,
            FigureMetric::TrainMinutes => s.train_minutes,
        }
    }

    /// Column header for the rendered table.
    pub fn label(self) -> &'static str {
        match self {
            FigureMetric::Accuracy => "Accuracy",
            FigureMetric::F1 => "F1-score",
            FigureMetric::Earliness => "Earliness",
            FigureMetric::HarmonicMean => "Harmonic mean",
            FigureMetric::TrainMinutes => "Training minutes",
        }
    }
}

type Aggregated = BTreeMap<Category, BTreeMap<AlgoSpec, CategoryScore>>;

/// Renders one figure's category × algorithm matrix as an aligned text
/// table ("--" marks category/algorithm pairs with no finished run).
pub fn render_figure(aggregated: &Aggregated, metric: FigureMetric) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<14}", metric.label()));
    for algo in AlgoSpec::ALL {
        out.push_str(&format!("{:>10}", algo.name()));
    }
    out.push('\n');
    for cat in Category::ALL {
        let Some(row) = aggregated.get(&cat) else {
            continue;
        };
        out.push_str(&format!("{:<14}", cat.name()));
        for algo in AlgoSpec::ALL {
            match row.get(&algo) {
                Some(score) if score.n_datasets > 0 => {
                    out.push_str(&format!("{:>10.3}", metric.extract(score)));
                }
                _ => out.push_str(&format!("{:>10}", "--")),
            }
        }
        out.push('\n');
    }
    out
}

/// CSV version of [`render_figure`] (`category,algorithm,value,n,dnf`).
pub fn figure_csv(aggregated: &Aggregated, metric: FigureMetric) -> String {
    let mut out = String::from("category,algorithm,value,n_datasets,n_dnf\n");
    for cat in Category::ALL {
        let Some(row) = aggregated.get(&cat) else {
            continue;
        };
        for algo in AlgoSpec::ALL {
            if let Some(score) = row.get(&algo) {
                let value = if score.n_datasets > 0 {
                    format!("{:.6}", metric.extract(score))
                } else {
                    String::new()
                };
                out.push_str(&format!(
                    "{},{},{},{},{}\n",
                    cat.name(),
                    algo.name(),
                    value,
                    score.n_datasets,
                    score.n_dnf
                ));
            }
        }
    }
    out
}

/// Renders the Figure 13 heatmap: datasets as rows, algorithms as
/// columns; `*` suffix marks feasible cells, `DNF` hatched ones.
pub fn render_online_heatmap(cells: &[OnlineCell], datasets: &[String]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<24}", "Online ratio"));
    for algo in AlgoSpec::ALL {
        out.push_str(&format!("{:>12}", algo.name()));
    }
    out.push('\n');
    for ds in datasets {
        out.push_str(&format!("{ds:<24}"));
        for algo in AlgoSpec::ALL {
            let cell = cells.iter().find(|c| c.algo == algo && &c.dataset == ds);
            match cell {
                Some(c) => match c.ratio {
                    Some(r) => {
                        let marker = if r < 1.0 { "*" } else { " " };
                        out.push_str(&format!("{:>11.2e}{marker}", r));
                    }
                    None => out.push_str(&format!("{:>12}", "DNF")),
                },
                None => out.push_str(&format!("{:>12}", "--")),
            }
        }
        out.push('\n');
    }
    out.push_str("(* = feasible: decision produced before the next observation batch)\n");
    out
}

/// Renders the supervised-matrix status table: datasets as rows,
/// algorithms as columns, each cell one of `OK`/`DNF`/`ERR`/`PANIC`
/// (`--` for cells with no outcome). The paper reports DNF cells
/// inline with results; `ERR`/`PANIC` are the supervisor's extension
/// for cells that failed rather than timed out.
pub fn render_matrix_status(outcomes: &[CellOutcome], datasets: &[String]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<24}", "Status"));
    for algo in AlgoSpec::ALL {
        out.push_str(&format!("{:>10}", algo.name()));
    }
    out.push('\n');
    for ds in datasets {
        out.push_str(&format!("{ds:<24}"));
        for algo in AlgoSpec::ALL {
            let cell = outcomes
                .iter()
                .find(|c| c.algo() == algo && c.dataset() == ds);
            match cell {
                Some(c) => out.push_str(&format!("{:>10}", c.status().label())),
                None => out.push_str(&format!("{:>10}", "--")),
            }
        }
        out.push('\n');
    }
    let (mut ok, mut dnf, mut err, mut panic) = (0usize, 0usize, 0usize, 0usize);
    for c in outcomes {
        match c.status() {
            CellStatus::Ok => ok += 1,
            CellStatus::Dnf => dnf += 1,
            CellStatus::Err => err += 1,
            CellStatus::Panic => panic += 1,
        }
    }
    out.push_str(&format!(
        "{} OK, {dnf} DNF, {err} ERR, {panic} PANIC of {} cells\n",
        ok,
        outcomes.len()
    ));
    out
}

/// CSV version of [`render_matrix_status`]
/// (`dataset,algorithm,status,detail` — detail is the error or panic
/// message for failed cells, empty otherwise).
pub fn matrix_status_csv(outcomes: &[CellOutcome]) -> String {
    let mut out = String::from("dataset,algorithm,status,detail\n");
    for c in outcomes {
        let detail = match c {
            CellOutcome::Finished(_) => String::new(),
            CellOutcome::Failed { error, .. } => error.clone(),
            CellOutcome::Panicked { message, .. } => message.clone(),
        };
        out.push_str(&format!(
            "{},{},{},{}\n",
            c.dataset(),
            c.algo().name(),
            c.status().label(),
            detail.replace([',', '\n'], ";")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn aggregated() -> Aggregated {
        let mut inner = BTreeMap::new();
        inner.insert(
            AlgoSpec::Ects,
            CategoryScore {
                metrics: Metrics {
                    accuracy: 0.8,
                    f1: 0.75,
                    earliness: 0.4,
                    harmonic_mean: 0.68,
                },
                train_minutes: 1.5,
                n_datasets: 3,
                n_dnf: 0,
            },
        );
        inner.insert(
            AlgoSpec::Edsc,
            CategoryScore {
                metrics: Metrics {
                    accuracy: 0.0,
                    f1: 0.0,
                    earliness: 0.0,
                    harmonic_mean: 0.0,
                },
                train_minutes: 0.0,
                n_datasets: 0,
                n_dnf: 2,
            },
        );
        let mut agg = BTreeMap::new();
        agg.insert(Category::Wide, inner);
        agg
    }

    #[test]
    fn figure_table_includes_values_and_dnf_markers() {
        let text = render_figure(&aggregated(), FigureMetric::Accuracy);
        assert!(text.contains("Wide"));
        assert!(text.contains("0.800"));
        assert!(text.contains("--"), "DNF-only cell must be blank: {text}");
    }

    #[test]
    fn every_metric_extracts_its_field() {
        let agg = aggregated();
        let s = &agg[&Category::Wide][&AlgoSpec::Ects];
        assert_eq!(FigureMetric::Accuracy.extract(s), 0.8);
        assert_eq!(FigureMetric::F1.extract(s), 0.75);
        assert_eq!(FigureMetric::Earliness.extract(s), 0.4);
        assert_eq!(FigureMetric::HarmonicMean.extract(s), 0.68);
        assert_eq!(FigureMetric::TrainMinutes.extract(s), 1.5);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = figure_csv(&aggregated(), FigureMetric::F1);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "category,algorithm,value,n_datasets,n_dnf"
        );
        assert!(csv.contains("Wide,ECTS,0.750000,3,0"));
        assert!(csv.contains("Wide,EDSC,,0,2"));
    }

    #[test]
    fn status_table_and_csv_render_all_four_states() {
        use crate::experiment::RunResult;
        let outcomes = vec![
            CellOutcome::Finished(RunResult {
                algo: AlgoSpec::Ects,
                dataset: "D1".into(),
                metrics: Some(Metrics {
                    accuracy: 0.9,
                    f1: 0.9,
                    earliness: 0.3,
                    harmonic_mean: 0.78,
                }),
                train_secs: 1.0,
                test_secs_per_instance: 0.001,
                dnf: false,
            }),
            CellOutcome::Finished(RunResult {
                algo: AlgoSpec::Edsc,
                dataset: "D1".into(),
                metrics: None,
                train_secs: 120.0,
                test_secs_per_instance: 0.0,
                dnf: true,
            }),
            CellOutcome::Failed {
                algo: AlgoSpec::Teaser,
                dataset: "D1".into(),
                error: "data error, with a comma".into(),
                attempts: 2,
            },
            CellOutcome::Panicked {
                algo: AlgoSpec::SMini,
                dataset: "D1".into(),
                message: "boom".into(),
            },
        ];
        let text = render_matrix_status(&outcomes, &["D1".to_owned()]);
        for label in ["OK", "DNF", "ERR", "PANIC"] {
            assert!(text.contains(label), "missing {label} in:\n{text}");
        }
        assert!(text.contains("1 OK, 1 DNF, 1 ERR, 1 PANIC of 4 cells"));
        let csv = matrix_status_csv(&outcomes);
        assert_eq!(
            csv.lines().next().unwrap(),
            "dataset,algorithm,status,detail"
        );
        assert!(csv.contains("D1,TEASER,ERR,data error; with a comma"));
        assert!(csv.contains("D1,S-MINI,PANIC,boom"));
    }

    #[test]
    fn heatmap_renders_feasible_and_dnf() {
        let cells = vec![
            OnlineCell {
                algo: AlgoSpec::Ects,
                dataset: "D1".into(),
                ratio: Some(0.5),
            },
            OnlineCell {
                algo: AlgoSpec::Edsc,
                dataset: "D1".into(),
                ratio: None,
            },
        ];
        let text = render_online_heatmap(&cells, &["D1".to_owned()]);
        assert!(text.contains("D1"));
        assert!(text.contains('*'));
        assert!(text.contains("DNF"));
    }
}
