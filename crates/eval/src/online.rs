//! Online-feasibility analysis (Figure 13).
//!
//! An algorithm can run online when it produces each decision before the
//! next observation (or batch of observations) arrives. The heatmap
//! quantity is
//!
//! ```text
//! ratio = test_time_per_decision / (obs_frequency · batch_len)
//! ```
//!
//! where `batch_len` is 1 for per-point algorithms and `L / N` for ECEC
//! and TEASER, which only re-evaluate once a full prefix batch has
//! arrived. Ratios below 1 are feasible (blue cells); hatched cells mark
//! algorithms that failed to train.

use crate::experiment::{AlgoSpec, RunConfig, RunResult};

/// The boundary convention for online feasibility, shared by the offline
/// heatmap ([`OnlineCell::feasible`]) and the live measured ratio of the
/// streaming service (`etsc-serve`).
///
/// A ratio of exactly `1.0` means decisions take precisely as long as
/// observations take to arrive: the algorithm never catches up and any
/// jitter makes it fall behind, so the boundary is **infeasible** —
/// feasibility is strict `ratio < 1.0`. Both call sites must use this
/// helper so the offline verdict and the live verdict can never disagree
/// on the boundary.
pub fn feasible_ratio(ratio: f64) -> bool {
    ratio < 1.0
}

/// One heatmap cell.
#[derive(Debug, Clone)]
pub struct OnlineCell {
    /// Algorithm of the cell.
    pub algo: AlgoSpec,
    /// Dataset name.
    pub dataset: String,
    /// The Figure 13 ratio; `None` for DNF runs (hatched).
    pub ratio: Option<f64>,
}

impl OnlineCell {
    /// `true` when the algorithm keeps up with the stream.
    ///
    /// Uses the shared [`feasible_ratio`] convention: strictly below 1.0.
    /// DNF cells (no ratio) are never feasible.
    pub fn feasible(&self) -> bool {
        matches!(self.ratio, Some(r) if feasible_ratio(r))
    }
}

/// Computes the heatmap cell for one run result.
///
/// `obs_frequency_secs` is the dataset's seconds-per-observation
/// (the parenthetical values of Figure 13); `series_len` its horizon.
pub fn online_cell(
    result: &RunResult,
    obs_frequency_secs: f64,
    series_len: usize,
    config: &RunConfig,
) -> OnlineCell {
    let ratio = if result.dnf {
        None
    } else {
        // Paper: testing time divided by the observation frequency; for
        // ECEC/TEASER additionally by the prefix batch length, since they
        // only re-evaluate once a whole batch has arrived.
        let batch = result.algo.decision_batch(series_len, config) as f64;
        Some(result.test_secs_per_instance / (obs_frequency_secs * batch))
    };
    OnlineCell {
        algo: result.algo,
        dataset: result.dataset.clone(),
        ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn result(algo: AlgoSpec, test_secs: f64, dnf: bool) -> RunResult {
        RunResult {
            algo,
            dataset: "D".into(),
            metrics: if dnf {
                None
            } else {
                Some(Metrics {
                    accuracy: 1.0,
                    f1: 1.0,
                    earliness: 0.5,
                    harmonic_mean: 1.0,
                })
            },
            train_secs: 1.0,
            test_secs_per_instance: test_secs,
            dnf,
        }
    }

    #[test]
    fn fast_algorithm_is_feasible() {
        let cfg = RunConfig::default();
        // 100 points at 1s per observation, instance cost 0.1s → each of
        // the 100 decisions costs 0.001s << 1s.
        let cell = online_cell(&result(AlgoSpec::Ects, 0.1, false), 1.0, 100, &cfg);
        assert!(cell.feasible());
    }

    #[test]
    fn slow_algorithm_is_infeasible() {
        let cfg = RunConfig::default();
        // Each decision costs 2s against 0.01s arrivals.
        let cell = online_cell(&result(AlgoSpec::Ects, 200.0, false), 0.01, 100, &cfg);
        assert!(!cell.feasible());
        assert!(cell.ratio.unwrap() > 1.0);
    }

    #[test]
    fn batched_algorithms_get_batch_credit() {
        let cfg = RunConfig::default();
        let per_point = online_cell(&result(AlgoSpec::Ects, 1.0, false), 0.1, 100, &cfg);
        let batched = online_cell(&result(AlgoSpec::Ecec, 1.0, false), 0.1, 100, &cfg);
        // ECEC (batch = 100/20 = 5) has fewer, larger windows per decision.
        assert!(batched.ratio.unwrap() < per_point.ratio.unwrap());
    }

    #[test]
    fn boundary_ratio_of_exactly_one_is_infeasible() {
        // The shared convention: a decision that takes exactly as long as
        // the observation interval cannot keep up. Checked both through
        // the helper and through a cell constructed to land on 1.0.
        assert!(!feasible_ratio(1.0));
        assert!(feasible_ratio(1.0 - f64::EPSILON));

        let cfg = RunConfig::default();
        // 1s per decision against 1s arrivals, per-point algorithm.
        let cell = online_cell(&result(AlgoSpec::Ects, 1.0, false), 1.0, 100, &cfg);
        assert_eq!(cell.ratio, Some(1.0));
        assert!(!cell.feasible());
    }

    #[test]
    fn dnf_yields_hatched_cell() {
        let cfg = RunConfig::default();
        let cell = online_cell(&result(AlgoSpec::Edsc, 0.0, true), 1.0, 100, &cfg);
        assert!(cell.ratio.is_none());
        assert!(!cell.feasible());
    }
}
