//! Deterministic, seeded fault injection for the serving stack.
//!
//! A [`FaultPlan`] describes *what* to break — worker panics, artificial
//! decision latency, NaN observations, model-store corruption — as
//! rates and counts; [`FaultPlan::schedule`] materialises it against a
//! concrete replay (session count and lengths) into a [`FaultSchedule`]
//! that pins every fault to an exact `(session, step)` coordinate.
//! Everything is derived from one seed through the workspace's
//! deterministic [`rand::rngs::StdRng`], so a chaos run is exactly
//! reproducible: the same plan over the same dataset injects the same
//! faults at the same points, and every injected fault is attributable
//! after the fact via [`FaultSchedule`]'s accessors.
//!
//! The plan's textual form (`key=value` pairs, comma-separated) is what
//! `etsc serve --faults` accepts:
//!
//! ```text
//! seed=42,panics=1,delay-rate=0.05,delay-ms=50,nan-rate=0.02,corrupt-model=true
//! ```

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// What to inject, as seeded rates and counts.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed every schedule is derived from.
    pub seed: u64,
    /// Number of sessions whose worker panics mid-evaluation.
    pub worker_panics: usize,
    /// Fraction of sessions receiving one artificially delayed
    /// evaluation.
    pub delay_rate: f64,
    /// The injected evaluation delay.
    pub delay: Duration,
    /// Fraction of sessions receiving one all-NaN observation.
    pub nan_rate: f64,
    /// Flip one byte of the model file before loading (exercises the
    /// store's quarantine + last-good fallback).
    pub corrupt_model: bool,
    /// Fraction of sessions whose client tears a frame mid-write: a
    /// partial `Observe` frame followed by an abrupt disconnect and a
    /// reconnect-with-resume (exercises the wire decoder and the
    /// client library's resume path).
    pub torn_rate: f64,
    /// Fraction of sessions abandoned by an abrupt client disconnect
    /// mid-session, never to return (exercises server-side session
    /// cleanup).
    pub disconnect_rate: f64,
    /// Fraction of sessions whose client dribbles one frame slow-loris
    /// style: the frame's bytes arrive in two halves separated by
    /// [`FaultPlan::loris`] (exercises the server's patience with
    /// partial reads).
    pub loris_rate: f64,
    /// The mid-frame stall applied to slow-loris sessions.
    pub loris: Duration,
    /// Fleet-level fault: index of the shard a router fleet kills
    /// mid-stream — the shard's sockets drop with no drain handshake
    /// and the router must migrate its resident sessions.
    pub kill_shard: Option<usize>,
    /// Total routed observation count at which the shard kill fires;
    /// `0` derives a seeded step via [`FaultPlan::kill_step`].
    pub kill_at_step: u64,
    /// Fleet-level fault: index of a shard that accepts TCP
    /// connections but never answers a byte — the router's health
    /// probes must time it out rather than hang.
    pub blackhole_shard: Option<usize>,
    /// Fleet-level fault: index of a shard whose every evaluation is
    /// artificially delayed by [`FaultPlan::slow_shard_delay`].
    pub slow_shard: Option<usize>,
    /// The slow shard's injected per-evaluation delay.
    pub slow_shard_delay: Duration,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            worker_panics: 0,
            delay_rate: 0.0,
            delay: Duration::from_millis(0),
            nan_rate: 0.0,
            corrupt_model: false,
            torn_rate: 0.0,
            disconnect_rate: 0.0,
            loris_rate: 0.0,
            loris: Duration::from_millis(0),
            kill_shard: None,
            kill_at_step: 0,
            blackhole_shard: None,
            slow_shard: None,
            slow_shard_delay: Duration::from_millis(0),
        }
    }
}

impl FaultPlan {
    /// Parses the `key=value,key=value` spec accepted by
    /// `etsc serve --faults`. Keys: `seed`, `panics`, `delay-rate`,
    /// `delay-ms`, `nan-rate`, `corrupt-model`, plus the network-path
    /// kinds `torn-rate`, `disconnect-rate`, `loris-rate`, `loris-ms`.
    ///
    /// # Errors
    /// A human-readable message naming the offending key or value.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry {part:?} is not key=value"))?;
            let bad = |what: &str| format!("invalid {what} value {value:?} in fault spec");
            match key.trim() {
                "seed" => plan.seed = value.parse().map_err(|_| bad("seed"))?,
                "panics" => plan.worker_panics = value.parse().map_err(|_| bad("panics"))?,
                "delay-rate" => {
                    plan.delay_rate = value.parse().map_err(|_| bad("delay-rate"))?;
                    if !(0.0..=1.0).contains(&plan.delay_rate) {
                        return Err(bad("delay-rate"));
                    }
                }
                "delay-ms" => {
                    plan.delay = Duration::from_millis(value.parse().map_err(|_| bad("delay-ms"))?);
                }
                "nan-rate" => {
                    plan.nan_rate = value.parse().map_err(|_| bad("nan-rate"))?;
                    if !(0.0..=1.0).contains(&plan.nan_rate) {
                        return Err(bad("nan-rate"));
                    }
                }
                "corrupt-model" => {
                    plan.corrupt_model = value.parse().map_err(|_| bad("corrupt-model"))?;
                }
                "torn-rate" => {
                    plan.torn_rate = value.parse().map_err(|_| bad("torn-rate"))?;
                    if !(0.0..=1.0).contains(&plan.torn_rate) {
                        return Err(bad("torn-rate"));
                    }
                }
                "disconnect-rate" => {
                    plan.disconnect_rate = value.parse().map_err(|_| bad("disconnect-rate"))?;
                    if !(0.0..=1.0).contains(&plan.disconnect_rate) {
                        return Err(bad("disconnect-rate"));
                    }
                }
                "loris-rate" => {
                    plan.loris_rate = value.parse().map_err(|_| bad("loris-rate"))?;
                    if !(0.0..=1.0).contains(&plan.loris_rate) {
                        return Err(bad("loris-rate"));
                    }
                }
                "loris-ms" => {
                    plan.loris = Duration::from_millis(value.parse().map_err(|_| bad("loris-ms"))?);
                }
                "kill-shard" => {
                    plan.kill_shard = Some(value.parse().map_err(|_| bad("kill-shard"))?);
                }
                "kill-at-step" => {
                    plan.kill_at_step = value.parse().map_err(|_| bad("kill-at-step"))?;
                }
                "blackhole-shard" => {
                    plan.blackhole_shard = Some(value.parse().map_err(|_| bad("blackhole-shard"))?);
                }
                "slow-shard" => {
                    plan.slow_shard = Some(value.parse().map_err(|_| bad("slow-shard"))?);
                }
                "slow-shard-ms" => {
                    plan.slow_shard_delay =
                        Duration::from_millis(value.parse().map_err(|_| bad("slow-shard-ms"))?);
                }
                other => return Err(format!("unknown fault spec key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// The spec string this plan parses back from.
    #[must_use]
    pub fn render(&self) -> String {
        let mut spec = format!(
            "seed={},panics={},delay-rate={},delay-ms={},nan-rate={},corrupt-model={},\
             torn-rate={},disconnect-rate={},loris-rate={},loris-ms={}",
            self.seed,
            self.worker_panics,
            self.delay_rate,
            self.delay.as_millis(),
            self.nan_rate,
            self.corrupt_model,
            self.torn_rate,
            self.disconnect_rate,
            self.loris_rate,
            self.loris.as_millis(),
        );
        // Shard-level faults render only when armed, so plans written
        // before the fleet existed round-trip byte-identically.
        if let Some(s) = self.kill_shard {
            spec.push_str(&format!(
                ",kill-shard={s},kill-at-step={}",
                self.kill_at_step
            ));
        }
        if let Some(s) = self.blackhole_shard {
            spec.push_str(&format!(",blackhole-shard={s}"));
        }
        if let Some(s) = self.slow_shard {
            spec.push_str(&format!(
                ",slow-shard={s},slow-shard-ms={}",
                self.slow_shard_delay.as_millis()
            ));
        }
        spec
    }

    /// The routed-observation count at which a fleet run kills
    /// [`FaultPlan::kill_shard`]: the explicit `kill-at-step` when one
    /// was given, otherwise a seeded draw from `[1, total_rows / 2]` —
    /// early enough that the killed shard still holds undecided
    /// sessions. Deterministic in the plan.
    #[must_use]
    pub fn kill_step(&self, total_rows: u64) -> u64 {
        if self.kill_at_step > 0 {
            return self.kill_at_step;
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5348_4152_444B); // "SHARDK"
        let hi = (total_rows / 2).max(1);
        rng.random_range(1..=hi)
    }

    /// Pins every fault to a `(session, step)` coordinate for a replay
    /// of `lens.len()` sessions with the given per-session lengths
    /// (steps are 1-based observation indices). Deterministic in the
    /// plan: the same plan and lengths always produce the same
    /// schedule.
    #[must_use]
    pub fn schedule(&self, lens: &[usize]) -> FaultSchedule {
        let n = lens.len();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x4641_554C_5453); // "FAULTS"
                                                                           // Every fault lands on step 1: a session may commit a decision
                                                                           // at any later step, so the first observation is the only
                                                                           // coordinate guaranteed to be reached — pinning faults there
                                                                           // makes the injected counts equal the fired counts, which is
                                                                           // what post-hoc attribution relies on.
        let mut panic_at = vec![None; n];
        let eligible: Vec<usize> = (0..n).filter(|&s| lens[s] > 0).collect();
        if !eligible.is_empty() {
            let mut order = eligible;
            // Fisher-Yates prefix: pick `worker_panics` distinct sessions.
            for i in 0..self.worker_panics.min(order.len()) {
                let j = rng.random_range(i..order.len());
                order.swap(i, j);
                panic_at[order[i]] = Some(1);
            }
        }
        let mut delay_at = vec![None; n];
        let mut nan_at = vec![None; n];
        for s in 0..n {
            if rng.random::<f64>() < self.delay_rate && lens[s] > 0 {
                delay_at[s] = Some(1);
            }
            if rng.random::<f64>() < self.nan_rate && lens[s] > 0 {
                nan_at[s] = Some(1);
            }
        }
        // Network-path faults draw AFTER the original kinds so a plan
        // that only uses panics/delays/NaNs schedules them exactly as
        // it did before these kinds existed (same seed, same stream
        // prefix, same coordinates).
        let mut torn_at = vec![None; n];
        let mut disconnect_at = vec![None; n];
        let mut loris_at = vec![None; n];
        for s in 0..n {
            if rng.random::<f64>() < self.torn_rate && lens[s] > 0 {
                torn_at[s] = Some(1);
            }
            if rng.random::<f64>() < self.disconnect_rate && lens[s] > 0 {
                disconnect_at[s] = Some(1);
            }
            if rng.random::<f64>() < self.loris_rate && lens[s] > 0 {
                loris_at[s] = Some(1);
            }
        }
        FaultSchedule {
            panic_at,
            delay_at,
            nan_at,
            delay: self.delay,
            corrupt_model: self.corrupt_model,
            torn_at,
            disconnect_at,
            loris_at,
            loris: self.loris,
        }
    }

    /// Deterministic byte position to flip when corrupting a model file
    /// of `len` bytes (skips the 16-byte magic+version header when the
    /// file is long enough, so corruption lands in a checksummed
    /// section).
    #[must_use]
    pub fn corruption_offset(&self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x434F_5252_5054); // "CORRPT"
        let start = if len > 16 { 16 } else { 0 };
        rng.random_range(start..len)
    }
}

/// A [`FaultPlan`] pinned to exact `(session, step)` coordinates.
/// Steps are 1-based: step `t` is the session's `t`-th observation.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    panic_at: Vec<Option<usize>>,
    delay_at: Vec<Option<usize>>,
    nan_at: Vec<Option<usize>>,
    delay: Duration,
    corrupt_model: bool,
    torn_at: Vec<Option<usize>>,
    disconnect_at: Vec<Option<usize>>,
    loris_at: Vec<Option<usize>>,
    loris: Duration,
}

impl FaultSchedule {
    /// An empty schedule (no faults) for `n` sessions.
    #[must_use]
    pub fn none(n: usize) -> FaultSchedule {
        FaultSchedule {
            panic_at: vec![None; n],
            delay_at: vec![None; n],
            nan_at: vec![None; n],
            delay: Duration::ZERO,
            corrupt_model: false,
            torn_at: vec![None; n],
            disconnect_at: vec![None; n],
            loris_at: vec![None; n],
            loris: Duration::ZERO,
        }
    }

    /// `true` when the worker processing `session`'s observation `step`
    /// must panic.
    #[must_use]
    pub fn panics_at(&self, session: usize, step: usize) -> bool {
        self.panic_at.get(session).copied().flatten() == Some(step)
    }

    /// The artificial evaluation delay for `session`'s observation
    /// `step`, if one is scheduled there.
    #[must_use]
    pub fn delay_at(&self, session: usize, step: usize) -> Option<Duration> {
        (self.delay_at.get(session).copied().flatten() == Some(step)).then_some(self.delay)
    }

    /// `true` when `session`'s observation `step` must be replaced with
    /// NaNs before it enters the stream.
    #[must_use]
    pub fn nan_at(&self, session: usize, step: usize) -> bool {
        self.nan_at.get(session).copied().flatten() == Some(step)
    }

    /// `true` when the client must tear the frame carrying `session`'s
    /// observation `step` (write it partially, disconnect, and resume
    /// on a fresh connection).
    #[must_use]
    pub fn tears_at(&self, session: usize, step: usize) -> bool {
        self.torn_at.get(session).copied().flatten() == Some(step)
    }

    /// `true` when the client must abruptly disconnect — for good —
    /// right after sending `session`'s observation `step`.
    #[must_use]
    pub fn disconnects_at(&self, session: usize, step: usize) -> bool {
        self.disconnect_at.get(session).copied().flatten() == Some(step)
    }

    /// The slow-loris mid-frame stall for `session`'s observation
    /// `step`, if one is scheduled there.
    #[must_use]
    pub fn loris_at(&self, session: usize, step: usize) -> Option<Duration> {
        (self.loris_at.get(session).copied().flatten() == Some(step)).then_some(self.loris)
    }

    /// `true` when the session has *any* fault scheduled — the cells on
    /// which accuracy is allowed to degrade.
    #[must_use]
    pub fn touches(&self, session: usize) -> bool {
        self.panic_at.get(session).copied().flatten().is_some()
            || self.delay_at.get(session).copied().flatten().is_some()
            || self.nan_at.get(session).copied().flatten().is_some()
            || self.torn_at.get(session).copied().flatten().is_some()
            || self.disconnect_at.get(session).copied().flatten().is_some()
            || self.loris_at.get(session).copied().flatten().is_some()
    }

    /// Number of scheduled worker panics.
    #[must_use]
    pub fn injected_panics(&self) -> usize {
        self.panic_at.iter().flatten().count()
    }

    /// Number of scheduled delayed evaluations.
    #[must_use]
    pub fn injected_delays(&self) -> usize {
        self.delay_at.iter().flatten().count()
    }

    /// Number of scheduled NaN observations.
    #[must_use]
    pub fn injected_nans(&self) -> usize {
        self.nan_at.iter().flatten().count()
    }

    /// Number of scheduled torn frames.
    #[must_use]
    pub fn injected_torn(&self) -> usize {
        self.torn_at.iter().flatten().count()
    }

    /// Number of scheduled abrupt client disconnects.
    #[must_use]
    pub fn injected_disconnects(&self) -> usize {
        self.disconnect_at.iter().flatten().count()
    }

    /// Number of scheduled slow-loris frames.
    #[must_use]
    pub fn injected_loris(&self) -> usize {
        self.loris_at.iter().flatten().count()
    }

    /// `true` when the plan also asked for model-file corruption.
    #[must_use]
    pub fn corrupts_model(&self) -> bool {
        self.corrupt_model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_roundtrip() {
        let spec = "seed=42,panics=2,delay-rate=0.25,delay-ms=50,nan-rate=0.1,corrupt-model=true";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.worker_panics, 2);
        assert_eq!(plan.delay, Duration::from_millis(50));
        assert!(plan.corrupt_model);
        let again = FaultPlan::parse(&plan.render()).unwrap();
        assert_eq!(plan, again);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("panics").is_err());
        assert!(FaultPlan::parse("panics=x").is_err());
        assert!(FaultPlan::parse("delay-rate=1.5").is_err());
        assert!(FaultPlan::parse("nope=1").is_err());
        // Empty spec is the empty plan.
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn schedule_is_deterministic_and_attributable() {
        let plan = FaultPlan {
            seed: 7,
            worker_panics: 3,
            delay_rate: 0.2,
            delay: Duration::from_millis(5),
            nan_rate: 0.1,
            ..FaultPlan::default()
        };
        let lens = vec![20; 50];
        let a = plan.schedule(&lens);
        let b = plan.schedule(&lens);
        assert_eq!(a, b, "same plan, same lens => same schedule");
        assert_eq!(a.injected_panics(), 3);
        // Rates are per-session Bernoulli draws; with 50 sessions the
        // counts are positive with overwhelming probability for this
        // seed, and always bounded by the session count.
        assert!(a.injected_delays() <= 50);
        assert!(a.injected_nans() <= 50);
        // Every scheduled fault is reachable through the accessors.
        let mut seen_panics = 0;
        for s in 0..50 {
            for t in 1..=20 {
                if a.panics_at(s, t) {
                    seen_panics += 1;
                    assert!(a.touches(s));
                }
            }
        }
        assert_eq!(seen_panics, 3);
    }

    #[test]
    fn distinct_seeds_give_distinct_schedules() {
        let lens = vec![16; 40];
        let mk = |seed| {
            FaultPlan {
                seed,
                worker_panics: 5,
                delay_rate: 0.3,
                nan_rate: 0.3,
                ..FaultPlan::default()
            }
            .schedule(&lens)
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn network_faults_parse_and_schedule() {
        let spec = "seed=9,torn-rate=0.5,disconnect-rate=0.25,loris-rate=0.25,loris-ms=40";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.torn_rate, 0.5);
        assert_eq!(plan.disconnect_rate, 0.25);
        assert_eq!(plan.loris, Duration::from_millis(40));
        let again = FaultPlan::parse(&plan.render()).unwrap();
        assert_eq!(plan, again);
        assert!(FaultPlan::parse("torn-rate=2.0").is_err());
        assert!(FaultPlan::parse("disconnect-rate=-1").is_err());
        assert!(FaultPlan::parse("loris-ms=x").is_err());

        let lens = vec![20; 80];
        let schedule = plan.schedule(&lens);
        assert!(schedule.injected_torn() > 0);
        assert!(schedule.injected_disconnects() > 0);
        assert!(schedule.injected_loris() > 0);
        for s in 0..80 {
            if schedule.tears_at(s, 1) || schedule.disconnects_at(s, 1) {
                assert!(schedule.touches(s));
            }
            if let Some(stall) = schedule.loris_at(s, 1) {
                assert_eq!(stall, Duration::from_millis(40));
                assert!(schedule.touches(s));
            }
        }
    }

    #[test]
    fn shard_faults_parse_render_and_derive_a_seeded_kill_step() {
        let spec = "seed=42,kill-shard=1,kill-at-step=120,blackhole-shard=2,\
                    slow-shard=0,slow-shard-ms=15";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.kill_shard, Some(1));
        assert_eq!(plan.kill_at_step, 120);
        assert_eq!(plan.blackhole_shard, Some(2));
        assert_eq!(plan.slow_shard, Some(0));
        assert_eq!(plan.slow_shard_delay, Duration::from_millis(15));
        let again = FaultPlan::parse(&plan.render()).unwrap();
        assert_eq!(plan, again);
        assert!(FaultPlan::parse("kill-shard=x").is_err());
        assert!(FaultPlan::parse("slow-shard-ms=-1").is_err());

        // Explicit step wins; step 0 derives deterministically in range.
        assert_eq!(plan.kill_step(10_000), 120);
        let auto = FaultPlan {
            kill_at_step: 0,
            ..plan.clone()
        };
        let k = auto.kill_step(10_000);
        assert!((1..=5_000).contains(&k));
        assert_eq!(k, auto.kill_step(10_000), "seeded draw is deterministic");
        assert!(auto.kill_step(0) >= 1, "degenerate totals stay positive");

        // Plans without shard faults render exactly as they used to.
        let legacy = FaultPlan::parse("seed=7,panics=1").unwrap();
        assert!(!legacy.render().contains("shard"));
    }

    #[test]
    fn shard_faults_leave_session_schedules_unchanged() {
        // Shard faults are plan-level: arming them must not move any
        // per-session coordinate (they draw from a separate seed
        // stream), so existing chaos suites stay pinned.
        let lens = vec![20; 60];
        let base = FaultPlan {
            seed: 42,
            worker_panics: 2,
            delay_rate: 0.2,
            nan_rate: 0.1,
            torn_rate: 0.3,
            ..FaultPlan::default()
        };
        let extended = FaultPlan {
            kill_shard: Some(1),
            blackhole_shard: Some(2),
            slow_shard: Some(0),
            slow_shard_delay: Duration::from_millis(5),
            ..base.clone()
        };
        assert_eq!(base.schedule(&lens), extended.schedule(&lens));
    }

    #[test]
    fn network_kinds_leave_original_coordinates_unchanged() {
        // Adding net-path rates to a plan must not move where the
        // original kinds land: existing chaos suites stay pinned.
        let lens = vec![20; 60];
        let base = FaultPlan {
            seed: 42,
            worker_panics: 2,
            delay_rate: 0.2,
            nan_rate: 0.1,
            ..FaultPlan::default()
        };
        let extended = FaultPlan {
            torn_rate: 0.3,
            disconnect_rate: 0.3,
            loris_rate: 0.3,
            loris: Duration::from_millis(10),
            ..base.clone()
        };
        let a = base.schedule(&lens);
        let b = extended.schedule(&lens);
        for s in 0..60 {
            for t in 1..=20 {
                assert_eq!(a.panics_at(s, t), b.panics_at(s, t));
                assert_eq!(a.delay_at(s, t), b.delay_at(s, t));
                assert_eq!(a.nan_at(s, t), b.nan_at(s, t));
            }
        }
    }

    #[test]
    fn empty_schedule_injects_nothing() {
        let s = FaultSchedule::none(10);
        assert_eq!(
            s.injected_panics() + s.injected_delays() + s.injected_nans(),
            0
        );
        assert!(!s.touches(3));
        assert!(!s.panics_at(0, 1));
        assert_eq!(s.delay_at(0, 1), None);
    }

    #[test]
    fn corruption_offset_skips_header() {
        let plan = FaultPlan {
            seed: 3,
            corrupt_model: true,
            ..FaultPlan::default()
        };
        let off = plan.corruption_offset(1000);
        assert!((16..1000).contains(&off));
        assert_eq!(off, plan.corruption_offset(1000), "deterministic");
        assert_eq!(plan.corruption_offset(0), 0);
    }
}
