//! Latency histograms for the streaming service.
//!
//! `etsc-serve` measures two quantities per session: the wall-clock cost
//! of each re-evaluation (decision latency) and the lag between the
//! observation that made a decision possible and the decision itself.
//! Both are summarised here with exact order statistics — samples are
//! kept and sorted on demand, which is fine at the volumes a replay
//! produces (one sample per decision) and keeps the quantiles exact
//! rather than bucketed.

/// An exact-quantile latency recorder.
///
/// Samples are stored in seconds. Quantiles use the nearest-rank method
/// on the sorted samples, so `p50`/`p99` are actual observed values, not
/// interpolations.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    samples: Vec<f64>,
    sorted: bool,
    over_deadline: usize,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one latency sample, in seconds.
    pub fn record(&mut self, secs: f64) {
        self.samples.push(secs);
        self.sorted = false;
    }

    /// Records one latency sample against a decision deadline: the
    /// sample is kept like [`LatencyHistogram::record`], and when it
    /// exceeds `deadline` the breach is counted so degraded-mode events
    /// stay visible in the reported latency figures. Returns `true` on
    /// a breach.
    pub fn record_with_deadline(&mut self, secs: f64, deadline: f64) -> bool {
        self.record(secs);
        let breached = secs > deadline;
        if breached {
            self.over_deadline += 1;
        }
        breached
    }

    /// Number of samples that exceeded their deadline at record time.
    pub fn over_deadline(&self) -> usize {
        self.over_deadline
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
        self.over_deadline += other.over_deadline;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest rank; `None` when
    /// empty. `q` outside the unit interval is clamped.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// Median latency; `None` when empty.
    pub fn p50(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 99th-percentile latency; `None` when empty.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&mut self) -> Option<f64> {
        self.quantile(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn quantiles_are_observed_values() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.len(), 100);
        assert_eq!(h.p50(), Some(50.0));
        assert_eq!(h.p99(), Some(99.0));
        assert_eq!(h.max(), Some(100.0));
        assert_eq!(h.mean(), Some(50.5));
    }

    #[test]
    fn recording_after_a_query_resorts() {
        let mut h = LatencyHistogram::new();
        h.record(5.0);
        assert_eq!(h.p50(), Some(5.0));
        h.record(1.0);
        h.record(2.0);
        assert_eq!(h.p50(), Some(2.0));
        assert_eq!(h.max(), Some(5.0));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(1.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.max(), Some(3.0));
    }

    #[test]
    fn deadline_breaches_are_counted_and_merged() {
        let mut a = LatencyHistogram::new();
        assert!(!a.record_with_deadline(0.5, 1.0));
        assert!(a.record_with_deadline(2.0, 1.0));
        assert_eq!(a.over_deadline(), 1);
        assert_eq!(a.len(), 2, "breaching samples are still recorded");
        let mut b = LatencyHistogram::new();
        assert!(b.record_with_deadline(3.0, 1.0));
        a.merge(&b);
        assert_eq!(a.over_deadline(), 2);
        assert_eq!(a.len(), 3);
    }
}
