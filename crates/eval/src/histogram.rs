//! Latency histograms for the streaming service — compatibility shim.
//!
//! The exact-quantile histogram moved to [`etsc_obs::Histogram`] so the
//! evaluation harness and the serving stack share one implementation
//! (and so the metrics registry can expose it as Prometheus summaries).
//! This module re-exports it under its historical name; new code should
//! use `etsc_obs::Histogram` directly.

pub use etsc_obs::Histogram as LatencyHistogram;
