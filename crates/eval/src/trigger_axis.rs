//! The trigger axis of the evaluation matrix: (dataset × base
//! classifier × trigger) cells.
//!
//! The paper's grid (Figures 9–13) fixes each algorithm's built-in
//! stopping rule; this axis decouples them. Every cell wraps one of
//! the probability-emitting full classifiers in an
//! [`etsc_core::TriggeredClassifier`] driven by an
//! [`etsc_trigger::TriggerSpec`], and reports the same
//! accuracy/earliness/harmonic-mean metrics as the algorithm axis so
//! trigger families are directly comparable to the paper's built-in
//! rules. Runs go through [`crate::runner::MatrixRunner::run_triggered`]
//! to inherit the supervisor (panic isolation, retries, worker pool,
//! observability); journaling is disabled on this axis because journal
//! keys do not carry the trigger dimension.

use etsc_core::full::{MiniRocketClassifierConfig, MlstmClassifierConfig, WeaselClassifierConfig};
use etsc_core::{
    EarlyClassifier, EtscError, MiniRocketClassifier, MlstmClassifier, TriggeredBase,
    TriggeredClassifier, TriggeredConfig, WeaselClassifier,
};
use etsc_data::Dataset;
use etsc_obs::Obs;
use etsc_trigger::TriggerSpec;

use crate::experiment::{run_cell_inner, AlgoSpec, RunConfig, RunResult};
use crate::metrics::Metrics;
use crate::supervisor::CellOutcome;

/// The pseudo algorithm slot a base occupies when the trigger axis
/// rides on the algorithm-axis machinery (injective per base; the slot
/// only labels supervisor events, never results).
pub(crate) fn pseudo_algo(base: TriggeredBase) -> AlgoSpec {
    match base {
        TriggeredBase::MiniRocket => AlgoSpec::SMini,
        TriggeredBase::Weasel => AlgoSpec::SWeasel,
        TriggeredBase::Mlstm => AlgoSpec::SMlstm,
    }
}

/// Inverse of [`pseudo_algo`].
pub(crate) fn base_of(algo: AlgoSpec) -> TriggeredBase {
    match algo {
        AlgoSpec::SMini => TriggeredBase::MiniRocket,
        AlgoSpec::SMlstm => TriggeredBase::Mlstm,
        _ => TriggeredBase::Weasel,
    }
}

/// The snapshot-checkpoint configuration derived from a run profile.
pub fn triggered_config(config: &RunConfig) -> TriggeredConfig {
    TriggeredConfig {
        seed: config.seed,
        ..TriggeredConfig::default()
    }
}

/// Builds an untrained trigger-wrapped classifier for one cell, with
/// the base hyper-parameters taken from the run profile (the same
/// derivations the algorithm axis uses for the STRUT substrates).
pub fn build_triggered_cell(
    base: TriggeredBase,
    spec: &TriggerSpec,
    config: &RunConfig,
) -> Box<dyn EarlyClassifier> {
    let tcfg = triggered_config(config);
    let c = config.clone();
    match base {
        TriggeredBase::MiniRocket => Box::new(TriggeredClassifier::new(
            base.name(),
            tcfg,
            spec.clone(),
            move || {
                MiniRocketClassifier::new(MiniRocketClassifierConfig {
                    transform: c.minirocket_config(),
                    ..MiniRocketClassifierConfig::default()
                })
            },
        )),
        TriggeredBase::Weasel => Box::new(TriggeredClassifier::new(
            base.name(),
            tcfg,
            spec.clone(),
            move || {
                WeaselClassifier::new(WeaselClassifierConfig {
                    weasel: c.weasel_config(),
                    logistic: c.logistic_config(),
                })
            },
        )),
        TriggeredBase::Mlstm => Box::new(TriggeredClassifier::new(
            base.name(),
            tcfg,
            spec.clone(),
            move || {
                MlstmClassifier::new(MlstmClassifierConfig {
                    network: c.mlstm_config(),
                    lstm_grid: c.mlstm_lstm_grid.clone(),
                })
            },
        )),
    }
}

/// Runs one (base × trigger) cell on one dataset with the same
/// stratified-CV engine, budget handling, and instrumentation as
/// [`crate::experiment::run_cell`].
///
/// # Errors
/// Data/model failures other than budget overruns (which record a DNF).
pub fn run_triggered_cell(
    base: TriggeredBase,
    spec: &TriggerSpec,
    dataset: &Dataset,
    config: &RunConfig,
    obs: &Obs,
) -> Result<RunResult, EtscError> {
    let display = format!("{}+{}", base.name(), spec.kind.name());
    etsc_obs::with_ambient(obs, || {
        run_cell_inner(
            pseudo_algo(base),
            &display,
            &|_d, c| build_triggered_cell(base, spec, c),
            dataset,
            config,
            obs,
        )
    })
}

/// Result of one (dataset × base × trigger) cell, with supervisor
/// failures folded in as data instead of terminating the sweep.
#[derive(Debug, Clone)]
pub struct TriggerCellResult {
    /// Dataset name.
    pub dataset: String,
    /// Base classifier (registry spelling).
    pub base: &'static str,
    /// Canonical trigger spec string.
    pub trigger: String,
    /// Averaged metrics; `None` on DNF or failure.
    pub metrics: Option<Metrics>,
    /// Mean wall-clock training time per fold, seconds.
    pub train_secs: f64,
    /// Mean wall-clock testing time per instance, seconds.
    pub test_secs_per_instance: f64,
    /// `true` when training exceeded the budget.
    pub dnf: bool,
    /// Supervisor-level failure (cell error or panic), if any.
    pub error: Option<String>,
}

impl TriggerCellResult {
    /// Harmonic mean of accuracy and (1 − earliness), when the cell
    /// finished.
    pub fn harmonic_mean(&self) -> Option<f64> {
        self.metrics.as_ref().map(|m| m.harmonic_mean)
    }

    pub(crate) fn from_outcome(
        dataset: &str,
        base: TriggeredBase,
        spec: &TriggerSpec,
        outcome: CellOutcome,
    ) -> TriggerCellResult {
        let mut result = TriggerCellResult {
            dataset: dataset.to_owned(),
            base: base.name(),
            trigger: spec.canonical(),
            metrics: None,
            train_secs: 0.0,
            test_secs_per_instance: 0.0,
            dnf: false,
            error: None,
        };
        match outcome {
            CellOutcome::Finished(r) => {
                result.metrics = r.metrics;
                result.train_secs = r.train_secs;
                result.test_secs_per_instance = r.test_secs_per_instance;
                result.dnf = r.dnf;
            }
            CellOutcome::Failed { error, .. } => result.error = Some(error),
            CellOutcome::Panicked { message, .. } => {
                result.error = Some(format!("panic: {message}"))
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{DatasetBuilder, MultiSeries, Series};

    /// Classes separable from t = 2 of 24, so a correct early halt is
    /// the right answer at every checkpoint.
    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new("toy");
        for i in 0..14 {
            let phase = i as f64 * 0.37;
            let mut a = vec![0.0; 24];
            let mut c = vec![0.0; 24];
            for t in 0..24 {
                let base = ((t as f64 * 0.8) + phase).sin() * 0.2;
                a[t] = base + if t >= 2 { 2.0 } else { 0.0 };
                c[t] = base - if t >= 2 { 2.0 } else { 0.0 };
            }
            b.push_named(MultiSeries::univariate(Series::new(a)), "up");
            b.push_named(MultiSeries::univariate(Series::new(c)), "down");
        }
        b.build().unwrap()
    }

    #[test]
    fn pseudo_algo_roundtrips() {
        for base in TriggeredBase::ALL {
            assert_eq!(base_of(pseudo_algo(base)), base);
        }
    }

    #[test]
    fn triggered_cell_reports_hm_metrics() {
        let d = toy();
        let spec = TriggerSpec::parse("threshold:0.7").unwrap();
        let r = run_triggered_cell(
            TriggeredBase::Weasel,
            &spec,
            &d,
            &RunConfig::fast(),
            &Obs::disabled(),
        )
        .unwrap();
        assert!(!r.dnf);
        let m = r.metrics.unwrap();
        assert!(m.accuracy > 0.7, "accuracy {}", m.accuracy);
        assert!(m.harmonic_mean > 0.0);
        assert!(m.earliness <= 1.0);
    }

    /// The registry audit: every registered (base × trigger) combo must
    /// construct from its own default spec, fit, and survive one full
    /// streamed series — committing a valid label at some timestamp.
    #[test]
    fn every_registered_combo_survives_a_streamed_series() {
        let d = toy();
        let config = RunConfig::fast();
        for combo in etsc_core::registry::trigger_combos() {
            let base = TriggeredBase::parse(combo.base)
                .unwrap_or_else(|| panic!("unparseable base in registry: {}", combo.base));
            let spec = TriggerSpec::parse(&combo.default_spec)
                .unwrap_or_else(|e| panic!("bad default spec for {}: {e}", combo.name()));
            let mut clf = build_triggered_cell(base, &spec, &config);
            clf.fit(&d)
                .unwrap_or_else(|e| panic!("{} failed to fit: {e}", combo.name()));
            let inst = d.instance(0);
            let mut stream = clf.start_stream().unwrap();
            let mut decided = None;
            for t in 1..=inst.len() {
                let prefix = inst.prefix(t).unwrap();
                if let Some(label) = stream
                    .observe(&prefix, t == inst.len())
                    .unwrap_or_else(|e| panic!("{} failed at t={t}: {e}", combo.name()))
                {
                    decided = Some((label, t));
                    break;
                }
            }
            let (label, t) =
                decided.unwrap_or_else(|| panic!("{} never committed a decision", combo.name()));
            assert!(label < d.n_classes(), "{}: label {label}", combo.name());
            assert!(t >= 1 && t <= inst.len(), "{}: halted at {t}", combo.name());
        }
    }

    #[test]
    fn matrix_gains_a_trigger_axis() {
        let d = vec![toy()];
        let specs = vec![
            TriggerSpec::parse("threshold:0.7").unwrap(),
            TriggerSpec::parse("patience:2").unwrap(),
        ];
        let results = crate::runner::MatrixRunner::new(RunConfig::fast())
            .run_triggered(&d, &[TriggeredBase::Weasel], &specs)
            .unwrap();
        assert_eq!(results.len(), 2);
        for (r, spec) in results.iter().zip(&specs) {
            assert_eq!(r.dataset, "toy");
            assert_eq!(r.base, "WEASEL");
            assert_eq!(r.trigger, spec.canonical());
            assert!(r.error.is_none(), "{:?}", r.error);
            assert!(r.harmonic_mean().unwrap() > 0.0);
        }
    }
}
