//! Hyper-parameter tuning (the paper's Section 7 future work: "we plan
//! to incorporate hyper parameter tuning techniques as in MultiETSC").
//!
//! [`grid_search`] evaluates each candidate configuration with an
//! internal stratified cross-validation and returns the configuration
//! optimising the chosen [`Objective`] — for ETSC usually the harmonic
//! mean, MultiETSC's scalarised accuracy/earliness trade-off.

use etsc_core::{EarlyClassifier, EtscError};
use etsc_data::{Dataset, StratifiedKFold};

use crate::metrics::{EvalOutcome, Metrics};

/// The tuning objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Maximise accuracy.
    Accuracy,
    /// Maximise macro-F1.
    MacroF1,
    /// Maximise the harmonic mean of accuracy and (1 − earliness).
    HarmonicMean,
}

impl Objective {
    fn score(self, m: &Metrics) -> f64 {
        match self {
            Objective::Accuracy => m.accuracy,
            Objective::MacroF1 => m.f1,
            Objective::HarmonicMean => m.harmonic_mean,
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct Trial<P> {
    /// The candidate parameters.
    pub params: P,
    /// Cross-validated metrics.
    pub metrics: Metrics,
    /// The objective value.
    pub score: f64,
}

/// Result of a grid search.
#[derive(Debug, Clone)]
pub struct TuningResult<P> {
    /// Every candidate with its cross-validated metrics, in input order.
    pub trials: Vec<Trial<P>>,
    /// Index of the best trial (ties → first).
    pub best: usize,
}

impl<P> TuningResult<P> {
    /// The winning trial.
    pub fn best_trial(&self) -> &Trial<P> {
        &self.trials[self.best]
    }
}

/// Cross-validates every candidate configuration and returns all trials
/// plus the best one.
///
/// # Errors
/// * [`EtscError::Config`] when `candidates` is empty;
/// * propagated fit/predict failures. A candidate whose training exceeds
///   its budget scores 0 instead of failing the whole search.
pub fn grid_search<P: Clone>(
    dataset: &Dataset,
    candidates: &[P],
    mut build: impl FnMut(&P) -> Box<dyn EarlyClassifier>,
    objective: Objective,
    folds: usize,
    seed: u64,
) -> Result<TuningResult<P>, EtscError> {
    if candidates.is_empty() {
        return Err(EtscError::Config("empty candidate grid".into()));
    }
    let splits = StratifiedKFold::new(folds.max(2), seed)
        .map_err(EtscError::from)?
        .split(dataset)
        .map_err(EtscError::from)?;
    let mut trials = Vec::with_capacity(candidates.len());
    for params in candidates {
        let mut outcomes = Vec::new();
        let mut dnf = false;
        'folds: for fold in &splits {
            let train = dataset.subset(&fold.train);
            let mut clf = build(params);
            match clf.fit(&train) {
                Ok(()) => {}
                Err(EtscError::TrainingBudgetExceeded { .. }) => {
                    dnf = true;
                    break 'folds;
                }
                Err(e) => return Err(e),
            }
            for &i in &fold.test {
                let inst = dataset.instance(i);
                let p = clf.predict_early(inst)?;
                outcomes.push(EvalOutcome {
                    truth: dataset.label(i),
                    predicted: p.label,
                    prefix_len: p.prefix_len,
                    full_len: inst.len(),
                });
            }
        }
        let metrics = if dnf || outcomes.is_empty() {
            Metrics {
                accuracy: 0.0,
                f1: 0.0,
                earliness: 1.0,
                harmonic_mean: 0.0,
            }
        } else {
            Metrics::compute(&outcomes, dataset.n_classes())
        };
        let score = if dnf { 0.0 } else { objective.score(&metrics) };
        trials.push(Trial {
            params: params.clone(),
            metrics,
            score,
        });
    }
    let best = trials
        .iter()
        .enumerate()
        .max_by(|a, b| {
            a.1.score
                .partial_cmp(&b.1.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.0.cmp(&a.0)) // ties → first candidate
        })
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(TuningResult { trials, best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_core::{Ecec, EcecConfig, Ects, EctsConfig};
    use etsc_data::{DatasetBuilder, MultiSeries, Series};

    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new("tune");
        for i in 0..12 {
            let phase = i as f64 * 0.31;
            let slow: Vec<f64> = (0..24).map(|t| ((t as f64 * 0.3) + phase).sin()).collect();
            let fast: Vec<f64> = (0..24).map(|t| ((t as f64 * 1.5) + phase).sin()).collect();
            b.push_named(MultiSeries::univariate(Series::new(slow)), "slow");
            b.push_named(MultiSeries::univariate(Series::new(fast)), "fast");
        }
        b.build().unwrap()
    }

    #[test]
    fn tunes_ecec_alpha() {
        let data = toy();
        let grid = [0.2, 0.8];
        let result = grid_search(
            &data,
            &grid,
            |&alpha| {
                Box::new(Ecec::new(EcecConfig {
                    alpha,
                    n_prefixes: 4,
                    cv_folds: 2,
                    ..EcecConfig::default()
                }))
            },
            Objective::HarmonicMean,
            3,
            7,
        )
        .unwrap();
        assert_eq!(result.trials.len(), 2);
        let best = result.best_trial();
        assert!(grid.contains(&best.params));
        assert!(best.score >= result.trials[0].score.min(result.trials[1].score));
    }

    #[test]
    fn objective_selects_different_fields() {
        let m = Metrics {
            accuracy: 0.9,
            f1: 0.7,
            earliness: 0.5,
            harmonic_mean: 0.6,
        };
        assert_eq!(Objective::Accuracy.score(&m), 0.9);
        assert_eq!(Objective::MacroF1.score(&m), 0.7);
        assert_eq!(Objective::HarmonicMean.score(&m), 0.6);
    }

    #[test]
    fn empty_grid_rejected() {
        let data = toy();
        let empty: [usize; 0] = [];
        assert!(matches!(
            grid_search(
                &data,
                &empty,
                |_| Box::new(Ects::new(EctsConfig { support: 0 })),
                Objective::Accuracy,
                3,
                1,
            ),
            Err(EtscError::Config(_))
        ));
    }

    #[test]
    fn ties_prefer_the_first_candidate() {
        let data = toy();
        // Identical candidates → identical scores → index 0 wins.
        let result = grid_search(
            &data,
            &[0usize, 0usize],
            |_| Box::new(Ects::new(EctsConfig { support: 0 })),
            Objective::Accuracy,
            3,
            7,
        )
        .unwrap();
        assert_eq!(result.best, 0);
    }
}
