//! Fault-tolerant supervisor for the (dataset × algorithm) evaluation
//! matrix.
//!
//! The paper's evaluation runs every algorithm on every dataset under a
//! 48-hour training budget, and reports the cells that did not finish
//! instead of abandoning the sweep. This module brings the same
//! robustness to the reproduction: each cell runs isolated behind
//! [`std::panic::catch_unwind`], transient errors are retried a bounded
//! number of times, and — optionally — every completed cell is
//! checkpointed to an append-only [`crate::journal`] so a killed run
//! resumes without recomputing finished work.
//!
//! One misbehaving (algorithm, dataset) pair can therefore no longer
//! abort the whole matrix: it becomes a `PANIC`/`ERR`/`DNF` cell in the
//! report while every other cell completes.
//!
//! The execution engine now lives in [`crate::runner::MatrixRunner`];
//! this module keeps the cell-outcome vocabulary
//! ([`CellOutcome`]/[`CellStatus`]), the [`SupervisorOptions`] knob
//! struct, and thin compatibility wrappers over the runner.

use std::path::PathBuf;

use etsc_core::EtscError;
use etsc_data::Dataset;

use crate::experiment::{AlgoSpec, RunConfig, RunResult};
use crate::runner::MatrixRunner;

/// Terminal state of one evaluation-matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The cell ran to completion — either with metrics, or as a DNF
    /// under the training budget (`RunResult::dnf`).
    Finished(RunResult),
    /// Every attempt returned an error; the last error is preserved as
    /// text so outcomes stay comparable and journal-serializable.
    Failed {
        /// Algorithm of the cell.
        algo: AlgoSpec,
        /// Dataset of the cell.
        dataset: String,
        /// Display rendering of the final error.
        error: String,
        /// Number of attempts made (1 + retries used).
        attempts: usize,
    },
    /// The cell panicked; the payload is captured and the rest of the
    /// matrix keeps running.
    Panicked {
        /// Algorithm of the cell.
        algo: AlgoSpec,
        /// Dataset of the cell.
        dataset: String,
        /// Panic payload rendered as text.
        message: String,
    },
}

/// Four-way status used by reports and the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Finished with metrics.
    Ok,
    /// Did not finish within the training budget.
    Dnf,
    /// Failed with an error after exhausting retries.
    Err,
    /// Panicked.
    Panic,
}

impl CellStatus {
    /// Fixed-width uppercase label for tables: `OK`, `DNF`, `ERR`,
    /// `PANIC`.
    pub fn label(self) -> &'static str {
        match self {
            CellStatus::Ok => "OK",
            CellStatus::Dnf => "DNF",
            CellStatus::Err => "ERR",
            CellStatus::Panic => "PANIC",
        }
    }
}

impl CellOutcome {
    /// Algorithm of the cell.
    pub fn algo(&self) -> AlgoSpec {
        match self {
            CellOutcome::Finished(r) => r.algo,
            CellOutcome::Failed { algo, .. } | CellOutcome::Panicked { algo, .. } => *algo,
        }
    }

    /// Dataset name of the cell.
    pub fn dataset(&self) -> &str {
        match self {
            CellOutcome::Finished(r) => &r.dataset,
            CellOutcome::Failed { dataset, .. } | CellOutcome::Panicked { dataset, .. } => dataset,
        }
    }

    /// Status of the cell (`Finished` splits into `Ok`/`Dnf`).
    pub fn status(&self) -> CellStatus {
        match self {
            CellOutcome::Finished(r) if r.dnf => CellStatus::Dnf,
            CellOutcome::Finished(_) => CellStatus::Ok,
            CellOutcome::Failed { .. } => CellStatus::Err,
            CellOutcome::Panicked { .. } => CellStatus::Panic,
        }
    }

    /// The completed run, when the cell finished.
    pub fn run_result(&self) -> Option<&RunResult> {
        match self {
            CellOutcome::Finished(r) => Some(r),
            _ => None,
        }
    }
}

/// Supervision knobs, consumed by [`MatrixRunner::supervised`].
#[derive(Debug, Clone)]
pub struct SupervisorOptions {
    /// Worker threads for the matrix (≥ 1).
    pub max_threads: usize,
    /// Extra attempts after a transient error (data/model errors are
    /// retried; panics and configuration errors are not).
    pub retries: usize,
    /// Checkpoint journal path; `None` disables journaling.
    pub journal: Option<PathBuf>,
    /// Resume from an existing journal instead of truncating it. Cells
    /// already recorded are not recomputed.
    pub resume: bool,
}

impl Default for SupervisorOptions {
    fn default() -> SupervisorOptions {
        SupervisorOptions {
            max_threads: 4,
            retries: 0,
            journal: None,
            resume: false,
        }
    }
}

/// `true` for error classes worth retrying: data- and model-layer
/// failures can be transient (e.g. a degenerate resample), while
/// configuration errors and budget DNFs are deterministic.
pub(crate) fn transient(error: &EtscError) -> bool {
    matches!(error, EtscError::Data(_) | EtscError::Ml(_))
}

/// Supervised matrix execution with an injectable cell runner — the
/// documented test hook for exercising panic isolation and retry
/// behaviour without building a misbehaving classifier. Equivalent to
/// [`MatrixRunner::run_with`] on an un-instrumented runner.
///
/// # Errors
/// Infrastructure failures only; see [`MatrixRunner::run`].
pub fn supervise_matrix_with<F>(
    datasets: &[Dataset],
    algos: &[AlgoSpec],
    config: &RunConfig,
    options: &SupervisorOptions,
    run: F,
) -> Result<Vec<CellOutcome>, EtscError>
where
    F: Fn(AlgoSpec, &Dataset, &RunConfig) -> Result<RunResult, EtscError> + Sync,
{
    MatrixRunner::new(config.clone())
        .supervised(options.clone())
        .run_with(datasets, algos, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use etsc_datasets::{GenOptions, PaperDataset};

    fn small_datasets() -> Vec<Dataset> {
        [PaperDataset::PowerCons, PaperDataset::DodgerLoopGame]
            .iter()
            .map(|d| {
                d.generate(GenOptions {
                    height_scale: 0.1,
                    length_scale: 0.15,
                    seed: 5,
                })
            })
            .collect()
    }

    fn passthrough_result(algo: AlgoSpec, dataset: &Dataset) -> RunResult {
        RunResult {
            algo,
            dataset: dataset.name().to_owned(),
            metrics: None,
            train_secs: 0.0,
            test_secs_per_instance: 0.0,
            dnf: true,
        }
    }

    #[test]
    fn panicking_cell_is_isolated_while_others_complete() {
        let datasets = small_datasets();
        let algos = [AlgoSpec::Ects, AlgoSpec::EcoK];
        let config = RunConfig::fast();
        let options = SupervisorOptions::default();
        let outcomes =
            supervise_matrix_with(&datasets, &algos, &config, &options, |algo, dataset, _| {
                if algo == AlgoSpec::EcoK && dataset.name().contains("DodgerLoopGame") {
                    panic!("injected cell failure");
                }
                Ok(passthrough_result(algo, dataset))
            })
            .unwrap();
        assert_eq!(outcomes.len(), 4);
        let panicked: Vec<_> = outcomes
            .iter()
            .filter(|c| c.status() == CellStatus::Panic)
            .collect();
        assert_eq!(panicked.len(), 1);
        assert_eq!(panicked[0].algo(), AlgoSpec::EcoK);
        match panicked[0] {
            CellOutcome::Panicked { message, .. } => {
                assert_eq!(message, "injected cell failure");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(
            outcomes
                .iter()
                .filter(|c| c.status() == CellStatus::Dnf)
                .count(),
            3,
            "the three healthy cells must all complete"
        );
    }

    #[test]
    fn transient_errors_are_retried_then_succeed() {
        let datasets = small_datasets()[..1].to_vec();
        let algos = [AlgoSpec::Ects];
        let config = RunConfig::fast();
        let options = SupervisorOptions {
            max_threads: 1,
            retries: 2,
            ..SupervisorOptions::default()
        };
        let calls = AtomicUsize::new(0);
        let outcomes =
            supervise_matrix_with(&datasets, &algos, &config, &options, |algo, dataset, _| {
                if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    return Err(EtscError::Data(etsc_data::DataError::Empty(
                        "transient resample failure",
                    )));
                }
                Ok(passthrough_result(algo, dataset))
            })
            .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(outcomes[0].status(), CellStatus::Dnf);
    }

    #[test]
    fn retry_exhaustion_reports_attempts_and_last_error() {
        let datasets = small_datasets()[..1].to_vec();
        let algos = [AlgoSpec::Ects];
        let config = RunConfig::fast();
        let options = SupervisorOptions {
            max_threads: 1,
            retries: 2,
            ..SupervisorOptions::default()
        };
        let calls = AtomicUsize::new(0);
        let outcomes = supervise_matrix_with(&datasets, &algos, &config, &options, |_, _, _| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(EtscError::Data(etsc_data::DataError::Empty(
                "always failing",
            )))
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3, "1 attempt + 2 retries");
        match &outcomes[0] {
            CellOutcome::Failed {
                attempts, error, ..
            } => {
                assert_eq!(*attempts, 3);
                assert!(error.contains("always failing"), "{error}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn non_transient_errors_are_not_retried() {
        let datasets = small_datasets()[..1].to_vec();
        let algos = [AlgoSpec::Ects];
        let config = RunConfig::fast();
        let options = SupervisorOptions {
            max_threads: 1,
            retries: 5,
            ..SupervisorOptions::default()
        };
        let calls = AtomicUsize::new(0);
        let outcomes = supervise_matrix_with(&datasets, &algos, &config, &options, |_, _, _| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(EtscError::Config("bad knob".to_owned()))
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1, "config errors never retry");
        assert_eq!(outcomes[0].status(), CellStatus::Err);
    }

    fn deterministic_runner(
        calls: &AtomicUsize,
    ) -> impl Fn(AlgoSpec, &Dataset, &RunConfig) -> Result<RunResult, EtscError> + Sync + '_ {
        |algo, dataset, _| {
            calls.fetch_add(1, Ordering::SeqCst);
            // Deterministic pseudo-metrics derived from the cell identity.
            let h = dataset.name().len() as f64 + algo as usize as f64;
            if algo == AlgoSpec::Edsc {
                return Err(EtscError::Config("always fails".to_owned()));
            }
            if algo == AlgoSpec::Teaser {
                panic!("always panics");
            }
            Ok(RunResult {
                algo,
                dataset: dataset.name().to_owned(),
                metrics: Some(crate::metrics::Metrics {
                    accuracy: h / 100.0,
                    f1: h / 120.0,
                    earliness: 0.5,
                    harmonic_mean: h / 150.0,
                }),
                train_secs: 0.001,
                test_secs_per_instance: 0.0001,
                dnf: false,
            })
        }
    }

    #[test]
    fn journaled_run_resumes_without_recomputing_and_matches_cell_for_cell() {
        let dir = std::env::temp_dir().join("etsc-supervisor-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kill-and-resume.jsonl");
        let datasets = small_datasets();
        let algos = [
            AlgoSpec::Ects,
            AlgoSpec::Edsc,
            AlgoSpec::Teaser,
            AlgoSpec::EcoK,
        ];
        let config = RunConfig::fast();
        let options = SupervisorOptions {
            max_threads: 2,
            journal: Some(path.clone()),
            ..SupervisorOptions::default()
        };

        // Full reference run, journaled.
        let calls = AtomicUsize::new(0);
        let full = supervise_matrix_with(
            &datasets,
            &algos,
            &config,
            &options,
            deterministic_runner(&calls),
        )
        .unwrap();
        assert_eq!(full.len(), 8);
        assert_eq!(calls.load(Ordering::SeqCst), 8);

        // Simulate a kill after three completed cells: truncate the
        // journal to the header plus its first three lines.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep: Vec<&str> = text.lines().take(4).collect();
        std::fs::write(&path, format!("{}\n", keep.join("\n"))).unwrap();

        // Resume: only the five missing cells are recomputed, and the
        // outcome matrix is cell-for-cell identical to the full run.
        let resume_options = SupervisorOptions {
            resume: true,
            ..options
        };
        let recomputed = AtomicUsize::new(0);
        let resumed = supervise_matrix_with(
            &datasets,
            &algos,
            &config,
            &resume_options,
            deterministic_runner(&recomputed),
        )
        .unwrap();
        assert_eq!(recomputed.load(Ordering::SeqCst), 5);
        assert_eq!(resumed, full, "resume must be cell-for-cell identical");

        // The journal now holds the complete matrix: a second resume
        // recomputes nothing.
        let third = AtomicUsize::new(0);
        let again = supervise_matrix_with(
            &datasets,
            &algos,
            &config,
            &resume_options,
            deterministic_runner(&third),
        )
        .unwrap();
        assert_eq!(third.load(Ordering::SeqCst), 0);
        assert_eq!(again, full);
    }

    #[test]
    fn resume_with_changed_config_is_rejected() {
        let dir = std::env::temp_dir().join("etsc-supervisor-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("config-mismatch.jsonl");
        let datasets = small_datasets()[..1].to_vec();
        let algos = [AlgoSpec::Ects];
        let config = RunConfig::fast();
        let options = SupervisorOptions {
            max_threads: 1,
            journal: Some(path.clone()),
            ..SupervisorOptions::default()
        };
        let calls = AtomicUsize::new(0);
        supervise_matrix_with(
            &datasets,
            &algos,
            &config,
            &options,
            deterministic_runner(&calls),
        )
        .unwrap();
        let other = RunConfig {
            seed: config.seed + 1,
            ..config
        };
        let err = supervise_matrix_with(
            &datasets,
            &algos,
            &other,
            &SupervisorOptions {
                resume: true,
                ..options
            },
            deterministic_runner(&calls),
        )
        .unwrap_err();
        assert!(err.to_string().contains("different run"), "{err}");
    }

    #[test]
    fn statuses_and_labels() {
        let ok = CellOutcome::Finished(RunResult {
            algo: AlgoSpec::Ects,
            dataset: "d".into(),
            metrics: Some(crate::metrics::Metrics {
                accuracy: 1.0,
                f1: 1.0,
                earliness: 0.5,
                harmonic_mean: 0.6,
            }),
            train_secs: 0.0,
            test_secs_per_instance: 0.0,
            dnf: false,
        });
        assert_eq!(ok.status(), CellStatus::Ok);
        assert!(ok.run_result().is_some());
        assert_eq!(CellStatus::Panic.label(), "PANIC");
        assert_eq!(CellStatus::Dnf.label(), "DNF");
    }
}
