//! # etsc-eval
//!
//! The evaluation harness of the framework (Section 6):
//!
//! * [`metrics`] — accuracy, macro-F1, earliness, the harmonic mean of
//!   accuracy and (1 − earliness), and timing records (Section 2.2);
//! * [`experiment`] — stratified 5-fold cross-validated runs of any
//!   algorithm on any dataset, with wall-clock training/testing times and
//!   the framework's training-budget (DNF) handling;
//! * [`aggregate`] — per-category averaging across datasets (the grouping
//!   behind Figures 9-12);
//! * [`online`] — the Figure 13 online-feasibility ratio (testing time per
//!   decision over the dataset's observation frequency);
//! * [`runner`] — [`MatrixRunner`], the unified builder-style front door
//!   to the evaluation matrix: parallelism, supervision, journaling, and
//!   observability (spans + metrics via [`etsc_obs`]) in one API;
//! * [`opts`] — the canonical command-line options shared by the `etsc`
//!   CLI and the `reproduce` binary (`--seed`, `--threads`, `--trace`,
//!   `--metrics`, ...);
//! * [`report`] — plain-text and CSV renderers matching the layout of the
//!   paper's tables and figures;
//! * [`tuning`] — hyper-parameter grid search over any algorithm (the
//!   paper's MultiETSC-style future-work item);
//! * [`moo`] — NSGA-II multi-objective optimisation of the
//!   accuracy/earliness Pareto front (the paper's MOO-ETSC item);
//! * [`supervisor`] — fault-tolerant execution of the full
//!   (dataset × algorithm) matrix: panic isolation, bounded retries,
//!   and the universal training budget (the paper's 48-hour rule);
//! * [`trigger_axis`] — the (dataset × base classifier × trigger)
//!   dimension of the matrix: any full classifier under any
//!   `etsc-trigger` halting rule, same metrics and supervision;
//! * [`journal`] — append-only JSONL checkpointing so an interrupted
//!   matrix run resumes without recomputing finished cells;
//! * [`faults`] — deterministic, seeded fault injection (worker panics,
//!   artificial latency, NaN observations, model corruption) used to
//!   chaos-test the serving stack.

pub mod aggregate;
pub mod experiment;
pub mod faults;
pub mod journal;
pub mod metrics;
pub mod moo;
pub mod online;
pub mod opts;
pub mod report;
pub mod runner;
pub mod supervisor;
pub mod trigger_axis;
pub mod tuning;

pub use aggregate::aggregate_by_category;
pub use experiment::{run_cell, AlgoSpec, RunConfig, RunResult};
pub use faults::{FaultPlan, FaultSchedule};
pub use journal::{Journal, JournalHeader};
pub use metrics::{EvalOutcome, Metrics};
pub use opts::CommonOpts;
pub use runner::MatrixRunner;
pub use supervisor::{CellOutcome, CellStatus, SupervisorOptions};
pub use trigger_axis::{build_triggered_cell, run_triggered_cell, TriggerCellResult};

pub use etsc_obs::Obs;
