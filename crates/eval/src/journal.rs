//! Append-only JSONL checkpoint journal for evaluation-matrix runs.
//!
//! The journal lets an interrupted (dataset × algorithm) sweep resume
//! from where it died without recomputing finished cells — the
//! operational counterpart of the paper's partial-result reporting
//! (DNF cells are recorded and the run continues).
//!
//! Format: one JSON object per line. The first line is a header
//! binding the journal to a run configuration (seed, folds, budget,
//! matrix shape); every following line is one completed cell. A
//! process killed mid-write leaves at most one torn trailing line,
//! which is ignored on resume. There is no serde in this workspace, so
//! both the writer and the parser are hand-rolled for this flat
//! schema.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;

use etsc_core::EtscError;

use crate::experiment::{AlgoSpec, RunConfig, RunResult};
use crate::metrics::Metrics;
use crate::supervisor::CellOutcome;

/// Journal schema version; bumped on incompatible format changes.
pub const JOURNAL_VERSION: u64 = 1;

/// Run identity recorded in (and verified against) the journal header.
/// Resuming under a different seed, fold count, budget, or matrix shape
/// would silently mix incompatible results, so any mismatch is an error.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalHeader {
    /// CV/shuffling seed of the run.
    pub seed: u64,
    /// Cross-validation folds.
    pub folds: usize,
    /// Universal training budget, seconds.
    pub budget_secs: f64,
    /// Number of datasets in the matrix.
    pub datasets: usize,
    /// Number of algorithms in the matrix.
    pub algos: usize,
}

impl JournalHeader {
    /// Builds the header describing a matrix run.
    pub fn for_run(config: &RunConfig, datasets: usize, algos: usize) -> JournalHeader {
        JournalHeader {
            seed: config.seed,
            folds: config.folds,
            budget_secs: config.train_budget.as_secs_f64(),
            datasets,
            algos,
        }
    }
}

/// Append-only writer over the journal file.
#[derive(Debug)]
pub struct Journal {
    writer: BufWriter<File>,
}

impl Journal {
    /// Creates (or truncates) a journal and writes the header line.
    ///
    /// # Errors
    /// File-system failures, reported as [`EtscError::Config`].
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Journal, EtscError> {
        let file = File::create(path).map_err(|e| io_error(path, &e))?;
        let mut journal = Journal {
            writer: BufWriter::new(file),
        };
        journal.write_line(&header_line(header))?;
        Ok(journal)
    }

    /// Opens an existing journal for resumption: verifies the header
    /// against `header`, returns the completed cells plus any non-fatal
    /// warnings, and reopens the file in append mode. A torn trailing
    /// line (from a mid-write kill) is treated as a not-yet-written
    /// cell: it is reported as a warning, physically truncated away so
    /// later appends stay well-formed, and the resume continues.
    ///
    /// # Errors
    /// Missing/unreadable file, a header that does not match the
    /// requested run, or mid-file corruption (a malformed line
    /// *followed by* valid cells — that is tampering, not a torn tail,
    /// and resuming over it would silently duplicate work).
    pub fn open_resume(
        path: &Path,
        header: &JournalHeader,
    ) -> Result<(Journal, Vec<CellOutcome>, Vec<String>), EtscError> {
        let read = read_journal(path)?;
        if read.header != *header {
            return Err(EtscError::Config(format!(
                "journal {} was written by a different run \
                 (journal: {:?}, requested: {header:?})",
                path.display(),
                read.header
            )));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_error(path, &e))?;
        // Drop the torn tail (and any missing final newline) so the
        // next append starts on a fresh line.
        file.set_len(read.valid_len)
            .map_err(|e| io_error(path, &e))?;
        let mut file = file;
        use std::io::Seek as _;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| io_error(path, &e))?;
        let mut journal = Journal {
            writer: BufWriter::new(file),
        };
        if read.needs_newline {
            journal
                .writer
                .write_all(b"\n")
                .and_then(|()| journal.writer.flush())
                .map_err(|e| io_error(path, &e))?;
        }
        Ok((journal, read.cells, read.warnings))
    }

    /// Appends one completed cell and flushes, so a kill immediately
    /// after loses at most the cell being written.
    ///
    /// # Errors
    /// File-system failures, reported as [`EtscError::Config`].
    pub fn append(&mut self, cell: &CellOutcome) -> Result<(), EtscError> {
        self.write_line(&cell_line(cell))
    }

    fn write_line(&mut self, line: &str) -> Result<(), EtscError> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| EtscError::Config(format!("journal write failed: {e}")))
    }
}

/// What [`read_journal`] recovered from a journal file.
#[derive(Debug)]
pub struct JournalRead {
    /// The parsed header line.
    pub header: JournalHeader,
    /// Every valid cell line, in file order.
    pub cells: Vec<CellOutcome>,
    /// Non-fatal anomalies tolerated during the read (a torn trailing
    /// line from a mid-write kill).
    pub warnings: Vec<String>,
    /// Byte length of the valid prefix (header + parsed cells,
    /// newlines included); everything past it is the torn tail.
    pub valid_len: u64,
    /// `true` when the last valid line is missing its final newline
    /// (the writer was killed between the line and the separator).
    pub needs_newline: bool,
}

/// Reads a journal file: the header plus every parseable cell line.
/// A malformed *final* line — the torn tail of a killed run — is
/// tolerated and reported as a warning; a malformed line followed by
/// valid cells is corruption and an error.
///
/// # Errors
/// Unreadable file, missing/invalid header line, or mid-file
/// corruption.
pub fn read_journal(path: &Path) -> Result<JournalRead, EtscError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_error(path, &e))?;
    let mut lines = text.split_inclusive('\n').peekable();
    let header_raw = lines.next().ok_or_else(|| {
        EtscError::Config(format!("journal {} has no header line", path.display()))
    })?;
    let header_text = header_raw.trim_end_matches(['\n', '\r']);
    let header = parse_header(header_text).ok_or_else(|| {
        EtscError::Config(format!(
            "journal {} has an invalid header: {header_text}",
            path.display()
        ))
    })?;
    let mut cells = Vec::new();
    let mut warnings = Vec::new();
    let mut valid_len = header_raw.len() as u64;
    let mut needs_newline = !header_raw.ends_with('\n');
    let mut line_no = 1usize;
    while let Some(raw) = lines.next() {
        line_no += 1;
        let line = raw.trim_end_matches(['\n', '\r']);
        if line.trim().is_empty() {
            valid_len += raw.len() as u64;
            continue;
        }
        match parse_cell(line) {
            Some(cell) => {
                cells.push(cell);
                valid_len += raw.len() as u64;
                needs_newline = !raw.ends_with('\n');
            }
            None if lines.peek().is_none() => {
                // Torn tail from a mid-write kill: the cell was never
                // durably recorded, so it is simply not-yet-written.
                warnings.push(format!(
                    "journal {}: ignoring torn trailing line {line_no} \
                     ({} bytes); the interrupted cell will be recomputed",
                    path.display(),
                    raw.len()
                ));
            }
            None => {
                return Err(EtscError::Config(format!(
                    "journal {} is corrupt: line {line_no} is malformed but \
                     valid cells follow it (not a torn tail)",
                    path.display()
                )));
            }
        }
    }
    Ok(JournalRead {
        header,
        cells,
        warnings,
        valid_len,
        needs_newline,
    })
}

fn io_error(path: &Path, e: &std::io::Error) -> EtscError {
    EtscError::Config(format!("journal {}: {e}", path.display()))
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn header_line(h: &JournalHeader) -> String {
    format!(
        "{{\"kind\":\"header\",\"version\":{JOURNAL_VERSION},\"seed\":{},\"folds\":{},\
         \"budget_secs\":{},\"datasets\":{},\"algos\":{}}}",
        h.seed,
        h.folds,
        num(h.budget_secs),
        h.datasets,
        h.algos
    )
}

fn cell_line(cell: &CellOutcome) -> String {
    let mut out = String::from("{\"kind\":\"cell\"");
    let _ = write!(
        out,
        ",\"status\":\"{}\",\"algo\":\"{}\",\"dataset\":\"{}\"",
        cell.status().label().to_ascii_lowercase(),
        esc(cell.algo().name()),
        esc(cell.dataset())
    );
    match cell {
        CellOutcome::Finished(r) => {
            let _ = write!(
                out,
                ",\"train_secs\":{},\"test_secs_per_instance\":{}",
                num(r.train_secs),
                num(r.test_secs_per_instance)
            );
            if let Some(m) = &r.metrics {
                let _ = write!(
                    out,
                    ",\"accuracy\":{},\"f1\":{},\"earliness\":{},\"harmonic_mean\":{}",
                    num(m.accuracy),
                    num(m.f1),
                    num(m.earliness),
                    num(m.harmonic_mean)
                );
            }
        }
        CellOutcome::Failed {
            error, attempts, ..
        } => {
            let _ = write!(out, ",\"attempts\":{attempts},\"error\":\"{}\"", esc(error));
        }
        CellOutcome::Panicked { message, .. } => {
            let _ = write!(out, ",\"message\":\"{}\"", esc(message));
        }
    }
    out.push('}');
    out
}

/// Shortest-roundtrip numeric literal: Rust's `Display` for finite
/// floats reparses to the identical bit pattern; non-finite values have
/// no JSON literal and become `null`.
fn num(x: f64) -> String {
    if x.is_finite() {
        let mut s = format!("{x}");
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_owned()
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Parsing (flat objects only: string / number / bool / null values)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl JsonValue {
    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }
}

fn parse_header(line: &str) -> Option<JournalHeader> {
    let obj = parse_object(line)?;
    if obj.get("kind")?.as_str()? != "header" || obj.get("version")?.as_u64()? != JOURNAL_VERSION {
        return None;
    }
    Some(JournalHeader {
        seed: obj.get("seed")?.as_u64()?,
        folds: obj.get("folds")?.as_u64()? as usize,
        budget_secs: obj.get("budget_secs")?.as_f64()?,
        datasets: obj.get("datasets")?.as_u64()? as usize,
        algos: obj.get("algos")?.as_u64()? as usize,
    })
}

fn parse_cell(line: &str) -> Option<CellOutcome> {
    let obj = parse_object(line)?;
    if obj.get("kind")?.as_str()? != "cell" {
        return None;
    }
    let algo = AlgoSpec::by_name(obj.get("algo")?.as_str()?)?;
    let dataset = obj.get("dataset")?.as_str()?.to_owned();
    match obj.get("status")?.as_str()? {
        "ok" => Some(CellOutcome::Finished(RunResult {
            algo,
            dataset,
            metrics: Some(Metrics {
                accuracy: obj.get("accuracy")?.as_f64()?,
                f1: obj.get("f1")?.as_f64()?,
                earliness: obj.get("earliness")?.as_f64()?,
                harmonic_mean: obj.get("harmonic_mean")?.as_f64()?,
            }),
            train_secs: obj.get("train_secs")?.as_f64()?,
            test_secs_per_instance: obj.get("test_secs_per_instance")?.as_f64()?,
            dnf: false,
        })),
        "dnf" => Some(CellOutcome::Finished(RunResult {
            algo,
            dataset,
            metrics: None,
            train_secs: obj.get("train_secs")?.as_f64()?,
            test_secs_per_instance: obj.get("test_secs_per_instance")?.as_f64()?,
            dnf: true,
        })),
        "err" => Some(CellOutcome::Failed {
            algo,
            dataset,
            error: obj.get("error")?.as_str()?.to_owned(),
            attempts: obj.get("attempts")?.as_u64()? as usize,
        }),
        "panic" => Some(CellOutcome::Panicked {
            algo,
            dataset,
            message: obj.get("message")?.as_str()?.to_owned(),
        }),
        _ => None,
    }
}

fn parse_object(line: &str) -> Option<BTreeMap<String, JsonValue>> {
    let mut chars = line.trim().char_indices().peekable();
    let text = line.trim();
    let mut out = BTreeMap::new();
    if chars.next()?.1 != '{' {
        return None;
    }
    loop {
        match chars.peek()?.1 {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
            }
            _ => {}
        }
        let key = parse_string(text, &mut chars)?;
        if chars.next()?.1 != ':' {
            return None;
        }
        let value = match chars.peek()?.1 {
            '"' => JsonValue::Str(parse_string(text, &mut chars)?),
            't' | 'f' | 'n' => {
                let word: String = take_while(&mut chars, |c| c.is_ascii_alphabetic());
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    "null" => JsonValue::Null,
                    _ => return None,
                }
            }
            _ => {
                let token: String =
                    take_while(&mut chars, |c| !matches!(c, ',' | '}' | ' ' | '\t'));
                JsonValue::Num(token.parse().ok()?)
            }
        };
        out.insert(key, value);
    }
    // Anything after the closing brace means this wasn't a flat object.
    if chars.next().is_some() {
        return None;
    }
    Some(out)
}

fn take_while(
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    keep: impl Fn(char) -> bool,
) -> String {
    let mut out = String::new();
    while let Some(&(_, c)) = chars.peek() {
        if keep(c) {
            out.push(c);
            chars.next();
        } else {
            break;
        }
    }
    out
}

fn parse_string(
    _text: &str,
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
) -> Option<String> {
    if chars.next()?.1 != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        let (_, c) = chars.next()?;
        match c {
            '"' => return Some(out),
            '\\' => {
                let (_, e) = chars.next()?;
                match e {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            code = code * 16 + chars.next()?.1.to_digit(16)?;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("etsc-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_cells() -> Vec<CellOutcome> {
        vec![
            CellOutcome::Finished(RunResult {
                algo: AlgoSpec::Ects,
                dataset: "PowerCons".into(),
                metrics: Some(Metrics {
                    accuracy: 0.9125,
                    f1: 1.0 / 3.0,
                    earliness: 0.1 + 0.2, // deliberately non-representable
                    harmonic_mean: 0.666_666_666_666_7,
                }),
                train_secs: 0.012_345,
                test_secs_per_instance: 1.5e-6,
                dnf: false,
            }),
            CellOutcome::Finished(RunResult {
                algo: AlgoSpec::Edsc,
                dataset: "HouseTwenty".into(),
                metrics: None,
                train_secs: 120.0,
                test_secs_per_instance: 0.0,
                dnf: true,
            }),
            CellOutcome::Failed {
                algo: AlgoSpec::Teaser,
                dataset: "weird \"name\"\twith\nescapes\\".into(),
                error: "data error: empty fold".into(),
                attempts: 3,
            },
            CellOutcome::Panicked {
                algo: AlgoSpec::SMini,
                dataset: "Maritime".into(),
                message: "index out of bounds: the len is 4".into(),
            },
        ]
    }

    fn header() -> JournalHeader {
        JournalHeader {
            seed: 2024,
            folds: 5,
            budget_secs: Duration::from_secs(120).as_secs_f64(),
            datasets: 3,
            algos: 8,
        }
    }

    #[test]
    fn roundtrip_preserves_every_outcome_exactly() {
        let path = tmp("roundtrip.jsonl");
        let mut journal = Journal::create(&path, &header()).unwrap();
        for cell in &sample_cells() {
            journal.append(cell).unwrap();
        }
        drop(journal);
        let read = read_journal(&path).unwrap();
        assert_eq!(read.header, header());
        assert!(read.warnings.is_empty());
        let cells = read.cells;
        assert_eq!(cells.len(), 4);
        for (a, b) in cells.iter().zip(sample_cells().iter()) {
            match (a, b) {
                (CellOutcome::Finished(x), CellOutcome::Finished(y)) => {
                    assert_eq!(x.algo, y.algo);
                    assert_eq!(x.dataset, y.dataset);
                    assert_eq!(x.metrics, y.metrics, "f64 roundtrip must be exact");
                    assert_eq!(x.train_secs, y.train_secs);
                    assert_eq!(x.test_secs_per_instance, y.test_secs_per_instance);
                    assert_eq!(x.dnf, y.dnf);
                }
                (a, b) => assert_eq!(format!("{a:?}"), format!("{b:?}")),
            }
        }
    }

    #[test]
    fn resume_rejects_mismatched_header() {
        let path = tmp("mismatch.jsonl");
        Journal::create(&path, &header()).unwrap();
        let other = JournalHeader {
            seed: 1,
            ..header()
        };
        let err = Journal::open_resume(&path, &other).unwrap_err();
        assert!(err.to_string().contains("different run"), "{err}");
    }

    #[test]
    fn torn_tail_is_ignored_with_warning() {
        let path = tmp("torn.jsonl");
        let mut journal = Journal::create(&path, &header()).unwrap();
        for cell in &sample_cells()[..2] {
            journal.append(cell).unwrap();
        }
        drop(journal);
        // Simulate a kill mid-write: append half a record.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"kind\":\"cell\",\"status\":\"ok\",\"algo\":\"EC").unwrap();
        drop(f);
        let read = read_journal(&path).unwrap();
        assert_eq!(read.cells.len(), 2);
        assert_eq!(read.warnings.len(), 1);
        assert!(
            read.warnings[0].contains("torn trailing line"),
            "{:?}",
            read.warnings
        );
        assert!((read.valid_len as usize) < std::fs::metadata(&path).unwrap().len() as usize);
    }

    #[test]
    fn resume_truncates_torn_tail_and_appends_cleanly() {
        let path = tmp("torn-resume.jsonl");
        let mut journal = Journal::create(&path, &header()).unwrap();
        journal.append(&sample_cells()[0]).unwrap();
        drop(journal);
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"kind\":\"cell\",\"sta").unwrap();
        drop(f);
        let (mut journal, cells, warnings) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(warnings.len(), 1);
        journal.append(&sample_cells()[1]).unwrap();
        drop(journal);
        // The torn bytes are gone and the new cell parses: a second
        // resume sees both cells and no warnings.
        let read = read_journal(&path).unwrap();
        assert_eq!(read.cells.len(), 2);
        assert!(read.warnings.is_empty(), "{:?}", read.warnings);
    }

    #[test]
    fn midfile_corruption_is_an_error_not_a_silent_truncation() {
        let path = tmp("midfile.jsonl");
        let mut journal = Journal::create(&path, &header()).unwrap();
        journal.append(&sample_cells()[0]).unwrap();
        drop(journal);
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "garbage line").unwrap();
        drop(f);
        // Valid cell after the garbage => corruption, not a torn tail.
        let mut journal = Journal {
            writer: BufWriter::new(OpenOptions::new().append(true).open(&path).unwrap()),
        };
        journal.append(&sample_cells()[1]).unwrap();
        drop(journal);
        let err = read_journal(&path).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
    }

    #[test]
    fn resume_appends_after_existing_cells() {
        let path = tmp("resume-append.jsonl");
        let mut journal = Journal::create(&path, &header()).unwrap();
        journal.append(&sample_cells()[0]).unwrap();
        drop(journal);
        let (mut journal, cells, warnings) = Journal::open_resume(&path, &header()).unwrap();
        assert_eq!(cells.len(), 1);
        assert!(warnings.is_empty());
        journal.append(&sample_cells()[1]).unwrap();
        drop(journal);
        assert_eq!(read_journal(&path).unwrap().cells.len(), 2);
    }

    #[test]
    fn missing_file_and_missing_header_error() {
        assert!(read_journal(&tmp("does-not-exist.jsonl")).is_err());
        let path = tmp("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        assert!(read_journal(&path).is_err());
        std::fs::write(&path, "not json\n").unwrap();
        assert!(read_journal(&path).is_err());
    }

    #[test]
    fn numeric_literals_roundtrip_exactly() {
        for x in [
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -0.0,
            123456.789,
        ] {
            let s = num(x);
            let y: f64 = s.parse().unwrap();
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {s}");
        }
        assert_eq!(num(f64::NAN), "null");
    }
}
