//! The paper's evaluation metrics (Section 2.2).
//!
//! * **Accuracy** — correct predictions over all predictions;
//! * **F1-score** — per-class `TP / (TP + (FP + FN)/2)`, averaged over
//!   classes (macro);
//! * **Earliness** — observed prefix length over full length, averaged
//!   over test instances (lower is better);
//! * **Harmonic mean** — `2·acc·(1−earliness) / (acc + (1−earliness))`;
//! * training times (minutes) and testing times (seconds).

// Indexed loops keep the gradient/index math readable here.
#![allow(clippy::needless_range_loop)]
/// One test-instance outcome: truth, prediction, and the consumed prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOutcome {
    /// Ground-truth label.
    pub truth: usize,
    /// Predicted label.
    pub predicted: usize,
    /// Time points consumed before committing.
    pub prefix_len: usize,
    /// Full instance length.
    pub full_len: usize,
}

/// Aggregated metrics over a set of outcomes.
///
/// ```
/// use etsc_eval::metrics::{EvalOutcome, Metrics};
///
/// let outcomes = [
///     EvalOutcome { truth: 0, predicted: 0, prefix_len: 5, full_len: 10 },
///     EvalOutcome { truth: 1, predicted: 0, prefix_len: 10, full_len: 10 },
/// ];
/// let m = Metrics::compute(&outcomes, 2);
/// assert_eq!(m.accuracy, 0.5);
/// assert_eq!(m.earliness, 0.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Classification accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Macro-averaged F1 in `[0, 1]`.
    pub f1: f64,
    /// Mean earliness in `(0, 1]` (lower is better).
    pub earliness: f64,
    /// Harmonic mean of accuracy and `1 − earliness`.
    pub harmonic_mean: f64,
}

impl Metrics {
    /// Computes all Section 2.2 metrics from per-instance outcomes.
    ///
    /// `n_classes` sizes the confusion matrix (labels must be below it).
    ///
    /// # Panics
    /// When `outcomes` is empty or a label is out of range (programming
    /// errors in the harness).
    pub fn compute(outcomes: &[EvalOutcome], n_classes: usize) -> Metrics {
        assert!(!outcomes.is_empty(), "no outcomes to score");
        let mut confusion = vec![vec![0usize; n_classes]; n_classes];
        let mut earliness_sum = 0.0;
        for o in outcomes {
            confusion[o.truth][o.predicted] += 1;
            earliness_sum += o.prefix_len as f64 / o.full_len.max(1) as f64;
        }
        let correct: usize = (0..n_classes).map(|c| confusion[c][c]).sum();
        let accuracy = correct as f64 / outcomes.len() as f64;
        let f1 = macro_f1(&confusion);
        let earliness = earliness_sum / outcomes.len() as f64;
        Metrics {
            accuracy,
            f1,
            earliness,
            harmonic_mean: harmonic_mean(accuracy, earliness),
        }
    }

    /// Non-panicking [`Metrics::compute`]: returns `None` on an empty
    /// outcome set or an out-of-range label instead of aborting the
    /// cell — for callers (like the run supervisor) that must degrade a
    /// bad cell into a reportable failure rather than a panic.
    pub fn try_compute(outcomes: &[EvalOutcome], n_classes: usize) -> Option<Metrics> {
        if outcomes.is_empty()
            || outcomes
                .iter()
                .any(|o| o.truth >= n_classes || o.predicted >= n_classes)
        {
            return None;
        }
        Some(Metrics::compute(outcomes, n_classes))
    }
}

/// Macro-averaged F1 from a confusion matrix
/// (`confusion[truth][predicted]`), using the paper's per-class formula
/// `TP / (TP + (FP + FN)/2)` averaged over **all** classes (absent
/// classes contribute 0, matching the paper's division by |C|).
pub fn macro_f1(confusion: &[Vec<usize>]) -> f64 {
    let c_count = confusion.len();
    if c_count == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for c in 0..c_count {
        let tp = confusion[c][c] as f64;
        let fp: f64 = (0..c_count)
            .filter(|&o| o != c)
            .map(|o| confusion[o][c] as f64)
            .sum();
        let fn_: f64 = (0..c_count)
            .filter(|&o| o != c)
            .map(|o| confusion[c][o] as f64)
            .sum();
        let denom = tp + 0.5 * (fp + fn_);
        if denom > 0.0 {
            sum += tp / denom;
        }
    }
    sum / c_count as f64
}

/// The paper's harmonic mean of accuracy and `1 − earliness`.
pub fn harmonic_mean(accuracy: f64, earliness: f64) -> f64 {
    let inv = 1.0 - earliness;
    let denom = accuracy + inv;
    if denom <= 0.0 {
        0.0
    } else {
        2.0 * accuracy * inv / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(truth: usize, predicted: usize, prefix: usize, full: usize) -> EvalOutcome {
        EvalOutcome {
            truth,
            predicted,
            prefix_len: prefix,
            full_len: full,
        }
    }

    #[test]
    fn perfect_predictions() {
        let outcomes = vec![o(0, 0, 5, 10), o(1, 1, 5, 10)];
        let m = Metrics::compute(&outcomes, 2);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.earliness, 0.5);
        assert!((m.harmonic_mean - 2.0 * 0.5 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn try_compute_rejects_empty_and_out_of_range() {
        assert_eq!(Metrics::try_compute(&[], 2), None);
        assert_eq!(Metrics::try_compute(&[o(0, 5, 1, 2)], 2), None);
        assert_eq!(Metrics::try_compute(&[o(3, 0, 1, 2)], 2), None);
        let outcomes = vec![o(0, 0, 5, 10), o(1, 1, 5, 10)];
        assert_eq!(
            Metrics::try_compute(&outcomes, 2),
            Some(Metrics::compute(&outcomes, 2))
        );
    }

    #[test]
    fn accuracy_counts_all_classes() {
        let outcomes = vec![o(0, 0, 1, 2), o(0, 1, 1, 2), o(1, 1, 1, 2), o(1, 1, 1, 2)];
        let m = Metrics::compute(&outcomes, 2);
        assert_eq!(m.accuracy, 0.75);
    }

    #[test]
    fn f1_matches_hand_computation() {
        // Class 0: TP=1 FP=0 FN=1 → f1 = 1/(1+1) = 2/3... recompute:
        // TP/(TP+0.5(FP+FN)) = 1/(1+0.5·1) = 2/3.
        // Class 1: TP=2 FP=1 FN=0 → 2/(2+0.5) = 0.8.
        let outcomes = vec![o(0, 0, 1, 2), o(0, 1, 1, 2), o(1, 1, 1, 2), o(1, 1, 1, 2)];
        let m = Metrics::compute(&outcomes, 2);
        assert!((m.f1 - (2.0 / 3.0 + 0.8) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn absent_class_lowers_macro_f1() {
        // 3 declared classes but only 2 appear: |C|=3 divisor.
        let outcomes = vec![o(0, 0, 1, 2), o(1, 1, 1, 2)];
        let m = Metrics::compute(&outcomes, 3);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn earliness_one_means_no_harmonic_credit() {
        let outcomes = vec![o(0, 0, 10, 10)];
        let m = Metrics::compute(&outcomes, 1);
        assert_eq!(m.earliness, 1.0);
        assert_eq!(m.harmonic_mean, 0.0);
    }

    #[test]
    fn zero_accuracy_zero_harmonic() {
        assert_eq!(harmonic_mean(0.0, 0.2), 0.0);
        assert_eq!(harmonic_mean(1.0, 0.0), 1.0);
    }

    #[test]
    #[should_panic]
    fn empty_outcomes_panic() {
        let _ = Metrics::compute(&[], 2);
    }
}
