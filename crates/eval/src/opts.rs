//! Shared command-line options for evaluation entry points.
//!
//! The `etsc` CLI (`evaluate`/`matrix`/`serve`/`train`) and the
//! `reproduce` binary grew the same knobs with drifting spellings. This
//! module pins one canonical spelling per knob and one parser both
//! front-ends share, so a flag learned on one entry point works on the
//! others:
//!
//! | flag            | meaning                                          |
//! |-----------------|--------------------------------------------------|
//! | `--seed N`      | RNG seed for folds and generated datasets        |
//! | `--folds N`     | cross-validation folds                           |
//! | `--threads N`   | matrix worker threads (`--parallel` is a         |
//! |                 | deprecated alias)                                |
//! | `--fit-threads N` | per-cell voter-training threads (0 = auto)     |
//! | `--budget-secs N` | universal training budget per fold             |
//! | `--retries N`   | retry budget for transient cell errors           |
//! | `--journal F`   | checkpoint journal path                          |
//! | `--resume`      | resume from an existing journal                  |
//! | `--trace F`     | write a JSONL span/event trace to `F`            |
//! | `--metrics F`   | write a Prometheus text snapshot to `F`          |
//!
//! [`CommonOpts::accept`] is the single flag decoder; front-ends feed
//! it `(name, value)` pairs from their own argv loops and keep full
//! control of command-specific flags (which `accept` reports as
//! unrecognised rather than erroring on).

use std::path::PathBuf;

use etsc_core::EtscError;
use etsc_obs::Obs;

use crate::experiment::RunConfig;
use crate::runner::MatrixRunner;
use crate::supervisor::SupervisorOptions;

/// The options shared by every evaluation entry point, all optional so
/// each front-end keeps its own defaults. See the [module docs](self)
/// for the canonical flag spellings.
#[derive(Debug, Clone, Default)]
pub struct CommonOpts {
    /// `--seed N`.
    pub seed: Option<u64>,
    /// `--folds N`.
    pub folds: Option<usize>,
    /// `--threads N` (canonical; `--parallel` is a deprecated alias).
    pub threads: Option<usize>,
    /// `--fit-threads N` (0 = auto: machine parallelism / `--threads`).
    pub fit_threads: Option<usize>,
    /// `--budget-secs N`.
    pub budget_secs: Option<u64>,
    /// `--retries N`.
    pub retries: Option<usize>,
    /// `--journal FILE`.
    pub journal: Option<PathBuf>,
    /// `--resume`.
    pub resume: bool,
    /// `--trace FILE` — JSONL span/event trace destination.
    pub trace: Option<PathBuf>,
    /// `--metrics FILE` — Prometheus text snapshot destination.
    pub metrics: Option<PathBuf>,
}

impl CommonOpts {
    /// Flag names (without `--`) that are switches — they take no
    /// value. Front-ends use this to drive their argv loops.
    pub const SWITCHES: &'static [&'static str] = &["resume"];

    /// Tries to consume one `--name value` pair. Returns `Ok(true)`
    /// when the flag is one of the shared options (now recorded),
    /// `Ok(false)` when the front-end should handle it itself.
    ///
    /// `name` is the bare flag name, without the `--` prefix.
    /// `--parallel` is accepted as a deprecated alias for `--threads`.
    ///
    /// # Errors
    /// A human-readable message when the flag is shared but its value
    /// does not parse.
    pub fn accept(&mut self, name: &str, value: &str) -> Result<bool, String> {
        fn parse<T: std::str::FromStr>(name: &str, value: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("invalid --{name} value {value:?}"))
        }
        match name {
            "seed" => self.seed = Some(parse(name, value)?),
            "folds" => self.folds = Some(parse(name, value)?),
            "threads" | "parallel" => self.threads = Some(parse(name, value)?),
            "fit-threads" => self.fit_threads = Some(parse(name, value)?),
            "budget-secs" => self.budget_secs = Some(parse(name, value)?),
            "retries" => self.retries = Some(parse(name, value)?),
            "journal" => self.journal = Some(PathBuf::from(value)),
            "resume" => self.resume = parse(name, value)?,
            "trace" => self.trace = Some(PathBuf::from(value)),
            "metrics" => self.metrics = Some(PathBuf::from(value)),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Applies the set options onto a [`RunConfig`], leaving unset ones
    /// at the config's current values.
    pub fn apply_config(&self, config: &mut RunConfig) {
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        if let Some(folds) = self.folds {
            config.folds = folds;
        }
        if let Some(fit_threads) = self.fit_threads {
            config.fit_threads = fit_threads;
        }
        if let Some(secs) = self.budget_secs {
            config.train_budget = std::time::Duration::from_secs(secs);
        }
    }

    /// Builds [`SupervisorOptions`] from `defaults` with the set
    /// options applied on top.
    pub fn supervisor_options(&self, defaults: SupervisorOptions) -> SupervisorOptions {
        SupervisorOptions {
            max_threads: self.threads.unwrap_or(defaults.max_threads),
            retries: self.retries.unwrap_or(defaults.retries),
            journal: self.journal.clone().or(defaults.journal),
            resume: self.resume || defaults.resume,
        }
    }

    /// An observability context sized to the request: enabled exactly
    /// when `--trace` or `--metrics` was given, disabled (near-zero
    /// overhead) otherwise.
    pub fn build_obs(&self) -> Obs {
        if self.trace.is_some() || self.metrics.is_some() {
            Obs::enabled()
        } else {
            Obs::disabled()
        }
    }

    /// Writes the requested artifacts — the JSONL trace and/or the
    /// Prometheus snapshot — from `obs` to the paths given on the
    /// command line. A no-op for paths that were not requested.
    ///
    /// # Errors
    /// [`EtscError::Config`] describing the file that failed to write.
    pub fn export(&self, obs: &Obs) -> Result<(), EtscError> {
        if let Some(path) = &self.trace {
            obs.tracer
                .export_to_path(path)
                .map_err(|e| EtscError::Config(format!("writing trace {}: {e}", path.display())))?;
        }
        if let Some(path) = &self.metrics {
            obs.metrics.export_to_path(path).map_err(|e| {
                EtscError::Config(format!("writing metrics {}: {e}", path.display()))
            })?;
        }
        Ok(())
    }

    /// Assembles a fully configured [`MatrixRunner`]: options applied
    /// onto `config`, supervision derived from defaults, observability
    /// enabled when artifacts were requested. Callers still need
    /// [`CommonOpts::export`] (with the runner's
    /// [`obs`](MatrixRunner::new)) after the run; use
    /// [`MatrixRunner::obs`]'s context via [`CommonOpts::build_obs`] to
    /// keep a handle:
    ///
    /// ```no_run
    /// # use etsc_eval::{CommonOpts, RunConfig};
    /// # let (opts, datasets, algos) = (CommonOpts::default(), vec![], vec![]);
    /// let obs = opts.build_obs();
    /// let runner = opts.runner(RunConfig::fast()).obs(obs.clone());
    /// let outcomes = runner.run(&datasets, &algos)?;
    /// opts.export(&obs)?;
    /// # Ok::<(), etsc_core::EtscError>(())
    /// ```
    pub fn runner(&self, mut config: RunConfig) -> MatrixRunner {
        self.apply_config(&mut config);
        MatrixRunner::new(config)
            .supervised(self.supervisor_options(SupervisorOptions {
                max_threads: 1,
                ..SupervisorOptions::default()
            }))
            .obs(self.build_obs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_decodes_shared_flags_and_skips_foreign_ones() {
        let mut opts = CommonOpts::default();
        assert!(opts.accept("seed", "9").unwrap());
        assert!(opts.accept("parallel", "3").unwrap(), "deprecated alias");
        assert!(opts.accept("fit-threads", "0").unwrap());
        assert!(opts.accept("trace", "t.jsonl").unwrap());
        assert!(!opts.accept("height-scale", "0.2").unwrap());
        assert!(opts.accept("threads", "oops").is_err());
        assert_eq!(opts.seed, Some(9));
        assert_eq!(opts.threads, Some(3));
        assert_eq!(opts.fit_threads, Some(0));
        assert_eq!(opts.trace.as_deref(), Some(std::path::Path::new("t.jsonl")));
    }

    #[test]
    fn runner_assembly_applies_config_and_supervision() {
        let mut opts = CommonOpts::default();
        opts.accept("seed", "77").unwrap();
        opts.accept("folds", "4").unwrap();
        opts.accept("threads", "2").unwrap();
        opts.accept("retries", "1").unwrap();
        opts.accept("budget-secs", "12").unwrap();
        let runner = opts.runner(RunConfig::fast());
        assert_eq!(runner.config().seed, 77);
        assert_eq!(runner.config().folds, 4);
        assert_eq!(
            runner.config().train_budget,
            std::time::Duration::from_secs(12)
        );
        assert_eq!(runner.options().max_threads, 2);
        assert_eq!(runner.options().retries, 1);
        assert!(!runner.options().resume);
    }

    #[test]
    fn obs_enabled_only_when_artifacts_requested() {
        let opts = CommonOpts::default();
        assert!(!opts.build_obs().is_enabled());
        let mut traced = CommonOpts::default();
        traced.accept("metrics", "m.prom").unwrap();
        assert!(traced.build_obs().is_enabled());
    }

    #[test]
    fn export_writes_requested_artifacts() {
        let dir = std::env::temp_dir().join("etsc-opts-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.jsonl");
        let metrics = dir.join("m.prom");
        let mut opts = CommonOpts::default();
        opts.accept("trace", trace.to_str().unwrap()).unwrap();
        opts.accept("metrics", metrics.to_str().unwrap()).unwrap();
        let obs = opts.build_obs();
        obs.metrics.counter("demo_total").inc();
        drop(obs.tracer.span("demo"));
        opts.export(&obs).unwrap();
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.contains("\"demo\""), "{t}");
        let m = std::fs::read_to_string(&metrics).unwrap();
        etsc_obs::validate_prometheus(&m).unwrap();
        std::fs::remove_file(trace).ok();
        std::fs::remove_file(metrics).ok();
    }
}
