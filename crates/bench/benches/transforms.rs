//! Micro-benchmarks of the feature transforms behind the algorithms:
//! WEASEL bag construction and MiniROCKET convolution. These expose the
//! substrate costs that drive the Figure 12/13 orderings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use etsc_data::{MultiSeries, Series};
use etsc_transforms::minirocket::{MiniRocket, MiniRocketConfig};
use etsc_transforms::weasel::{Weasel, WeaselConfig};

fn signal(len: usize, phase: f64) -> Vec<f64> {
    (0..len).map(|t| ((t as f64 * 0.3) + phase).sin()).collect()
}

fn weasel_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("weasel");
    group.sample_size(10);
    for &len in &[64usize, 256] {
        let series: Vec<Vec<f64>> = (0..20).map(|i| signal(len, i as f64 * 0.2)).collect();
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let refs: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
        group.bench_with_input(BenchmarkId::new("fit", len), &len, |b, _| {
            b.iter(|| {
                let mut w = Weasel::new(WeaselConfig::default());
                w.fit(black_box(&refs), black_box(&labels), 2).unwrap();
                black_box(w.n_features())
            });
        });
        let mut fitted = Weasel::new(WeaselConfig::default());
        fitted.fit(&refs, &labels, 2).unwrap();
        group.bench_with_input(BenchmarkId::new("transform", len), &len, |b, _| {
            b.iter(|| black_box(fitted.transform(&series[0]).unwrap()));
        });
    }
    group.finish();
}

fn minirocket_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("minirocket");
    group.sample_size(10);
    for &len in &[64usize, 256] {
        let samples: Vec<MultiSeries> = (0..20)
            .map(|i| MultiSeries::univariate(Series::new(signal(len, i as f64 * 0.2))))
            .collect();
        let config = MiniRocketConfig {
            num_features: 500,
            ..MiniRocketConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("fit", len), &len, |b, _| {
            b.iter(|| {
                let mut mr = MiniRocket::new(config.clone());
                mr.fit(black_box(&samples)).unwrap();
                black_box(mr.n_features())
            });
        });
        let mut fitted = MiniRocket::new(config.clone());
        fitted.fit(&samples).unwrap();
        group.bench_with_input(BenchmarkId::new("transform", len), &len, |b, _| {
            b.iter(|| black_box(fitted.transform(&samples[0]).unwrap()));
        });
    }
    group.finish();
}

fn mft_benches(c: &mut Criterion) {
    // The incremental momentary Fourier transform vs the direct per-window
    // DFT it replaces: the speedup grows with the window length.
    let mut group = c.benchmark_group("sliding_dft");
    group.sample_size(10);
    let series = signal(2048, 0.0);
    for &win in &[32usize, 128] {
        group.bench_with_input(BenchmarkId::new("mft", win), &win, |b, &win| {
            b.iter(|| {
                black_box(etsc_transforms::fourier::sliding_dft(
                    black_box(&series),
                    win,
                    4,
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("direct", win), &win, |b, &win| {
            b.iter(|| {
                let out: Vec<Vec<f64>> = series
                    .windows(win)
                    .map(|w| etsc_transforms::fourier::dft_features(black_box(w), 4))
                    .collect();
                black_box(out)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, weasel_benches, minirocket_benches, mft_benches);
criterion_main!(benches);
