//! Streaming-service benchmarks: decisions/sec and p50/p99 decision
//! latency for every algorithm served through `etsc-serve`'s scheduler,
//! cross-checked against the offline Figure-13 cell.
//!
//! Each algorithm is trained once, persisted through the model store
//! (so the bench exercises the loaded artifact, like a real serving
//! process would), then replayed as concurrent sessions. After the
//! timed section the measured ratio is compared against
//! `etsc_eval::online::online_cell` fed with the same measured
//! latency — the two verdicts must agree by construction, and the
//! printout makes the measured numbers visible in CI logs.
//!
//! The run also seeds the perf trajectory: every algorithm's measured
//! throughput/latency, plus the tracer-overhead ratio (replay with a
//! fully enabled `Obs` context vs. the disabled default), is written to
//! `BENCH_baseline.json` (override the path with the
//! `BENCH_BASELINE_PATH` environment variable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use etsc_bench::ScalePreset;
use etsc_core::TriggeredBase;
use etsc_datasets::PaperDataset;
use etsc_eval::experiment::{AlgoSpec, RunConfig, RunResult};
use etsc_eval::online::online_cell;
use etsc_obs::Obs;
use etsc_serve::{
    fit_model, fit_triggered_model, replay_dataset, ReplayOptions, SchedulerConfig, StoredModel,
};
use etsc_trigger::TriggerSpec;

/// One `BENCH_baseline.json` row: the measured serving numbers for one
/// algorithm.
struct BaselineRow {
    algo: &'static str,
    decisions_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    feasible: Option<bool>,
}

/// One `"triggers"` row: the measured serving numbers for one
/// (base classifier × trigger) combination, with earliness reported as
/// a delta against the same base under the fixed-threshold baseline.
struct TriggerRow {
    combo: String,
    spec: String,
    decisions_per_sec: f64,
    accuracy: f64,
    earliness: f64,
    earliness_delta: f64,
    harmonic_mean: f64,
}

/// Harmonic mean of accuracy and (1 − earliness), the paper's combined
/// score.
fn harmonic_mean(accuracy: f64, earliness: f64) -> f64 {
    let e = 1.0 - earliness;
    if accuracy + e == 0.0 {
        0.0
    } else {
        2.0 * accuracy * e / (accuracy + e)
    }
}

/// Sections the loadgen bin appends after the streaming prefix. A
/// re-run of this bench rewrites its own prefix (header, algorithms,
/// triggers) but must carry these forward instead of clobbering them.
const APPENDED_SECTIONS: [&str; 4] = [
    ",\n  \"network\"",
    ",\n  \"fleet\"",
    ",\n  \"adapt\"",
    ",\n  \"overload\"",
];

/// Returns the loadgen-owned tail of an existing baseline file (without
/// the closing brace), or an empty string when there is none.
fn appended_tail(path: &str) -> String {
    let Ok(existing) = std::fs::read_to_string(path) else {
        return String::new();
    };
    let mut base = existing.trim_end().to_owned();
    if base.ends_with('}') {
        base.pop();
        base.truncate(base.trim_end().len());
    }
    APPENDED_SECTIONS
        .iter()
        .filter_map(|key| base.find(key))
        .min()
        .map(|i| base[i..].to_owned())
        .unwrap_or_default()
}

/// Replays `reps` times and returns the total wall-clock seconds. A
/// fresh `Obs` is built per replay — the per-run cost being probed —
/// rather than letting one registry accumulate samples across reps.
fn timed_replays(
    loaded: &StoredModel,
    data: &etsc_data::Dataset,
    options: &ReplayOptions,
    traced: bool,
    reps: usize,
) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        let obs = if traced {
            Obs::enabled()
        } else {
            Obs::disabled()
        };
        let options = ReplayOptions {
            scheduler: SchedulerConfig {
                obs,
                ..options.scheduler.clone()
            },
            ..options.clone()
        };
        black_box(replay_dataset(loaded, data, &options).expect("replay runs"));
    }
    start.elapsed().as_secs_f64()
}

/// Serialises the measured baseline by hand (the workspace carries no
/// JSON dependency) and writes it where CI expects it.
fn write_baseline(rows: &[BaselineRow], triggers: &[TriggerRow], overhead_pct: f64) {
    let path = std::env::var("BENCH_BASELINE_PATH").unwrap_or_else(|_| {
        // cargo runs benches with the package as CWD; anchor the
        // default at the workspace root so the trajectory file is
        // versioned alongside the code.
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json").into()
    });
    let tail = appended_tail(&path);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"streaming_serve\",\n");
    out.push_str("  \"dataset\": \"PowerCons\",\n");
    out.push_str("  \"preset\": \"quick\",\n");
    out.push_str(&format!("  \"tracer_overhead_pct\": {overhead_pct:.3},\n"));
    out.push_str("  \"algorithms\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let feasible = match row.feasible {
            Some(true) => "true",
            Some(false) => "false",
            None => "null",
        };
        out.push_str(&format!(
            "    {{\"algo\": \"{}\", \"decisions_per_sec\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"feasible\": {}}}{}\n",
            row.algo,
            row.decisions_per_sec,
            row.p50_ms,
            row.p99_ms,
            feasible,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"triggers\": [\n");
    for (i, row) in triggers.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"combo\": \"{}\", \"spec\": \"{}\", \"decisions_per_sec\": {:.1}, \"accuracy\": {:.4}, \"earliness\": {:.4}, \"earliness_delta\": {:.4}, \"harmonic_mean\": {:.4}}}{}\n",
            row.combo,
            row.spec,
            row.decisions_per_sec,
            row.accuracy,
            row.earliness,
            row.earliness_delta,
            row.harmonic_mean,
            if i + 1 < triggers.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]");
    out.push_str(&tail);
    out.push_str("\n}\n");
    std::fs::write(&path, out).expect("baseline file writable");
    eprintln!("wrote baseline: {path}");
}

/// The trigger corpus the bench sweeps per base: the fixed-threshold
/// baseline first (deltas are computed against it), then one spec from
/// each remaining family.
const TRIGGER_SPECS: [&str; 4] = [
    "threshold:0.8",
    "patience:k=2,threshold=0.7",
    "cost:0.05",
    "calibrated:cal=platt,threshold=0.7",
];

/// Fits, persists, and replays every (base × trigger) combination,
/// benching the replay and collecting the `"triggers"` baseline rows.
fn trigger_benches(
    group: &mut criterion::BenchmarkGroup,
    data: &etsc_data::Dataset,
    config: &RunConfig,
    obs_freq: f64,
) -> Vec<TriggerRow> {
    let mut rows = Vec::new();
    for base in [TriggeredBase::MiniRocket, TriggeredBase::Weasel] {
        let mut baseline_earliness = None;
        for text in TRIGGER_SPECS {
            let spec = TriggerSpec::parse(text).expect("bench spec parses");
            let Ok(stored) = fit_triggered_model(base, &spec, data, config) else {
                continue; // DNF under the tight budget: nothing to serve
            };
            // Round-trip through the store, like the algorithm rows: a
            // real serving process replays the decoded artifact.
            let bytes = stored.to_bytes().expect("persistable model");
            let loaded = StoredModel::from_bytes(&bytes).expect("own bytes decode");
            let options = ReplayOptions {
                obs_frequency_secs: obs_freq,
                batch: loaded.meta.decision_batch(data.max_len(), config),
                scheduler: SchedulerConfig::default(),
            };
            let combo = format!("{}+{}", base.name(), spec.kind.name());
            group.bench_with_input(BenchmarkId::new(&combo, "PowerCons"), data, |b, data| {
                b.iter(|| black_box(replay_dataset(&loaded, data, &options).expect("replay runs")));
            });
            let outcome = replay_dataset(&loaded, data, &options).expect("replay runs");
            let delta = match baseline_earliness {
                Some(b) => outcome.earliness - b,
                None => {
                    baseline_earliness = Some(outcome.earliness);
                    0.0
                }
            };
            eprintln!(
                "{:<22} {:>8.0} decisions/s  acc {:.4}  earliness {:.4} ({:+.4} vs threshold)  hm {:.4}",
                combo,
                outcome.decisions_per_sec,
                outcome.accuracy,
                outcome.earliness,
                delta,
                harmonic_mean(outcome.accuracy, outcome.earliness),
            );
            rows.push(TriggerRow {
                combo,
                spec: spec.canonical(),
                decisions_per_sec: outcome.decisions_per_sec,
                accuracy: outcome.accuracy,
                earliness: outcome.earliness,
                earliness_delta: delta,
                harmonic_mean: harmonic_mean(outcome.accuracy, outcome.earliness),
            });
        }
    }
    rows
}

fn streaming_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_serve");
    group.sample_size(10);
    let config = RunConfig::fast();
    let ds = PaperDataset::PowerCons;
    let data = ds.generate(ScalePreset::Quick.options(ds, 11));
    let obs_freq = ds.spec().obs_frequency_secs;
    let mut rows = Vec::new();
    let mut overhead_probe = None;
    for algo in AlgoSpec::ALL {
        let Ok(stored) = fit_model(algo, &data, &config) else {
            continue; // DNF under the tight budget: nothing to serve
        };
        // Round-trip through the store: serve the decoded artifact.
        let bytes = stored.to_bytes().expect("persistable model");
        let loaded = StoredModel::from_bytes(&bytes).expect("own bytes decode");
        let options = ReplayOptions {
            obs_frequency_secs: obs_freq,
            batch: algo.decision_batch(data.max_len(), &config),
            scheduler: SchedulerConfig::default(),
        };
        group.bench_with_input(
            BenchmarkId::new(algo.name(), "PowerCons"),
            &data,
            |b, data| {
                b.iter(|| black_box(replay_dataset(&loaded, data, &options).expect("replay runs")));
            },
        );
        // Post-bench cross-check: the live verdict and the offline
        // heatmap verdict agree when fed the same measured latency.
        let outcome = replay_dataset(&loaded, &data, &options).expect("replay runs");
        let offline = online_cell(
            &RunResult {
                algo,
                dataset: data.name().to_owned(),
                metrics: None,
                train_secs: 0.0,
                test_secs_per_instance: outcome.mean_latency_secs,
                dnf: false,
            },
            obs_freq,
            data.max_len(),
            &config,
        );
        assert_eq!(outcome.feasible(), Some(offline.feasible()));
        rows.push(BaselineRow {
            algo: algo.name(),
            decisions_per_sec: outcome.decisions_per_sec,
            p50_ms: outcome.p50_latency_secs * 1000.0,
            p99_ms: outcome.p99_latency_secs * 1000.0,
            feasible: outcome.feasible(),
        });
        // Tracer-overhead probe (acceptance: ≤ 3%): replay the first
        // servable model with a fully enabled Obs context and with the
        // disabled default, and compare wall-clock totals.
        if overhead_probe.is_none() {
            // A single Quick replay finishes in ~3 ms, where the fixed
            // per-run cost of a fresh tracer would swamp the per-
            // decision cost actually being probed; replicate the
            // instances 4x so the probe serves a session count closer
            // to a real serving window.
            let indices: Vec<usize> = (0..data.len()).cycle().take(4 * data.len()).collect();
            let probe_data = data.subset(&indices);
            // Traced and untraced replays interleave one-by-one in
            // alternating (ABBA) order, so machine drift at any
            // timescale longer than a single ~10 ms replay cancels out
            // of the summed totals instead of biasing one side.
            // Median of per-pair ratios, not ratio of sums: a single
            // OS preemption inside one ~10 ms replay would dominate a
            // summed total, while the median shrugs off any minority
            // of poisoned pairs.
            const PAIRS: usize = 100;
            timed_replays(&loaded, &probe_data, &options, true, 4); // warm-up
            let mut ratios = Vec::with_capacity(PAIRS);
            for i in 0..PAIRS {
                let (base, traced) = if i % 2 == 0 {
                    let base = timed_replays(&loaded, &probe_data, &options, false, 1);
                    let traced = timed_replays(&loaded, &probe_data, &options, true, 1);
                    (base, traced)
                } else {
                    let traced = timed_replays(&loaded, &probe_data, &options, true, 1);
                    let base = timed_replays(&loaded, &probe_data, &options, false, 1);
                    (base, traced)
                };
                ratios.push(traced / base);
            }
            ratios.sort_by(|a, b| a.total_cmp(b));
            let median = (ratios[PAIRS / 2 - 1] + ratios[PAIRS / 2]) / 2.0;
            let pct = (median - 1.0) * 100.0;
            eprintln!(
                "tracer overhead: {pct:+.2}% (median of {PAIRS} interleaved \
                 traced/untraced replay pairs)"
            );
            overhead_probe = Some(pct);
        }
        eprintln!(
            "{:<9} {:>8.0} decisions/s  p50 {:>8.4} ms  p99 {:>8.4} ms  ratio {:>10.4e} ({})",
            algo.name(),
            outcome.decisions_per_sec,
            outcome.p50_latency_secs * 1000.0,
            outcome.p99_latency_secs * 1000.0,
            outcome.measured_ratio.unwrap_or(f64::NAN),
            if outcome.feasible() == Some(true) {
                "feasible"
            } else {
                "infeasible"
            },
        );
    }
    let trigger_rows = trigger_benches(&mut group, &data, &config, obs_freq);
    group.finish();
    write_baseline(&rows, &trigger_rows, overhead_probe.unwrap_or(f64::NAN));
}

criterion_group!(benches, streaming_benches);
criterion_main!(benches);
