//! Streaming-service benchmarks: decisions/sec and p50/p99 decision
//! latency for every algorithm served through `etsc-serve`'s scheduler,
//! cross-checked against the offline Figure-13 cell.
//!
//! Each algorithm is trained once, persisted through the model store
//! (so the bench exercises the loaded artifact, like a real serving
//! process would), then replayed as concurrent sessions. After the
//! timed section the measured ratio is compared against
//! `etsc_eval::online::online_cell` fed with the same measured
//! latency — the two verdicts must agree by construction, and the
//! printout makes the measured numbers visible in CI logs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use etsc_bench::ScalePreset;
use etsc_datasets::PaperDataset;
use etsc_eval::experiment::{AlgoSpec, RunConfig, RunResult};
use etsc_eval::online::online_cell;
use etsc_serve::{fit_model, replay_dataset, ReplayOptions, SchedulerConfig, StoredModel};

fn streaming_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_serve");
    group.sample_size(10);
    let config = RunConfig::fast();
    let ds = PaperDataset::PowerCons;
    let data = ds.generate(ScalePreset::Quick.options(ds, 11));
    let obs_freq = ds.spec().obs_frequency_secs;
    for algo in AlgoSpec::ALL {
        let Ok(stored) = fit_model(algo, &data, &config) else {
            continue; // DNF under the tight budget: nothing to serve
        };
        // Round-trip through the store: serve the decoded artifact.
        let bytes = stored.to_bytes().expect("persistable model");
        let loaded = StoredModel::from_bytes(&bytes).expect("own bytes decode");
        let options = ReplayOptions {
            obs_frequency_secs: obs_freq,
            batch: algo.decision_batch(data.max_len(), &config),
            scheduler: SchedulerConfig::default(),
        };
        group.bench_with_input(
            BenchmarkId::new(algo.name(), "PowerCons"),
            &data,
            |b, data| {
                b.iter(|| black_box(replay_dataset(&loaded, data, &options).expect("replay runs")));
            },
        );
        // Post-bench cross-check: the live verdict and the offline
        // heatmap verdict agree when fed the same measured latency.
        let outcome = replay_dataset(&loaded, &data, &options).expect("replay runs");
        let offline = online_cell(
            &RunResult {
                algo,
                dataset: data.name().to_owned(),
                metrics: None,
                train_secs: 0.0,
                test_secs_per_instance: outcome.mean_latency_secs,
                dnf: false,
            },
            obs_freq,
            data.max_len(),
            &config,
        );
        assert_eq!(outcome.feasible(), Some(offline.feasible()));
        eprintln!(
            "{:<9} {:>8.0} decisions/s  p50 {:>8.4} ms  p99 {:>8.4} ms  ratio {:>10.4e} ({})",
            algo.name(),
            outcome.decisions_per_sec,
            outcome.p50_latency_secs * 1000.0,
            outcome.p99_latency_secs * 1000.0,
            outcome.measured_ratio.unwrap_or(f64::NAN),
            if outcome.feasible() == Some(true) {
                "feasible"
            } else {
                "infeasible"
            },
        );
    }
    group.finish();
}

criterion_group!(benches, streaming_benches);
criterion_main!(benches);
