//! Figure 12 (training times): criterion benchmarks of each algorithm's
//! `fit` on a representative small dataset per category archetype.
//!
//! The reproduce binary (`reproduce fig12`) regenerates the full
//! category × algorithm table; these benches measure the per-algorithm
//! training cost precisely on fixed inputs so relative ordering
//! (S-WEASEL fastest, ECO-K cheap, ECEC/EDSC expensive, S-MLSTM slow)
//! can be compared against the paper's Figure 12.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use etsc_bench::ScalePreset;
use etsc_datasets::PaperDataset;
use etsc_eval::experiment::{AlgoSpec, RunConfig};

fn train_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_train");
    group.sample_size(10);
    let config = RunConfig::fast();
    // One small and one "wide-ish" dataset to expose the L-dependence.
    let cases = [
        (PaperDataset::PowerCons, "PowerCons"),
        (PaperDataset::HouseTwenty, "HouseTwenty"),
    ];
    for (ds, ds_name) in cases {
        let data = ds.generate(ScalePreset::Quick.options(ds, 7));
        for algo in [
            AlgoSpec::EcoK,
            AlgoSpec::Ects,
            AlgoSpec::Edsc,
            AlgoSpec::Teaser,
            AlgoSpec::SWeasel,
            AlgoSpec::SMini,
        ] {
            group.bench_with_input(BenchmarkId::new(algo.name(), ds_name), &data, |b, data| {
                b.iter(|| {
                    let mut clf = algo.build(data, &config);
                    // EDSC may DNF under a tight budget; both outcomes
                    // are valid costs to measure.
                    let _ = black_box(clf.fit(data));
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, train_benches);
criterion_main!(benches);
