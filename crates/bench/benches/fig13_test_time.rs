//! Figure 13 (online feasibility): criterion benchmarks of the
//! per-instance early-prediction latency — the numerator of the paper's
//! testing-time/observation-frequency ratio.
//!
//! EDSC's distance checks should be the cheapest by far (the paper
//! measures 0.003 s average); the WEASEL-based methods pay the bag
//! transform at every evaluated prefix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use etsc_bench::ScalePreset;
use etsc_datasets::PaperDataset;
use etsc_eval::experiment::{AlgoSpec, RunConfig};

fn test_time_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_predict");
    group.sample_size(10);
    let config = RunConfig::fast();
    let ds = PaperDataset::PowerCons;
    let data = ds.generate(ScalePreset::Quick.options(ds, 11));
    for algo in [
        AlgoSpec::EcoK,
        AlgoSpec::Ects,
        AlgoSpec::Edsc,
        AlgoSpec::Teaser,
        AlgoSpec::Ecec,
        AlgoSpec::SWeasel,
        AlgoSpec::SMini,
    ] {
        let mut clf = algo.build(&data, &config);
        if clf.fit(&data).is_err() {
            continue; // DNF under the tight budget: nothing to measure
        }
        let instance = data.instance(0).clone();
        group.bench_with_input(
            BenchmarkId::new(algo.name(), "PowerCons"),
            &instance,
            |b, inst| {
                b.iter(|| black_box(clf.predict_early(inst).expect("fitted model predicts")));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, test_time_benches);
criterion_main!(benches);
