//! `ablation` — targeted studies of the design choices the paper's
//! analysis calls out (and its stated future work):
//!
//! * `teaser-master`  — TEASER with vs without its one-class-SVM master
//!   (Section 6.2.3 credits the master for TEASER beating S-WEASEL);
//! * `teaser-znorm`   — the z-normalisation the paper removes
//!   (Section 6.3 reports a ~5% gap vs the original TEASER);
//! * `strut-search`   — STRUT's exhaustive / fixed-grid / binary-search
//!   truncation strategies (Section 4's "faster approximation");
//! * `ecec-alpha`     — ECEC's accuracy/earliness trade-off parameter α;
//! * `voting-schemes` — the Section 7 future-work item: alternative
//!   voting schemes for univariate algorithms on multivariate data;
//! * `tsmote`         — T-SMOTE-style oversampling of imbalanced
//!   training folds (another Section 7 item);
//! * `all`            — everything above.
//!
//! ```text
//! ablation <study> [--seed N]
//! ```

use std::time::Instant;

use etsc_core::{
    EarlyClassifier, Ecec, EcecConfig, Ects, EctsConfig, Strut, StrutConfig, Teaser, TeaserConfig,
    TruncationSearch, VotingAdapter, VotingScheme,
};
use etsc_data::{Dataset, StratifiedKFold};
use etsc_datasets::{GenOptions, PaperDataset};
use etsc_eval::metrics::{EvalOutcome, Metrics};

fn dataset(ds: PaperDataset, seed: u64) -> Dataset {
    let spec = ds.spec();
    ds.generate(GenOptions {
        height_scale: (120.0 / spec.height as f64).min(1.0),
        length_scale: (64.0 / spec.length as f64).min(1.0),
        seed,
    })
}

/// 3-fold CV of an algorithm factory; returns (metrics, train seconds).
fn evaluate(
    data: &Dataset,
    seed: u64,
    mut make: impl FnMut() -> Box<dyn EarlyClassifier>,
) -> (Metrics, f64) {
    let folds = StratifiedKFold::new(3, seed)
        .expect("valid folds")
        .split(data)
        .expect("splittable");
    let mut outcomes = Vec::new();
    let mut train_secs = 0.0;
    for fold in &folds {
        let train = data.subset(&fold.train);
        let mut clf = make();
        let t0 = Instant::now();
        clf.fit(&train).expect("training succeeds");
        train_secs += t0.elapsed().as_secs_f64();
        for &i in &fold.test {
            let inst = data.instance(i);
            let p = clf.predict_early(inst).expect("prediction succeeds");
            outcomes.push(EvalOutcome {
                truth: data.label(i),
                predicted: p.label,
                prefix_len: p.prefix_len,
                full_len: inst.len(),
            });
        }
    }
    (
        Metrics::compute(&outcomes, data.n_classes()),
        train_secs / folds.len() as f64,
    )
}

fn row(label: &str, m: &Metrics, train_secs: f64) {
    println!(
        "{label:<28}{:>9.3}{:>9.3}{:>11.3}{:>9.3}{:>11.2}",
        m.accuracy, m.f1, m.earliness, m.harmonic_mean, train_secs
    );
}

fn header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:<28}{:>9}{:>9}{:>11}{:>9}{:>11}",
        "Variant", "Acc", "F1", "Earliness", "HM", "Train (s)"
    );
}

fn teaser_master(seed: u64) {
    header("TEASER with vs without the one-class-SVM master");
    for ds in [
        PaperDataset::PowerCons,
        PaperDataset::DodgerLoopGame,
        PaperDataset::Plaid,
    ] {
        let data = dataset(ds, seed);
        for use_master in [true, false] {
            let (m, t) = evaluate(&data, seed, || {
                Box::new(Teaser::new(TeaserConfig {
                    s_prefixes: 8,
                    use_master,
                    ..TeaserConfig::default()
                }))
            });
            let label = format!(
                "{} / {}",
                ds.spec().name,
                if use_master { "master" } else { "no-master" }
            );
            row(&label, &m, t);
        }
    }
}

fn teaser_znorm(seed: u64) {
    header("TEASER z-normalisation (paper removes it for streaming)");
    for ds in [PaperDataset::PowerCons, PaperDataset::HouseTwenty] {
        let data = dataset(ds, seed);
        for z in [false, true] {
            let (m, t) = evaluate(&data, seed, || {
                Box::new(Teaser::new(TeaserConfig {
                    s_prefixes: 8,
                    z_normalize: z,
                    ..TeaserConfig::default()
                }))
            });
            let label = format!("{} / {}", ds.spec().name, if z { "z-norm" } else { "raw" });
            row(&label, &m, t);
        }
    }
}

fn strut_search(seed: u64) {
    header("STRUT truncation-search strategies (S-WEASEL)");
    let data = dataset(PaperDataset::PowerCons, seed);
    let strategies: [(&str, TruncationSearch); 3] = [
        (
            "exhaustive (step 4)",
            TruncationSearch::Exhaustive { step: 4 },
        ),
        (
            "fixed grid (paper)",
            TruncationSearch::FixedGrid(vec![0.05, 0.2, 0.4, 0.6, 0.8, 1.0]),
        ),
        (
            "binary search",
            TruncationSearch::BinarySearch { tolerance: 0.03 },
        ),
    ];
    for (name, search) in strategies {
        let s = search.clone();
        let (m, t) = evaluate(&data, seed, move || {
            Box::new(Strut::s_weasel_with(
                StrutConfig {
                    search: s.clone(),
                    ..StrutConfig::default()
                },
                Default::default(),
            ))
        });
        row(name, &m, t);
    }
}

fn ecec_alpha(seed: u64) {
    header("ECEC accuracy/earliness trade-off (alpha sweep)");
    let data = dataset(PaperDataset::DodgerLoopGame, seed);
    for alpha in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let (m, t) = evaluate(&data, seed, move || {
            Box::new(Ecec::new(EcecConfig {
                n_prefixes: 8,
                cv_folds: 3,
                alpha,
                ..EcecConfig::default()
            }))
        });
        row(&format!("alpha = {alpha}"), &m, t);
    }
}

fn tsmote(seed: u64) {
    header("T-SMOTE oversampling on imbalanced datasets (ECTS voting)");
    use etsc_data::augment::{tsmote_oversample, TsmoteConfig};
    for ds in [PaperDataset::Biological, PaperDataset::DodgerLoopWeekend] {
        let data = dataset(ds, seed);
        for oversample in [false, true] {
            let (m, t) = {
                // Oversampling must only touch the training folds.
                let folds = StratifiedKFold::new(3, seed)
                    .expect("valid folds")
                    .split(&data)
                    .expect("splittable");
                let mut outcomes = Vec::new();
                let mut train_secs = 0.0;
                for fold in &folds {
                    let mut train = data.subset(&fold.train);
                    if oversample {
                        train = tsmote_oversample(&train, &TsmoteConfig::default())
                            .expect("oversampling succeeds");
                    }
                    let mut clf: Box<dyn EarlyClassifier> = if data.vars() > 1 {
                        Box::new(VotingAdapter::new(|| Ects::new(EctsConfig { support: 0 })))
                    } else {
                        Box::new(Ects::new(EctsConfig { support: 0 }))
                    };
                    let t0 = Instant::now();
                    clf.fit(&train).expect("training succeeds");
                    train_secs += t0.elapsed().as_secs_f64();
                    for &i in &fold.test {
                        let inst = data.instance(i);
                        let p = clf.predict_early(inst).expect("prediction succeeds");
                        outcomes.push(etsc_eval::metrics::EvalOutcome {
                            truth: data.label(i),
                            predicted: p.label,
                            prefix_len: p.prefix_len,
                            full_len: inst.len(),
                        });
                    }
                }
                (
                    Metrics::compute(&outcomes, data.n_classes()),
                    train_secs / folds.len() as f64,
                )
            };
            let label = format!(
                "{} / {}",
                ds.spec().name,
                if oversample { "t-smote" } else { "original" }
            );
            row(&label, &m, t);
        }
    }
}

fn voting_schemes(seed: u64) {
    header("Voting schemes for univariate ECTS on multivariate data");
    for ds in [PaperDataset::BasicMotions, PaperDataset::Biological] {
        let data = dataset(ds, seed);
        for scheme in [
            VotingScheme::Majority,
            VotingScheme::Earliest,
            VotingScheme::WeightedAccuracy,
        ] {
            let (m, t) = evaluate(&data, seed, move || {
                Box::new(VotingAdapter::with_scheme(
                    || Ects::new(EctsConfig { support: 0 }),
                    scheme,
                ))
            });
            row(&format!("{} / {}", ds.spec().name, scheme.name()), &m, t);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let study = args.next().unwrap_or_else(|| "all".into());
    let mut seed = 2024u64;
    while let Some(flag) = args.next() {
        if flag == "--seed" {
            seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed);
        }
    }
    match study.as_str() {
        "teaser-master" => teaser_master(seed),
        "teaser-znorm" => teaser_znorm(seed),
        "strut-search" => strut_search(seed),
        "ecec-alpha" => ecec_alpha(seed),
        "voting-schemes" => voting_schemes(seed),
        "tsmote" => tsmote(seed),
        "all" => {
            teaser_master(seed);
            teaser_znorm(seed);
            strut_search(seed);
            ecec_alpha(seed);
            voting_schemes(seed);
            tsmote(seed);
        }
        other => {
            eprintln!("unknown study {other:?}");
            eprintln!("studies: teaser-master teaser-znorm strut-search ecec-alpha voting-schemes tsmote all");
            std::process::exit(2);
        }
    }
}
