//! `loadgen` — drive a streaming inference server over real sockets
//! and measure what the network edge costs.
//!
//! Two modes:
//!
//! * **Self-hosted** (default): for each requested algorithm, fit a
//!   model on the chosen dataset, bind an `etsc-net` server on an
//!   ephemeral loopback port, replay the dataset as streaming sessions
//!   through `run_loadgen`, then drain the server gracefully and check
//!   that nothing leaked. The measured decisions/sec and end-to-end
//!   p50/p99 are merged into `BENCH_baseline.json` as a `"network"`
//!   section, next to the in-process numbers from the `streaming`
//!   bench (override the path with `BENCH_BASELINE_PATH`).
//! * **External** (`--connect ADDR`): replay against an already
//!   running server — e.g. one started with `etsc serve --model M
//!   --listen ADDR` — and report; with `--shutdown` the run finishes
//!   by requesting a graceful drain. This is the CI smoke path.
//! * **Fleet** (`--shards N`, N ≥ 2): fit one model, replicate it
//!   through the versioned store, stand up N shard servers behind a
//!   session-affine router, and replay through the whole stack while
//!   the fault plan (default: a seeded `kill-shard=1`) kills a shard
//!   mid-stream. Per-shard balance, migrated-session counts, and the
//!   measured failover recovery time are merged into
//!   `BENCH_baseline.json` as a `"fleet"` section.
//!
//! ```text
//! loadgen [--algo NAME|all] [--dataset NAME] [--sessions N]
//!         [--connections N] [--rate ROWS_PER_SEC] [--min-secs S]
//!         [--faults SPEC] [--connect ADDR] [--shutdown] [--shards N]
//! ```
//!
//! Exits non-zero if any run drops a session, hits an unexpected
//! error, or leaves sessions open server-side.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use etsc_bench::ScalePreset;
use etsc_data::Dataset;
use etsc_datasets::PaperDataset;
use etsc_eval::experiment::{AlgoSpec, RunConfig};
use etsc_eval::FaultPlan;
use etsc_net::{
    run_fleet, run_loadgen, ClientConfig, FleetOptions, FleetReport, LoadReport, LoadgenOptions,
    NetServer, ServerConfig,
};
use etsc_obs::Histogram;
use etsc_serve::{fit_model, replicate, StoredModel};

struct Args {
    algos: Vec<AlgoSpec>,
    dataset: PaperDataset,
    sessions: usize,
    connections: usize,
    rate: f64,
    min_secs: f64,
    faults: Option<FaultPlan>,
    connect: Option<String>,
    shutdown: bool,
    shards: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut flags: HashMap<String, String> = HashMap::new();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {flag:?}"))?;
        if name == "shutdown" {
            flags.insert(name.to_owned(), "true".to_owned());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_owned(), value.clone());
    }
    let algos = match flags.get("algo").map(String::as_str) {
        None | Some("all") => AlgoSpec::ALL.to_vec(),
        Some(name) => {
            vec![AlgoSpec::by_name(name).ok_or_else(|| format!("unknown algorithm {name:?}"))?]
        }
    };
    let dataset_name = flags.get("dataset").map_or("PowerCons", String::as_str);
    let dataset = PaperDataset::by_name(dataset_name)
        .ok_or_else(|| format!("unknown dataset {dataset_name:?}"))?;
    let num = |name: &str, default: f64| -> Result<f64, String> {
        match flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid --{name} value {v:?}")),
        }
    };
    let faults = match flags.get("faults") {
        None => None,
        Some(spec) => Some(FaultPlan::parse(spec).map_err(|e| format!("invalid --faults: {e}"))?),
    };
    Ok(Args {
        algos,
        dataset,
        sessions: num("sessions", 100.0)? as usize,
        connections: num("connections", 4.0)? as usize,
        rate: num("rate", 0.0)?,
        min_secs: num("min-secs", 0.0)?,
        faults,
        connect: flags.get("connect").cloned(),
        shutdown: flags.contains_key("shutdown"),
        shards: num("shards", 0.0)? as usize,
    })
}

/// Accumulated numbers for one algorithm across repeated runs.
struct NetRow {
    algo: String,
    decided: usize,
    degraded: usize,
    failed: usize,
    disconnected: usize,
    dropped: usize,
    reconnects: u64,
    rows_sent: u64,
    wall: Duration,
    latency: Histogram,
    errors: Vec<String>,
}

impl NetRow {
    fn new(algo: &str) -> NetRow {
        NetRow {
            algo: algo.to_owned(),
            decided: 0,
            degraded: 0,
            failed: 0,
            disconnected: 0,
            dropped: 0,
            reconnects: 0,
            rows_sent: 0,
            wall: Duration::ZERO,
            latency: Histogram::default(),
            errors: Vec::new(),
        }
    }

    fn absorb(&mut self, r: &LoadReport) {
        self.decided += r.decided;
        self.degraded += r.degraded;
        self.failed += r.failed;
        self.disconnected += r.disconnected;
        self.dropped += r.dropped;
        self.reconnects += r.reconnects;
        self.rows_sent += r.rows_sent;
        self.wall += r.wall;
        self.latency.merge(&r.latency);
        self.errors.extend(r.errors.iter().cloned());
    }

    fn decisions_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.decided as f64 / secs
        } else {
            0.0
        }
    }

    fn p50_ms(&self) -> f64 {
        self.latency.clone().p50().unwrap_or(0.0) * 1e3
    }

    fn p99_ms(&self) -> f64 {
        self.latency.clone().p99().unwrap_or(0.0) * 1e3
    }

    fn clean(&self) -> bool {
        self.dropped == 0 && self.errors.is_empty()
    }

    fn render(&self) -> String {
        format!(
            "{:<9} net {:>8.0} decisions/s  p50 {:>7.3} ms  p99 {:>7.3} ms  \
             {} decided ({} degraded, {} failed, {} disconnected, {} dropped) \
             {} rows in {:.2} s",
            self.algo,
            self.decisions_per_sec(),
            self.p50_ms(),
            self.p99_ms(),
            self.decided,
            self.degraded,
            self.failed,
            self.disconnected,
            self.dropped,
            self.rows_sent,
            self.wall.as_secs_f64(),
        )
    }
}

/// Repeats `run_loadgen` until the accumulated wall-clock crosses
/// `min_secs` (at least once), folding every run into one row.
fn run_until(addr: &str, data: &Dataset, opts: &LoadgenOptions, min_secs: f64, row: &mut NetRow) {
    let started = Instant::now();
    loop {
        let report = run_loadgen(addr, data, opts);
        row.absorb(&report);
        if !report.clean() || started.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
}

/// The baseline file split into its measured sections. The file is
/// plain hand-rolled JSON (the workspace carries no JSON dependency),
/// so the split is string surgery anchored on the section keys this
/// binary itself appends — always in `network`, `fleet` order.
struct Baseline {
    path: String,
    prefix: String,
    network: Option<String>,
    fleet: Option<String>,
}

impl Baseline {
    fn load() -> Baseline {
        let path = std::env::var("BENCH_BASELINE_PATH").unwrap_or_else(|_| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json").into()
        });
        let (prefix, network, fleet) = match std::fs::read_to_string(&path) {
            Ok(text) => {
                let mut base = text.trim_end().to_owned();
                if base.ends_with('}') {
                    base.pop(); // the file's closing brace
                    base.truncate(base.trim_end().len());
                }
                let fleet = base.find(",\n  \"fleet\"").map(|i| base.split_off(i));
                let network = base.find(",\n  \"network\"").map(|i| base.split_off(i));
                (base, network, fleet)
            }
            Err(_) => (
                String::from("{\n  \"bench\": \"streaming_serve\""),
                None,
                None,
            ),
        };
        Baseline {
            path,
            prefix,
            network,
            fleet,
        }
    }

    fn store(self) {
        let mut out = self.prefix;
        if let Some(s) = self.network {
            out.push_str(&s);
        }
        if let Some(s) = self.fleet {
            out.push_str(&s);
        }
        out.push_str("\n}\n");
        std::fs::write(&self.path, out).expect("baseline file writable");
    }
}

/// Merges the measured rows into `BENCH_baseline.json` as a
/// `"network"` section, replacing any previous one and preserving a
/// `"fleet"` section if present.
fn merge_baseline(rows: &[NetRow], connections: usize, sessions: usize) {
    let mut baseline = Baseline::load();
    let mut s = String::from(",\n  \"network\": {\n");
    s.push_str("    \"transport\": \"tcp-loopback\",\n");
    s.push_str(&format!("    \"connections\": {connections},\n"));
    s.push_str(&format!("    \"sessions\": {sessions},\n"));
    s.push_str("    \"algorithms\": [\n");
    for (i, row) in rows.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"algo\": \"{}\", \"decisions_per_sec\": {:.1}, \"p50_ms\": {:.4}, \
             \"p99_ms\": {:.4}, \"degraded\": {}, \"dropped\": {}}}{}\n",
            row.algo,
            row.decisions_per_sec(),
            row.p50_ms(),
            row.p99_ms(),
            row.degraded,
            row.dropped,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("    ]\n  }");
    let path = baseline.path.clone();
    baseline.network = Some(s);
    baseline.store();
    eprintln!("merged network section into {path}");
}

/// Merges a fleet run into `BENCH_baseline.json` as a `"fleet"`
/// section: per-shard balance, migration counts, and the measured
/// failover recovery time.
fn merge_fleet_baseline(report: &FleetReport, algo: &str, plan: &FaultPlan, connections: usize) {
    let mut baseline = Baseline::load();
    let r = &report.router;
    let balance: Vec<String> = report.balance().iter().map(u64::to_string).collect();
    let mut s = String::from(",\n  \"fleet\": {\n");
    s.push_str("    \"transport\": \"tcp-loopback-router\",\n");
    s.push_str(&format!("    \"shards\": {},\n", report.shards.len()));
    s.push_str(&format!("    \"connections\": {connections},\n"));
    s.push_str(&format!("    \"sessions\": {},\n", report.load.sessions));
    s.push_str(&format!("    \"algo\": \"{algo}\",\n"));
    s.push_str(&format!("    \"faults\": \"{}\",\n", plan.render()));
    s.push_str(&format!(
        "    \"decisions_per_sec\": {:.1},\n",
        report.load.decisions_per_sec()
    ));
    s.push_str(&format!(
        "    \"p50_ms\": {:.4},\n    \"p99_ms\": {:.4},\n",
        report.load.latency.clone().p50().unwrap_or(0.0) * 1e3,
        report.load.latency.clone().p99().unwrap_or(0.0) * 1e3,
    ));
    s.push_str(&format!("    \"balance\": [{}],\n", balance.join(", ")));
    s.push_str(&format!(
        "    \"migrated_sessions\": {},\n    \"handoffs\": {},\n",
        r.sessions_migrated, r.handoffs_sent
    ));
    s.push_str(&format!(
        "    \"failovers\": {},\n    \"failover_recovery_ms\": {:.3},\n",
        r.failovers,
        report.failover_ms()
    ));
    s.push_str(&format!(
        "    \"planned_drains\": {},\n    \"dropped\": {}\n",
        r.planned_drains, report.load.dropped
    ));
    s.push_str("  }");
    let path = baseline.path.clone();
    baseline.fleet = Some(s);
    baseline.store();
    eprintln!("merged fleet section into {path}");
}

/// Fleet mode: fit one model, fan it out through the versioned store
/// (save + replicate + load per shard), stand up `--shards` servers
/// behind a router, and replay the dataset through the whole stack
/// while the fault plan kills a shard mid-stream. Reports per-shard
/// balance, migration counts, and measured failover recovery time,
/// and merges them into the baseline's `"fleet"` section.
fn run_fleet_mode(args: &Args, algo: AlgoSpec, data: &Dataset) -> bool {
    let stored = match fit_model(algo, data, &RunConfig::fast()) {
        Ok(stored) => stored,
        Err(e) => {
            eprintln!("error: {} does not fit: {e}", algo.name());
            return false;
        }
    };
    let dir = std::env::temp_dir().join("etsc-loadgen-fleet");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: creating model store dir: {e}");
        return false;
    }
    let paths: Vec<std::path::PathBuf> = (0..args.shards)
        .map(|i| dir.join(format!("shard{i}.model")))
        .collect();
    let models: Result<Vec<Arc<StoredModel>>, String> = (|| {
        stored.save(&paths[0]).map_err(|e| e.to_string())?;
        replicate(&paths[0], &paths[1..]).map_err(|e| e.to_string())?;
        paths
            .iter()
            .map(|p| {
                StoredModel::load(p)
                    .map(Arc::new)
                    .map_err(|e| e.to_string())
            })
            .collect()
    })();
    let models = match models {
        Ok(models) => models,
        Err(e) => {
            eprintln!("error: replicating the model store: {e}");
            return false;
        }
    };
    let plan = args.faults.clone().unwrap_or_else(|| {
        FaultPlan::parse("seed=11,kill-shard=1").expect("default fleet plan parses")
    });
    let report = run_fleet(
        &models,
        data,
        &FleetOptions {
            connections: args.connections,
            sessions: args.sessions,
            rate: args.rate,
            faults: Some(plan.clone()),
            wait_timeout: Duration::from_secs(60),
            ..FleetOptions::default()
        },
    );
    let r = &report.router;
    println!(
        "{:<9} fleet {} shards {:>8.0} decisions/s  p50 {:>7.3} ms  p99 {:>7.3} ms  \
         balance {:?}  migrated {}  failover {:.3} ms ({} episodes)  planned drains {}",
        algo.name(),
        args.shards,
        report.load.decisions_per_sec(),
        report.load.latency.clone().p50().unwrap_or(0.0) * 1e3,
        report.load.latency.clone().p99().unwrap_or(0.0) * 1e3,
        report.balance(),
        r.sessions_migrated,
        report.failover_ms(),
        r.failovers,
        r.planned_drains,
    );
    for e in &report.load.errors {
        eprintln!("error: {e}");
    }
    let mut ok = report.clean();
    for (i, shard) in report.shards.iter().enumerate() {
        if let Some(stats) = &shard.stats {
            if stats.open_sessions() != 0 {
                eprintln!("error: shard {i} leaked {} sessions", stats.open_sessions());
                ok = false;
            }
        }
    }
    if plan.kill_shard.is_some() && report.kill_step.is_none() {
        eprintln!("error: the armed shard kill never fired");
        ok = false;
    }
    if ok {
        merge_fleet_baseline(&report, algo.name(), &plan, args.connections);
    }
    ok
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let data = args
        .dataset
        .generate(ScalePreset::Quick.options(args.dataset, 11));
    let opts = LoadgenOptions {
        connections: args.connections,
        sessions: args.sessions,
        rate: args.rate,
        faults: args.faults.clone(),
        client: ClientConfig::default(),
        wait_timeout: Duration::from_secs(60),
        send_shutdown: false,
    };
    let mut ok = true;

    if args.shards >= 2 && args.connect.is_none() {
        // Fleet mode: N shards behind a router, with a seeded
        // shard-kill unless the caller armed their own plan.
        let algo = args.algos.first().copied().unwrap_or(AlgoSpec::Ects);
        ok = run_fleet_mode(&args, algo, &data);
    } else if let Some(addr) = &args.connect {
        // External mode: one server, whatever model it serves.
        let mut row = NetRow::new("remote");
        run_until(addr, &data, &opts, args.min_secs, &mut row);
        if args.shutdown {
            let drain = run_loadgen(
                addr,
                &data,
                &LoadgenOptions {
                    sessions: 1,
                    connections: 1,
                    send_shutdown: true,
                    faults: None,
                    ..opts
                },
            );
            row.absorb(&drain);
            if !drain.drained {
                eprintln!("error: server did not acknowledge the drain");
                ok = false;
            }
        }
        println!("{}", row.render());
        for e in &row.errors {
            eprintln!("error: {e}");
        }
        ok = ok && row.clean();
    } else {
        // Self-hosted mode: fit, bind, measure, drain — per algorithm.
        let config = RunConfig::fast();
        let mut rows = Vec::new();
        for algo in args.algos {
            let stored = match fit_model(algo, &data, &config) {
                Ok(stored) => Arc::new(stored),
                Err(e) => {
                    eprintln!("{:<9} skipped: {e}", algo.name());
                    continue;
                }
            };
            let server = match NetServer::bind(stored, "127.0.0.1:0", ServerConfig::default()) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("error: binding loopback for {}: {e}", algo.name());
                    ok = false;
                    continue;
                }
            };
            let addr = server.local_addr().to_string();
            let mut row = NetRow::new(algo.name());
            run_until(&addr, &data, &opts, args.min_secs, &mut row);
            server.shutdown();
            let stats = server.join();
            if stats.open_sessions() != 0 {
                eprintln!(
                    "error: {} leaked {} sessions server-side",
                    algo.name(),
                    stats.open_sessions()
                );
                ok = false;
            }
            println!("{}", row.render());
            for e in &row.errors {
                eprintln!("error: {e}");
            }
            ok = ok && row.clean();
            rows.push(row);
        }
        if rows.is_empty() {
            eprintln!("error: no algorithm produced a servable model");
            ok = false;
        } else {
            merge_baseline(&rows, args.connections, args.sessions);
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
