//! `loadgen` — drive a streaming inference server over real sockets
//! and measure what the network edge costs.
//!
//! Two modes:
//!
//! * **Self-hosted** (default): for each requested algorithm, fit a
//!   model on the chosen dataset, bind an `etsc-net` server on an
//!   ephemeral loopback port, replay the dataset as streaming sessions
//!   through `run_loadgen`, then drain the server gracefully and check
//!   that nothing leaked. The measured decisions/sec and end-to-end
//!   p50/p99 are merged into `BENCH_baseline.json` as a `"network"`
//!   section, next to the in-process numbers from the `streaming`
//!   bench (override the path with `BENCH_BASELINE_PATH`).
//! * **External** (`--connect ADDR`): replay against an already
//!   running server — e.g. one started with `etsc serve --model M
//!   --listen ADDR` — and report; with `--shutdown` the run finishes
//!   by requesting a graceful drain. This is the CI smoke path.
//! * **Fleet** (`--shards N`, N ≥ 2): fit one model, replicate it
//!   through the versioned store, stand up N shard servers behind a
//!   session-affine router, and replay through the whole stack while
//!   the fault plan (default: a seeded `kill-shard=1`) kills a shard
//!   mid-stream. Per-shard balance, migrated-session counts, and the
//!   measured failover recovery time are merged into
//!   `BENCH_baseline.json` as a `"fleet"` section.
//! * **Drift** (`--drift`): build a seeded step-drift stream over the
//!   dataset, fit the initial model on its pre-drift head, and serve it
//!   with an `etsc-adapt` [`Adapter`] wired in as the feedback sink and
//!   hot-swap hook. The loadgen replays the stream *with label
//!   feedback* while a poller thread drives refits; a second wave over
//!   the post-drift tail measures recovery on the swapped model. Drift
//!   counts, refit latency, and pre/post/recovered accuracy are merged
//!   into `BENCH_baseline.json` as an `"adapt"` section.
//! * **Overload** (`--overload`): pin the server's capacity with a
//!   seeded per-session evaluation delay, then ramp offered load past
//!   it — a sliding window of 1×, 2×, and 5× the service depth — once
//!   without admission control and once with it. Goodput, shed ratio,
//!   and p99 at every point form the goodput-vs-offered-load curve
//!   merged into `BENCH_baseline.json` as an `"overload"` section.
//!
//! ```text
//! loadgen [--algo NAME|all] [--dataset NAME] [--sessions N]
//!         [--connections N] [--rate ROWS_PER_SEC] [--batch N]
//!         [--min-secs S] [--faults SPEC] [--connect ADDR]
//!         [--shutdown] [--shards N] [--drift] [--overload]
//! ```
//!
//! Exits non-zero if any run drops a session, hits an unexpected
//! error, or leaves sessions open server-side.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use etsc_adapt::{Adapter, AdapterConfig, DetectorKind};
use etsc_bench::ScalePreset;
use etsc_data::{Dataset, DatasetBuilder, MultiSeries};
use etsc_datasets::{drift_stream, DriftKind, DriftOptions, PaperDataset};
use etsc_eval::experiment::{AlgoSpec, RunConfig};
use etsc_eval::FaultPlan;
use etsc_net::{
    run_fleet, run_loadgen, AdmissionConfig, ClientConfig, FleetOptions, FleetReport, LoadReport,
    LoadgenOptions, NetServer, ServerConfig,
};
use etsc_obs::Histogram;
use etsc_serve::{fit_model, replicate, BrownoutConfig, CodelConfig, StoredModel};

struct Args {
    algos: Vec<AlgoSpec>,
    dataset: PaperDataset,
    sessions: usize,
    connections: usize,
    rate: f64,
    batch: usize,
    min_secs: f64,
    faults: Option<FaultPlan>,
    connect: Option<String>,
    shutdown: bool,
    shards: usize,
    drift: bool,
    overload: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut flags: HashMap<String, String> = HashMap::new();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {flag:?}"))?;
        if name == "shutdown" || name == "drift" || name == "overload" {
            flags.insert(name.to_owned(), "true".to_owned());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_owned(), value.clone());
    }
    let algos = match flags.get("algo").map(String::as_str) {
        None | Some("all") => AlgoSpec::ALL.to_vec(),
        Some(name) => {
            vec![AlgoSpec::by_name(name).ok_or_else(|| format!("unknown algorithm {name:?}"))?]
        }
    };
    let dataset_name = flags.get("dataset").map_or("PowerCons", String::as_str);
    let dataset = PaperDataset::by_name(dataset_name)
        .ok_or_else(|| format!("unknown dataset {dataset_name:?}"))?;
    let num = |name: &str, default: f64| -> Result<f64, String> {
        match flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid --{name} value {v:?}")),
        }
    };
    let faults = match flags.get("faults") {
        None => None,
        Some(spec) => Some(FaultPlan::parse(spec).map_err(|e| format!("invalid --faults: {e}"))?),
    };
    Ok(Args {
        algos,
        dataset,
        sessions: num("sessions", 100.0)? as usize,
        connections: num("connections", 4.0)? as usize,
        rate: num("rate", 0.0)?,
        batch: (num("batch", 32.0)? as usize).max(1),
        min_secs: num("min-secs", 0.0)?,
        faults,
        connect: flags.get("connect").cloned(),
        shutdown: flags.contains_key("shutdown"),
        shards: num("shards", 0.0)? as usize,
        drift: flags.contains_key("drift"),
        overload: flags.contains_key("overload"),
    })
}

/// Accumulated numbers for one algorithm across repeated runs.
struct NetRow {
    algo: String,
    decided: usize,
    degraded: usize,
    failed: usize,
    disconnected: usize,
    dropped: usize,
    reconnects: u64,
    rows_sent: u64,
    wall: Duration,
    latency: Histogram,
    errors: Vec<String>,
}

impl NetRow {
    fn new(algo: &str) -> NetRow {
        NetRow {
            algo: algo.to_owned(),
            decided: 0,
            degraded: 0,
            failed: 0,
            disconnected: 0,
            dropped: 0,
            reconnects: 0,
            rows_sent: 0,
            wall: Duration::ZERO,
            latency: Histogram::default(),
            errors: Vec::new(),
        }
    }

    fn absorb(&mut self, r: &LoadReport) {
        self.decided += r.decided;
        self.degraded += r.degraded;
        self.failed += r.failed;
        self.disconnected += r.disconnected;
        self.dropped += r.dropped;
        self.reconnects += r.reconnects;
        self.rows_sent += r.rows_sent;
        self.wall += r.wall;
        self.latency.merge(&r.latency);
        self.errors.extend(r.errors.iter().cloned());
    }

    fn decisions_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.decided as f64 / secs
        } else {
            0.0
        }
    }

    fn p50_ms(&self) -> f64 {
        self.latency.clone().p50().unwrap_or(0.0) * 1e3
    }

    fn p99_ms(&self) -> f64 {
        self.latency.clone().p99().unwrap_or(0.0) * 1e3
    }

    fn clean(&self) -> bool {
        self.dropped == 0 && self.errors.is_empty()
    }

    fn render(&self) -> String {
        format!(
            "{:<9} net {:>8.0} decisions/s  p50 {:>7.3} ms  p99 {:>7.3} ms  \
             {} decided ({} degraded, {} failed, {} disconnected, {} dropped) \
             {} rows in {:.2} s",
            self.algo,
            self.decisions_per_sec(),
            self.p50_ms(),
            self.p99_ms(),
            self.decided,
            self.degraded,
            self.failed,
            self.disconnected,
            self.dropped,
            self.rows_sent,
            self.wall.as_secs_f64(),
        )
    }
}

/// Repeats `run_loadgen` until the accumulated wall-clock crosses
/// `min_secs` (at least once), folding every run into one row.
fn run_until(addr: &str, data: &Dataset, opts: &LoadgenOptions, min_secs: f64, row: &mut NetRow) {
    let started = Instant::now();
    loop {
        let report = run_loadgen(addr, data, opts);
        row.absorb(&report);
        if !report.clean() || started.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
}

/// The baseline file split into its measured sections. The file is
/// plain hand-rolled JSON (the workspace carries no JSON dependency),
/// so the split is string surgery anchored on the section keys this
/// binary itself appends — always in `network`, `fleet`, `adapt`,
/// `overload` order.
struct Baseline {
    path: String,
    prefix: String,
    network: Option<String>,
    fleet: Option<String>,
    adapt: Option<String>,
    overload: Option<String>,
}

impl Baseline {
    fn load() -> Baseline {
        let path = std::env::var("BENCH_BASELINE_PATH").unwrap_or_else(|_| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json").into()
        });
        let (prefix, network, fleet, adapt, overload) = match std::fs::read_to_string(&path) {
            Ok(text) => {
                let mut base = text.trim_end().to_owned();
                if base.ends_with('}') {
                    base.pop(); // the file's closing brace
                    base.truncate(base.trim_end().len());
                }
                // Sections split off back-to-front so each key's find
                // sees only the text before later sections.
                let overload = base.find(",\n  \"overload\"").map(|i| base.split_off(i));
                let adapt = base.find(",\n  \"adapt\"").map(|i| base.split_off(i));
                let fleet = base.find(",\n  \"fleet\"").map(|i| base.split_off(i));
                let network = base.find(",\n  \"network\"").map(|i| base.split_off(i));
                (base, network, fleet, adapt, overload)
            }
            Err(_) => (
                String::from("{\n  \"bench\": \"streaming_serve\""),
                None,
                None,
                None,
                None,
            ),
        };
        Baseline {
            path,
            prefix,
            network,
            fleet,
            adapt,
            overload,
        }
    }

    fn store(self) {
        let mut out = self.prefix;
        if let Some(s) = self.network {
            out.push_str(&s);
        }
        if let Some(s) = self.fleet {
            out.push_str(&s);
        }
        if let Some(s) = self.adapt {
            out.push_str(&s);
        }
        if let Some(s) = self.overload {
            out.push_str(&s);
        }
        out.push_str("\n}\n");
        std::fs::write(&self.path, out).expect("baseline file writable");
    }
}

/// Merges the measured rows into `BENCH_baseline.json` as a
/// `"network"` section, replacing any previous one and preserving a
/// `"fleet"` section if present.
fn merge_baseline(
    rows: &[NetRow],
    connections: usize,
    sessions: usize,
    batch: usize,
    event_loop_threads: usize,
) {
    let mut baseline = Baseline::load();
    let mut s = String::from(",\n  \"network\": {\n");
    s.push_str("    \"transport\": \"tcp-loopback\",\n");
    s.push_str(&format!("    \"connections\": {connections},\n"));
    s.push_str(&format!("    \"sessions\": {sessions},\n"));
    s.push_str(&format!("    \"batch\": {batch},\n"));
    s.push_str(&format!(
        "    \"event_loop_threads\": {event_loop_threads},\n"
    ));
    s.push_str("    \"algorithms\": [\n");
    for (i, row) in rows.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"algo\": \"{}\", \"decisions_per_sec\": {:.1}, \"p50_ms\": {:.4}, \
             \"p99_ms\": {:.4}, \"degraded\": {}, \"dropped\": {}}}{}\n",
            row.algo,
            row.decisions_per_sec(),
            row.p50_ms(),
            row.p99_ms(),
            row.degraded,
            row.dropped,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("    ]\n  }");
    let path = baseline.path.clone();
    baseline.network = Some(s);
    baseline.store();
    eprintln!("merged network section into {path}");
}

/// Merges a fleet run into `BENCH_baseline.json` as a `"fleet"`
/// section: per-shard balance, migration counts, and the measured
/// failover recovery time.
fn merge_fleet_baseline(
    report: &FleetReport,
    algo: &str,
    plan: &FaultPlan,
    connections: usize,
    batch: usize,
) {
    let mut baseline = Baseline::load();
    let r = &report.router;
    let balance: Vec<String> = report.balance().iter().map(u64::to_string).collect();
    let mut s = String::from(",\n  \"fleet\": {\n");
    s.push_str("    \"transport\": \"tcp-loopback-router\",\n");
    s.push_str(&format!("    \"shards\": {},\n", report.shards.len()));
    s.push_str(&format!("    \"connections\": {connections},\n"));
    s.push_str(&format!("    \"batch\": {batch},\n"));
    s.push_str(&format!("    \"sessions\": {},\n", report.load.sessions));
    s.push_str(&format!("    \"algo\": \"{algo}\",\n"));
    s.push_str(&format!("    \"faults\": \"{}\",\n", plan.render()));
    s.push_str(&format!(
        "    \"decisions_per_sec\": {:.1},\n",
        report.load.decisions_per_sec()
    ));
    s.push_str(&format!(
        "    \"p50_ms\": {:.4},\n    \"p99_ms\": {:.4},\n",
        report.load.latency.clone().p50().unwrap_or(0.0) * 1e3,
        report.load.latency.clone().p99().unwrap_or(0.0) * 1e3,
    ));
    s.push_str(&format!("    \"balance\": [{}],\n", balance.join(", ")));
    s.push_str(&format!(
        "    \"migrated_sessions\": {},\n    \"handoffs\": {},\n",
        r.sessions_migrated, r.handoffs_sent
    ));
    s.push_str(&format!(
        "    \"failovers\": {},\n    \"failover_recovery_ms\": {:.3},\n",
        r.failovers,
        report.failover_ms()
    ));
    s.push_str(&format!(
        "    \"planned_drains\": {},\n    \"dropped\": {}\n",
        r.planned_drains, report.load.dropped
    ));
    s.push_str("  }");
    let path = baseline.path.clone();
    baseline.fleet = Some(s);
    baseline.store();
    eprintln!("merged fleet section into {path}");
}

/// A contiguous slice of a stream as its own dataset, with the full
/// stream's class registry pre-interned so dense labels agree.
fn stream_slice(stream: &Dataset, lo: usize, hi: usize, name: &str) -> Dataset {
    let mut b = DatasetBuilder::new(name);
    for class in stream.class_names() {
        b.class(class);
    }
    for i in lo..hi {
        let inst = stream.instance(i);
        let rows: Vec<Vec<f64>> = (0..inst.vars())
            .map(|v| (0..inst.len()).map(|t| inst.at(v, t)).collect())
            .collect();
        b.push_named(
            MultiSeries::from_rows(rows).expect("stream instance re-assembles"),
            &stream.class_names()[stream.label(i)],
        );
    }
    b.build().expect("stream slice assembles")
}

/// Merges a drift run into `BENCH_baseline.json` as an `"adapt"`
/// section: adaptation activity, refit latency, and the three
/// accuracies that frame recovery (pre-drift, post-drift under the
/// initial model, post-swap on the adapted one).
#[allow(clippy::too_many_arguments)]
fn merge_adapt_baseline(
    algo: &str,
    sessions: usize,
    stats: &etsc_adapt::AdapterStats,
    pre: f64,
    post: f64,
    recovered: f64,
    refit_ms: f64,
    dropped: usize,
) {
    let mut baseline = Baseline::load();
    let mut s = String::from(",\n  \"adapt\": {\n");
    s.push_str("    \"transport\": \"tcp-loopback\",\n");
    s.push_str(&format!("    \"algo\": \"{algo}\",\n"));
    s.push_str(&format!("    \"sessions\": {sessions},\n"));
    s.push_str("    \"drift\": \"step@0.5,rotate=1\",\n");
    s.push_str(&format!(
        "    \"drifts\": {},\n    \"refits\": {},\n    \"swaps\": {},\n    \"rollbacks\": {},\n",
        stats.drifts, stats.refits, stats.swaps, stats.rollbacks
    ));
    s.push_str(&format!(
        "    \"final_generation\": {},\n",
        stats.generation
    ));
    s.push_str(&format!("    \"refit_ms\": {refit_ms:.3},\n"));
    s.push_str(&format!(
        "    \"pre_drift_accuracy\": {pre:.4},\n    \"post_drift_accuracy\": {post:.4},\n",
    ));
    s.push_str(&format!("    \"recovered_accuracy\": {recovered:.4},\n"));
    s.push_str(&format!("    \"dropped\": {dropped}\n"));
    s.push_str("  }");
    let path = baseline.path.clone();
    baseline.adapt = Some(s);
    baseline.store();
    eprintln!("merged adapt section into {path}");
}

/// Drift mode: serve an adapting model through the wire path and
/// measure what online adaptation buys. Wave 1 replays a seeded
/// step-drift stream with label feedback — the adapter's detector sees
/// the error burst, refits on its reservoir, and hot-swaps through the
/// crash-consistent store into the live server. Wave 2 replays the
/// post-drift tail against the swapped model to measure recovery.
fn run_drift_mode(args: &Args, algo: AlgoSpec) -> bool {
    let n = args.sessions.max(40);
    let stream = drift_stream(
        args.dataset,
        &DriftOptions {
            kind: DriftKind::Step { at: 0.5 },
            n,
            rotate: 1,
            gen: ScalePreset::Quick.options(args.dataset, 11),
        },
    );
    let n_train = (n * 3 / 10).max(4);
    let train = stream_slice(&stream, 0, n_train, "drift-train");
    let stored = match fit_model(algo, &train, &RunConfig::fast()) {
        Ok(stored) => Arc::new(stored),
        Err(e) => {
            eprintln!("error: {} does not fit: {e}", algo.name());
            return false;
        }
    };
    let dir = std::env::temp_dir().join("etsc-loadgen-drift");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: creating model store dir: {e}");
        return false;
    }
    let model_path = dir.join("adaptive.model");
    let adapter = Adapter::new(
        Arc::clone(&stored),
        Some(model_path),
        AdapterConfig {
            detector: DetectorKind::Ddm,
            reservoir_cap: 256,
            min_refit_examples: 24,
            rollback_window: 24,
            ..AdapterConfig::default()
        },
    );
    let server = match NetServer::bind(
        stored,
        "127.0.0.1:0",
        ServerConfig {
            feedback: Some(Arc::new(adapter.clone())),
            ..ServerConfig::default()
        },
    ) {
        Ok(server) => Arc::new(server),
        Err(e) => {
            eprintln!("error: binding loopback: {e}");
            return false;
        }
    };
    {
        let server = Arc::clone(&server);
        adapter.set_swap_hook(move |model| {
            if let Err(e) = server.reload(model) {
                eprintln!("error: hot-swap reload: {e}");
            }
        });
    }
    let addr = server.local_addr().to_string();
    let opts = LoadgenOptions {
        connections: args.connections,
        sessions: n,
        rate: args.rate,
        // Per-row frames: feedback grading wants the same cadence the
        // adapter was tuned against.
        batch: 1,
        faults: None,
        client: ClientConfig::default(),
        wait_timeout: Duration::from_secs(60),
        low_priority_share: 0.0,
        open_ahead: 0,
        feedback: true,
        send_shutdown: false,
    };

    // Wave 1: the full stream, with a poller driving refits while
    // feedback flows.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let poller = {
        let adapter = adapter.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                if let Err(e) = adapter.poll() {
                    eprintln!("error: adapter poll: {e}");
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };
    let wave1 = run_loadgen(&addr, &stream, &opts);
    // Let any drift signalled by the tail of wave 1 finish refitting
    // before recovery is measured.
    for _ in 0..200 {
        if adapter.stats().swaps >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let _ = poller.join();

    // Wave 2: the post-drift tail against the adapted model.
    let tail = stream_slice(&stream, n / 2, n, "drift-tail");
    let wave2 = run_loadgen(
        &addr,
        &tail,
        &LoadgenOptions {
            sessions: n - n / 2,
            ..opts
        },
    );
    adapter.set_swap_hook(|_| {}); // release the server handle
    let mut stopper_ok = true;
    match etsc_net::Client::connect(&addr, ClientConfig::default()) {
        Ok(mut c) => {
            let _ = c.shutdown_server();
            let _ = c.wait_drain(Duration::from_secs(10));
        }
        Err(e) => {
            eprintln!("error: drain connect: {e}");
            stopper_ok = false;
        }
    }
    let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("server handle still shared"));
    let stats = server.join();
    let a = adapter.stats();
    let pre = wave1.window_accuracy(0, n / 2).unwrap_or(0.0);
    let post = wave1.window_accuracy(n / 2, n).unwrap_or(0.0);
    let recovered = wave2.window_accuracy(0, n).unwrap_or(0.0);
    println!(
        "{:<9} drift {} sessions  drifts {}  refits {} ({:.1} ms)  swaps {}  rollbacks {}  \
         gen {}  accuracy pre {:.3} / post {:.3} / recovered {:.3}",
        algo.name(),
        n,
        a.drifts,
        a.refits,
        a.last_refit_secs * 1e3,
        a.swaps,
        a.rollbacks,
        a.generation,
        pre,
        post,
        recovered,
    );
    for e in wave1.errors.iter().chain(&wave2.errors) {
        eprintln!("error: {e}");
    }
    let mut ok = stopper_ok && wave1.clean() && wave2.clean();
    if stats.open_sessions() != 0 {
        eprintln!(
            "error: leaked {} sessions server-side",
            stats.open_sessions()
        );
        ok = false;
    }
    if a.drifts == 0 {
        eprintln!("error: the step drift was never detected");
        ok = false;
    }
    if a.swaps == 0 {
        eprintln!("error: no hot-swap was committed");
        ok = false;
    }
    if ok {
        merge_adapt_baseline(
            algo.name(),
            n,
            &a,
            pre,
            post,
            recovered,
            a.last_refit_secs * 1e3,
            wave1.dropped + wave2.dropped,
        );
    }
    ok
}

/// One measured point on the goodput-vs-offered-load curve.
struct OverloadPoint {
    /// Offered load as a multiple of the service depth (the sliding
    /// window each connection keeps in flight).
    offered: usize,
    /// Whether the server ran with admission control armed.
    admission: bool,
    report: LoadReport,
}

impl OverloadPoint {
    fn goodput(&self) -> f64 {
        self.report.decisions_per_sec()
    }

    fn shed_ratio(&self) -> f64 {
        if self.report.sessions > 0 {
            self.report.shed as f64 / self.report.sessions as f64
        } else {
            0.0
        }
    }

    fn p99_ms(&self) -> f64 {
        self.report.latency.clone().p99().unwrap_or(0.0) * 1e3
    }
}

/// Merges an overload ramp into `BENCH_baseline.json` as an
/// `"overload"` section: the calibrated capacity and, per ramp point,
/// goodput, shed ratio, and tail latency with and without admission.
fn merge_overload_baseline(
    algo: &str,
    connections: usize,
    delay_ms: u64,
    base_goodput: f64,
    points: &[OverloadPoint],
) {
    let mut baseline = Baseline::load();
    let mut s = String::from(",\n  \"overload\": {\n");
    s.push_str("    \"transport\": \"tcp-loopback\",\n");
    s.push_str(&format!("    \"algo\": \"{algo}\",\n"));
    s.push_str(&format!("    \"connections\": {connections},\n"));
    s.push_str(&format!("    \"eval_delay_ms\": {delay_ms},\n"));
    s.push_str(&format!(
        "    \"calibrated_goodput_per_sec\": {base_goodput:.1},\n"
    ));
    s.push_str("    \"ramp\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"offered_x\": {}, \"admission\": {}, \"sessions\": {}, \
             \"goodput_per_sec\": {:.1}, \"shed_ratio\": {:.4}, \"expired\": {}, \
             \"degraded\": {}, \"p99_ms\": {:.4}}}{}\n",
            p.offered,
            p.admission,
            p.report.sessions,
            p.goodput(),
            p.shed_ratio(),
            p.report.expired,
            p.report.degraded,
            p.p99_ms(),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    s.push_str("    ]\n  }");
    let path = baseline.path.clone();
    baseline.overload = Some(s);
    baseline.store();
    eprintln!("merged overload section into {path}");
}

/// Overload mode: make server capacity a known quantity by arming a
/// seeded evaluation delay on every session (the server evaluates
/// inline per connection, so capacity is `1000/delay` sessions per
/// second per connection), calibrate goodput with a closed loop of
/// depth 1, then ramp the in-flight window to 1×, 2×, and 5× that
/// depth — each point once with admission control off and once with it
/// on. Without admission the queue inflates the tail; with it the
/// CoDel/brownout ladder sheds the excess while goodput holds.
fn run_overload_mode(args: &Args, algo: AlgoSpec, data: &Dataset) -> bool {
    const DELAY_MS: u64 = 10;
    let connections = args.connections.max(1);
    let sessions = args.sessions.max(75 * connections);
    let stored = match fit_model(algo, data, &RunConfig::fast()) {
        Ok(stored) => Arc::new(stored),
        Err(e) => {
            eprintln!("error: {} does not fit: {e}", algo.name());
            return false;
        }
    };
    let plan = FaultPlan {
        seed: 11,
        delay_rate: 1.0,
        delay: Duration::from_millis(DELAY_MS),
        ..FaultPlan::default()
    };
    // Thresholds in service-time multiples: a session's own rows queue
    // behind its step-1 evaluation for up to one service time even at
    // capacity, so shedding and brownout only engage once sojourns
    // stack at least two service times deep — the curve stays clean at
    // 1× offered load and degrades progressively at 2× and 5×.
    let admission = AdmissionConfig {
        open_rate: 5000.0,
        open_burst: 200.0,
        codel: CodelConfig {
            target: Duration::from_millis(2 * DELAY_MS),
            interval: Duration::from_millis(10 * DELAY_MS),
        },
        brownout: BrownoutConfig {
            high_water: Duration::from_millis(5 * DELAY_MS / 2),
            low_water: Duration::from_millis(DELAY_MS),
            up_after: 8,
            down_after: 16,
        },
        brownout_poll: Duration::from_millis(2 * DELAY_MS),
        tightened_deadline: Duration::from_millis(5 * DELAY_MS / 2),
    };

    let mut ok = true;
    let mut run_point = |depth: usize, armed: bool| -> Option<OverloadPoint> {
        let server = match NetServer::bind(
            Arc::clone(&stored),
            "127.0.0.1:0",
            ServerConfig {
                faults: Some(plan.clone()),
                fault_horizon: sessions,
                admission: armed.then(|| admission.clone()),
                ..ServerConfig::default()
            },
        ) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("error: binding loopback: {e}");
                return None;
            }
        };
        let addr = server.local_addr().to_string();
        let report = run_loadgen(
            &addr,
            data,
            &LoadgenOptions {
                connections,
                sessions,
                rate: 0.0,
                // The windowed feed ignores batching; state it anyway.
                batch: 1,
                faults: None,
                // Budget 0: every server refusal is one client-visible
                // shed, so the curve's shed ratio is exact.
                client: ClientConfig {
                    open_retry_budget: 0,
                    ..ClientConfig::default()
                },
                wait_timeout: Duration::from_secs(60),
                low_priority_share: 0.25,
                open_ahead: depth,
                feedback: false,
                send_shutdown: true,
            },
        );
        let stats = server.join();
        if !report.accounted() || report.dropped != 0 || !report.errors.is_empty() {
            eprintln!(
                "error: overload point x{depth} admission={armed} lost sessions: \
                 {} dropped, errors: {:?}",
                report.dropped, report.errors
            );
            ok = false;
        }
        if stats.open_sessions() != 0 {
            eprintln!(
                "error: overload point x{depth} admission={armed} leaked {} sessions",
                stats.open_sessions()
            );
            ok = false;
        }
        Some(OverloadPoint {
            offered: depth,
            admission: armed,
            report,
        })
    };

    let mut points = Vec::new();
    for depth in [1usize, 2, 5] {
        for armed in [false, true] {
            match run_point(depth, armed) {
                Some(p) => points.push(p),
                None => return false,
            }
        }
    }
    // The depth-1, admission-off point is the calibrated capacity: a
    // closed loop exactly as deep as the server's service pipeline.
    let base_goodput = points[0].goodput();
    for p in &points {
        println!(
            "{:<9} overload x{} admission {:<5} goodput {:>7.1}/s ({:>5.1}% of capacity)  \
             shed {:>5.1}%  expired {:>3}  degraded {:>3}  p99 {:>8.3} ms",
            algo.name(),
            p.offered,
            p.admission,
            p.goodput(),
            if base_goodput > 0.0 {
                p.goodput() / base_goodput * 100.0
            } else {
                0.0
            },
            p.shed_ratio() * 100.0,
            p.report.expired,
            p.report.degraded,
            p.p99_ms(),
        );
    }
    // The resilience claim: at 5× offered load with admission armed,
    // goodput holds at ≥80% of calibrated capacity — shed, don't
    // collapse.
    if let Some(worst) = points.iter().find(|p| p.offered == 5 && p.admission) {
        if worst.goodput() < 0.8 * base_goodput {
            eprintln!(
                "error: goodput collapsed under 5x offered load: {:.1}/s vs {:.1}/s calibrated",
                worst.goodput(),
                base_goodput
            );
            ok = false;
        }
    }
    if ok {
        merge_overload_baseline(algo.name(), connections, DELAY_MS, base_goodput, &points);
    }
    ok
}

/// Fleet mode: fit one model, fan it out through the versioned store
/// (save + replicate + load per shard), stand up `--shards` servers
/// behind a router, and replay the dataset through the whole stack
/// while the fault plan kills a shard mid-stream. Reports per-shard
/// balance, migration counts, and measured failover recovery time,
/// and merges them into the baseline's `"fleet"` section.
fn run_fleet_mode(args: &Args, algo: AlgoSpec, data: &Dataset) -> bool {
    let stored = match fit_model(algo, data, &RunConfig::fast()) {
        Ok(stored) => stored,
        Err(e) => {
            eprintln!("error: {} does not fit: {e}", algo.name());
            return false;
        }
    };
    let dir = std::env::temp_dir().join("etsc-loadgen-fleet");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: creating model store dir: {e}");
        return false;
    }
    let paths: Vec<std::path::PathBuf> = (0..args.shards)
        .map(|i| dir.join(format!("shard{i}.model")))
        .collect();
    let models: Result<Vec<Arc<StoredModel>>, String> = (|| {
        stored.save(&paths[0]).map_err(|e| e.to_string())?;
        replicate(&paths[0], &paths[1..]).map_err(|e| e.to_string())?;
        paths
            .iter()
            .map(|p| {
                StoredModel::load(p)
                    .map(Arc::new)
                    .map_err(|e| e.to_string())
            })
            .collect()
    })();
    let models = match models {
        Ok(models) => models,
        Err(e) => {
            eprintln!("error: replicating the model store: {e}");
            return false;
        }
    };
    let plan = args.faults.clone().unwrap_or_else(|| {
        FaultPlan::parse("seed=11,kill-shard=1").expect("default fleet plan parses")
    });
    let report = run_fleet(
        &models,
        data,
        &FleetOptions {
            connections: args.connections,
            sessions: args.sessions,
            rate: args.rate,
            batch: args.batch,
            faults: Some(plan.clone()),
            wait_timeout: Duration::from_secs(60),
            ..FleetOptions::default()
        },
    );
    let r = &report.router;
    println!(
        "{:<9} fleet {} shards {:>8.0} decisions/s  p50 {:>7.3} ms  p99 {:>7.3} ms  \
         balance {:?}  migrated {}  failover {:.3} ms ({} episodes)  planned drains {}",
        algo.name(),
        args.shards,
        report.load.decisions_per_sec(),
        report.load.latency.clone().p50().unwrap_or(0.0) * 1e3,
        report.load.latency.clone().p99().unwrap_or(0.0) * 1e3,
        report.balance(),
        r.sessions_migrated,
        report.failover_ms(),
        r.failovers,
        r.planned_drains,
    );
    for e in &report.load.errors {
        eprintln!("error: {e}");
    }
    let mut ok = report.clean();
    for (i, shard) in report.shards.iter().enumerate() {
        if let Some(stats) = &shard.stats {
            if stats.open_sessions() != 0 {
                eprintln!("error: shard {i} leaked {} sessions", stats.open_sessions());
                ok = false;
            }
        }
    }
    if plan.kill_shard.is_some() && report.kill_step.is_none() {
        eprintln!("error: the armed shard kill never fired");
        ok = false;
    }
    if ok {
        merge_fleet_baseline(&report, algo.name(), &plan, args.connections, args.batch);
    }
    ok
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let data = args
        .dataset
        .generate(ScalePreset::Quick.options(args.dataset, 11));
    let opts = LoadgenOptions {
        connections: args.connections,
        sessions: args.sessions,
        rate: args.rate,
        batch: args.batch,
        faults: args.faults.clone(),
        client: ClientConfig::default(),
        wait_timeout: Duration::from_secs(60),
        low_priority_share: 0.0,
        open_ahead: 0,
        feedback: false,
        send_shutdown: false,
    };
    let mut ok = true;

    if args.overload && args.connect.is_none() {
        // Overload mode: ramp offered load past a pinned capacity with
        // and without admission control.
        let algo = args.algos.first().copied().unwrap_or(AlgoSpec::Ects);
        ok = run_overload_mode(&args, algo, &data);
    } else if args.drift && args.connect.is_none() {
        // Drift mode: serve an adapting model and measure recovery.
        let algo = args.algos.first().copied().unwrap_or(AlgoSpec::Ects);
        ok = run_drift_mode(&args, algo);
    } else if args.shards >= 2 && args.connect.is_none() {
        // Fleet mode: N shards behind a router, with a seeded
        // shard-kill unless the caller armed their own plan.
        let algo = args.algos.first().copied().unwrap_or(AlgoSpec::Ects);
        ok = run_fleet_mode(&args, algo, &data);
    } else if let Some(addr) = &args.connect {
        // External mode: one server, whatever model it serves.
        let mut row = NetRow::new("remote");
        run_until(addr, &data, &opts, args.min_secs, &mut row);
        if args.shutdown {
            let drain = run_loadgen(
                addr,
                &data,
                &LoadgenOptions {
                    sessions: 1,
                    connections: 1,
                    send_shutdown: true,
                    faults: None,
                    ..opts
                },
            );
            row.absorb(&drain);
            if !drain.drained {
                eprintln!("error: server did not acknowledge the drain");
                ok = false;
            }
        }
        println!("{}", row.render());
        for e in &row.errors {
            eprintln!("error: {e}");
        }
        ok = ok && row.clean();
    } else {
        // Self-hosted mode: fit, bind, measure, drain — per algorithm.
        let config = RunConfig::fast();
        let mut rows = Vec::new();
        let mut event_loops = 0usize;
        for algo in args.algos {
            let stored = match fit_model(algo, &data, &config) {
                Ok(stored) => Arc::new(stored),
                Err(e) => {
                    eprintln!("{:<9} skipped: {e}", algo.name());
                    continue;
                }
            };
            let server = match NetServer::bind(stored, "127.0.0.1:0", ServerConfig::default()) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("error: binding loopback for {}: {e}", algo.name());
                    ok = false;
                    continue;
                }
            };
            let addr = server.local_addr().to_string();
            event_loops = server.event_loops();
            let mut row = NetRow::new(algo.name());
            run_until(&addr, &data, &opts, args.min_secs, &mut row);
            server.shutdown();
            let stats = server.join();
            if stats.open_sessions() != 0 {
                eprintln!(
                    "error: {} leaked {} sessions server-side",
                    algo.name(),
                    stats.open_sessions()
                );
                ok = false;
            }
            println!("{}", row.render());
            for e in &row.errors {
                eprintln!("error: {e}");
            }
            ok = ok && row.clean();
            rows.push(row);
        }
        if rows.is_empty() {
            eprintln!("error: no algorithm produced a servable model");
            ok = false;
        } else {
            merge_baseline(
                &rows,
                args.connections,
                args.sessions,
                args.batch,
                event_loops,
            );
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
