//! `reproduce` — regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce <target> [--preset quick|standard|full] [--fast] [--seed N]
//!           [--out DIR] [--threads N] [--journal PATH] [--resume]
//!           [--budget-secs N] [--retries N] [--folds N]
//!           [--trace FILE] [--metrics FILE]
//!
//! targets:
//!   table2       algorithm characteristics
//!   table3       dataset characteristics & categories
//!   table4       algorithm parameter values
//!   table5       worst-case training complexities
//!   fig9         accuracy & F1 per dataset category        (sweep)
//!   fig10        earliness per category                    (sweep)
//!   fig11        harmonic mean per category                (sweep)
//!   fig12        training minutes per category             (sweep)
//!   fig13        online-feasibility heatmap                (sweep)
//!   figures      fig9-fig13 from a single shared sweep
//!   bio-savings  Section 6.3: early identification of
//!                non-interesting biological simulations
//!   supplementary  per-dataset results (the paper's supplementary
//!                material layout)                          (sweep)
//!   smoke        small instrumented matrix (3 algorithms x 2
//!                datasets) that validates the emitted trace:
//!                fold/fit/predict span nesting, transform spans
//!                under fits, and phase-duration accounting. The
//!                default target when flags are given without one.
//!   all          everything above
//! ```
//!
//! The shared flags use the canonical spellings from
//! `etsc_eval::opts` (`--threads`; `--parallel` is a deprecated
//! alias). `--fast` pins the quick preset. `--trace`/`--metrics`
//! write a JSONL span trace and a Prometheus metrics snapshot for any
//! target; sweeps and the smoke matrix are instrumented end to end.
//!
//! Sweep targets run the full (8 algorithms × 12 datasets × k-fold CV)
//! experiment at the chosen preset and print the same category × algorithm
//! series the paper plots; CSVs are written next to the text output when
//! `--out` is given.
//!
//! `--journal`, `--resume`, `--budget-secs` and `--retries` route the
//! sweep through the fault-tolerant supervisor: every cell is isolated
//! against panics, transient errors are retried, completed cells are
//! checkpointed to the journal, and `--resume` picks an interrupted
//! sweep up without recomputing finished cells. The matrix status table
//! (OK/DNF/ERR/PANIC per cell) is printed after a supervised sweep.

use etsc_bench::{
    biological_early_savings, render_table2, render_table3, render_table4, render_table5,
    run_sweep, run_sweep_parallel, run_sweep_supervised, ScalePreset, SweepOutput,
};
use etsc_datasets::PaperDataset;
use etsc_eval::aggregate::aggregate_by_category;
use etsc_eval::experiment::AlgoSpec;
use etsc_eval::online::online_cell;
use etsc_eval::report::{
    figure_csv, matrix_status_csv, render_figure, render_matrix_status, render_online_heatmap,
    FigureMetric,
};
use etsc_eval::supervisor::SupervisorOptions;
use etsc_eval::{CommonOpts, MatrixRunner};
use etsc_obs::{Obs, TraceTree};

struct Args {
    target: String,
    preset: ScalePreset,
    out_dir: Option<std::path::PathBuf>,
    /// The shared evaluation options (seed, threads, journal, trace,
    /// metrics, ...) under their canonical spellings.
    opts: CommonOpts,
}

impl Args {
    /// The robustness flags all imply the supervised sweep.
    fn supervised(&self) -> bool {
        self.opts.journal.is_some()
            || self.opts.resume
            || self.opts.budget_secs.is_some()
            || self.opts.retries.unwrap_or(0) > 0
    }

    fn seed(&self) -> u64 {
        self.opts.seed.unwrap_or(2024)
    }

    fn threads(&self) -> usize {
        self.opts.threads.unwrap_or(1)
    }
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // `reproduce --fast --trace t.jsonl` with no target runs the smoke
    // matrix; flags always start with '-', targets never do.
    let (target, rest): (String, &[String]) = match argv.first() {
        None => return Err("missing target (try `reproduce all`)".to_owned()),
        Some(first) if first.starts_with('-') => ("smoke".to_owned(), &argv[..]),
        Some(first) => (first.clone(), &argv[1..]),
    };
    let mut preset = ScalePreset::Quick;
    let mut out_dir = None;
    let mut opts = CommonOpts::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {flag:?}"))?;
        if name == "fast" {
            preset = ScalePreset::Quick;
            continue;
        }
        if name == "resume" {
            opts.resume = true;
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        if opts.accept(name, value)? {
            continue;
        }
        match name {
            "preset" => {
                preset = ScalePreset::parse(value).ok_or(format!("unknown preset {value:?}"))?;
            }
            "out" => out_dir = Some(std::path::PathBuf::from(value)),
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    if opts.resume && opts.journal.is_none() {
        return Err("--resume needs --journal PATH".to_owned());
    }
    Ok(Args {
        target,
        preset,
        out_dir,
        opts,
    })
}

fn write_out(dir: &Option<std::path::PathBuf>, name: &str, content: &str) {
    if let Some(dir) = dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {dir:?}: {e}");
            return;
        }
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("warning: cannot write {path:?}: {e}");
        } else {
            println!("wrote {path:?}");
        }
    }
}

fn sweep(args: &Args) -> SweepOutput {
    println!(
        "running sweep: 8 algorithms x 12 datasets, preset {:?}, seed {}, threads {}",
        args.preset,
        args.seed(),
        args.threads()
    );
    if args.supervised() {
        let options = args.opts.supervisor_options(SupervisorOptions {
            max_threads: 1,
            ..SupervisorOptions::default()
        });
        let out = run_sweep_supervised(
            &PaperDataset::ALL,
            &AlgoSpec::ALL,
            args.preset,
            args.seed(),
            args.opts.budget_secs.map(std::time::Duration::from_secs),
            &options,
            |line| println!("{line}"),
        )
        .unwrap_or_else(|e| {
            eprintln!("supervised sweep failed: {e}");
            std::process::exit(1);
        });
        let datasets: Vec<String> = out.dataset_meta.keys().cloned().collect();
        println!("\n=== matrix status ===");
        print!("{}", render_matrix_status(&out.outcomes, &datasets));
        write_out(
            &args.out_dir,
            "matrix_status.csv",
            &matrix_status_csv(&out.outcomes),
        );
        return SweepOutput {
            results: out.results(),
            categories: out.categories,
            dataset_meta: out.dataset_meta,
            config: out.config,
        };
    }
    let result = if args.threads() > 1 {
        println!(
            "note: parallel timings include CPU contention; use --threads 1 for Figures 12/13"
        );
        run_sweep_parallel(
            &PaperDataset::ALL,
            &AlgoSpec::ALL,
            args.preset,
            args.seed(),
            args.threads(),
            |line| println!("{line}"),
        )
    } else {
        run_sweep(
            &PaperDataset::ALL,
            &AlgoSpec::ALL,
            args.preset,
            args.seed(),
            |line| println!("{line}"),
        )
    };
    result.unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(1);
    })
}

fn print_figures(out: &SweepOutput, args: &Args, which: &[&str]) {
    let aggregated = aggregate_by_category(&out.results, &out.categories);
    let figures: [(&str, FigureMetric, &str); 5] = [
        ("fig9", FigureMetric::Accuracy, "fig9_accuracy"),
        ("fig9", FigureMetric::F1, "fig9_f1"),
        ("fig10", FigureMetric::Earliness, "fig10_earliness"),
        ("fig11", FigureMetric::HarmonicMean, "fig11_harmonic_mean"),
        (
            "fig12",
            FigureMetric::TrainMinutes,
            "fig12_training_minutes",
        ),
    ];
    for (fig, metric, file) in figures {
        if !which.contains(&fig) {
            continue;
        }
        println!("\n=== {} ({}) ===", fig, metric.label());
        let table = render_figure(&aggregated, metric);
        println!("{table}");
        write_out(
            &args.out_dir,
            &format!("{file}.csv"),
            &figure_csv(&aggregated, metric),
        );
    }
    if which.contains(&"fig13") {
        println!("\n=== fig13 (online feasibility heatmap) ===");
        let mut cells = Vec::new();
        let mut datasets: Vec<String> = Vec::new();
        for r in &out.results {
            let Some(&(freq, len)) = out.dataset_meta.get(&r.dataset) else {
                continue;
            };
            cells.push(online_cell(r, freq, len, &out.config));
            if !datasets.contains(&r.dataset) {
                datasets.push(r.dataset.clone());
            }
        }
        let heatmap = render_online_heatmap(&cells, &datasets);
        println!("{heatmap}");
        let mut csv = String::from("dataset,algorithm,ratio,feasible\n");
        for c in &cells {
            csv.push_str(&format!(
                "{},{},{},{}\n",
                c.dataset,
                c.algo.name(),
                c.ratio.map(|r| format!("{r:.6e}")).unwrap_or_default(),
                c.feasible()
            ));
        }
        write_out(&args.out_dir, "fig13_online.csv", &csv);
    }
}

/// Per-dataset results in the paper's supplementary-material layout:
/// one block per dataset, one row per algorithm.
fn print_supplementary(out: &SweepOutput, args: &Args) {
    println!("\n=== supplementary: per-dataset results ===");
    let mut csv = String::from(
        "dataset,algorithm,accuracy,f1,earliness,harmonic_mean,train_secs,test_secs,dnf\n",
    );
    let mut datasets: Vec<String> = Vec::new();
    for r in &out.results {
        if !datasets.contains(&r.dataset) {
            datasets.push(r.dataset.clone());
        }
    }
    for ds in &datasets {
        println!("\n{ds}");
        println!(
            "  {:<10}{:>9}{:>9}{:>11}{:>9}{:>11}{:>11}",
            "Algorithm", "Acc", "F1", "Earliness", "HM", "Train (s)", "Test (ms)"
        );
        for r in out.results.iter().filter(|r| &r.dataset == ds) {
            match &r.metrics {
                Some(m) => {
                    println!(
                        "  {:<10}{:>9.3}{:>9.3}{:>11.3}{:>9.3}{:>11.2}{:>11.3}",
                        r.algo.name(),
                        m.accuracy,
                        m.f1,
                        m.earliness,
                        m.harmonic_mean,
                        r.train_secs,
                        r.test_secs_per_instance * 1000.0
                    );
                    csv.push_str(&format!(
                        "{ds},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},false\n",
                        r.algo.name(),
                        m.accuracy,
                        m.f1,
                        m.earliness,
                        m.harmonic_mean,
                        r.train_secs,
                        r.test_secs_per_instance
                    ));
                }
                None => {
                    println!("  {:<10}{:>9}", r.algo.name(), "DNF");
                    csv.push_str(&format!("{ds},{},,,,,,,true\n", r.algo.name()));
                }
            }
        }
    }
    write_out(&args.out_dir, "supplementary.csv", &csv);
}

/// The instrumented smoke matrix: three algorithms (ECTS plus the two
/// transform-backed STRUT variants) on two small datasets, followed by
/// validation of the emitted trace — span nesting, transform
/// attribution, and phase-duration accounting against the reported
/// train times.
fn run_smoke(args: &Args, obs: &Obs) {
    let datasets = [PaperDataset::PowerCons, PaperDataset::DodgerLoopGame];
    let algos = [AlgoSpec::Ects, AlgoSpec::SMini, AlgoSpec::SWeasel];
    let mut config = args.preset.run_config();
    args.opts.apply_config(&mut config);
    let generated: Vec<_> = datasets
        .iter()
        .map(|d| d.generate(args.preset.options(*d, args.seed())))
        .collect();
    println!(
        "smoke matrix: {} algorithms x {} datasets, seed {}, threads {}",
        algos.len(),
        generated.len(),
        args.seed(),
        args.threads()
    );
    let outcomes = MatrixRunner::new(config)
        .parallel(args.threads())
        .obs(obs.clone())
        .run(&generated, &algos)
        .unwrap_or_else(|e| {
            eprintln!("smoke matrix failed: {e}");
            std::process::exit(1);
        });
    let names: Vec<String> = generated.iter().map(|d| d.name().to_owned()).collect();
    print!("{}", render_matrix_status(&outcomes, &names));
    if !obs.is_enabled() {
        println!("note: pass --trace/--metrics to validate the emitted trace");
        return;
    }

    let records = obs.tracer.records();
    let tree = TraceTree::build(&records).unwrap_or_else(|e| {
        eprintln!("smoke trace is structurally invalid: {e}");
        std::process::exit(1);
    });
    let mut checked_cells = 0usize;
    let mut checked_folds = 0usize;
    let mut transform_spans = 0usize;
    for cv in tree.spans_named("cv") {
        let (Some(dataset), Some(algo)) = (cv.attr("dataset"), cv.attr("algo")) else {
            eprintln!("cv span {} is missing dataset/algo attributes", cv.id);
            std::process::exit(1);
        };
        let result = outcomes
            .iter()
            .filter_map(|o| o.run_result())
            .find(|r| r.dataset == dataset && r.algo.name() == algo)
            .unwrap_or_else(|| {
                eprintln!("cv span for {algo} on {dataset} has no matching result");
                std::process::exit(1);
            });
        let folds: Vec<_> = tree
            .children(cv.id)
            .iter()
            .filter_map(|&id| tree.span(id))
            .filter(|s| s.name == "fold")
            .collect();
        let mut fit_sum = 0.0;
        for fold in &folds {
            let kids: Vec<_> = tree
                .children(fold.id)
                .iter()
                .filter_map(|&id| tree.span(id))
                .collect();
            let fit = kids.iter().find(|s| s.name == "fit").unwrap_or_else(|| {
                eprintln!("fold {} of {algo} on {dataset} has no fit span", fold.id);
                std::process::exit(1);
            });
            if !kids.iter().any(|s| s.name == "predict") {
                eprintln!(
                    "fold {} of {algo} on {dataset} has no predict span",
                    fold.id
                );
                std::process::exit(1);
            }
            transform_spans += tree
                .children(fit.id)
                .iter()
                .filter_map(|&id| tree.span(id))
                .filter(|s| s.name == "transform")
                .count();
            fit_sum += fit.duration_secs();
            checked_folds += 1;
        }
        // The reported train time is the per-fold average of the timed
        // fit calls; the fit spans wrap exactly those calls, so the
        // two bookkeepings must agree to within 5% (plus a millisecond
        // of slack for span overhead on near-zero cells).
        if !folds.is_empty() {
            let span_avg = fit_sum / folds.len() as f64;
            let tolerance = result.train_secs * 0.05 + 1e-3;
            if (span_avg - result.train_secs).abs() > tolerance {
                eprintln!(
                    "phase accounting drift for {algo} on {dataset}: \
                     fit spans average {span_avg:.6}s, train_secs {:.6}s",
                    result.train_secs
                );
                std::process::exit(1);
            }
        }
        checked_cells += 1;
    }
    if checked_cells == 0 || transform_spans == 0 {
        eprintln!(
            "smoke trace incomplete: {checked_cells} cv spans, {transform_spans} transform spans"
        );
        std::process::exit(1);
    }
    println!(
        "smoke trace validated: {checked_cells} cells, {checked_folds} folds with \
         fit+predict spans, {transform_spans} transform spans nested under fits"
    );
    let counters = obs.metrics.snapshot_counters();
    println!(
        "metrics: {} cells, {} folds, {} spans recorded ({} dropped)",
        counters.get("matrix_cells_total").copied().unwrap_or(0),
        counters.get("eval_folds_total").copied().unwrap_or(0),
        records.len(),
        obs.tracer.dropped()
    );
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: reproduce <table2|table3|table4|table5|fig9|fig10|fig11|fig12|fig13|figures|supplementary|bio-savings|smoke|all> [--preset quick|standard|full] [--fast] [--seed N] [--out DIR] [--threads N] [--journal PATH] [--resume] [--budget-secs N] [--retries N] [--folds N] [--trace FILE] [--metrics FILE]");
            std::process::exit(2);
        }
    };
    let obs = args.opts.build_obs();
    etsc_obs::with_ambient(&obs, || dispatch(&args, &obs));
    if let Err(e) = args.opts.export(&obs) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    if let Some(path) = &args.opts.trace {
        println!(
            "wrote trace {path:?} ({} records)",
            obs.tracer.records().len()
        );
    }
    if let Some(path) = &args.opts.metrics {
        println!("wrote metrics snapshot {path:?}");
    }
}

fn dispatch(args: &Args, obs: &Obs) {
    match args.target.as_str() {
        "smoke" => run_smoke(args, obs),
        "table2" => {
            println!("=== Table 2: algorithm characteristics ===");
            print!("{}", render_table2());
        }
        "table3" => {
            println!(
                "=== Table 3: dataset characteristics (preset {:?}) ===",
                args.preset
            );
            print!("{}", render_table3(args.preset, args.seed()));
        }
        "table4" => {
            println!("=== Table 4: parameter values ===");
            print!("{}", render_table4(args.preset));
        }
        "table5" => {
            println!("=== Table 5: worst-case training complexity ===");
            print!("{}", render_table5());
        }
        "fig9" | "fig10" | "fig11" | "fig12" | "fig13" => {
            let out = sweep(args);
            print_figures(&out, args, &[args.target.as_str()]);
        }
        "supplementary" => {
            let out = sweep(args);
            print_supplementary(&out, args);
        }
        "figures" => {
            let out = sweep(args);
            print_figures(&out, args, &["fig9", "fig10", "fig11", "fig12", "fig13"]);
        }
        "bio-savings" => {
            println!("=== Section 6.3: biological early-termination savings ===");
            match biological_early_savings(args.preset, args.seed()) {
                Ok(fraction) => {
                    println!(
                        "non-interesting simulations identified before completion: {:.1}% (paper: 65%)",
                        fraction * 100.0
                    );
                }
                Err(e) => {
                    eprintln!("failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "all" => {
            println!("=== Table 2: algorithm characteristics ===");
            print!("{}", render_table2());
            println!(
                "\n=== Table 3: dataset characteristics (preset {:?}) ===",
                args.preset
            );
            print!("{}", render_table3(args.preset, args.seed()));
            println!("\n=== Table 4: parameter values ===");
            print!("{}", render_table4(args.preset));
            println!("\n=== Table 5: worst-case training complexity ===");
            print!("{}", render_table5());
            let out = sweep(args);
            print_figures(&out, args, &["fig9", "fig10", "fig11", "fig12", "fig13"]);
            println!("\n=== Section 6.3: biological early-termination savings ===");
            match biological_early_savings(args.preset, args.seed()) {
                Ok(fraction) => println!(
                    "non-interesting simulations identified before completion: {:.1}% (paper: 65%)",
                    fraction * 100.0
                ),
                Err(e) => eprintln!("bio-savings failed: {e}"),
            }
        }
        other => {
            eprintln!("unknown target {other:?}");
            std::process::exit(2);
        }
    }
}
