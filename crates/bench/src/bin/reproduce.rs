//! `reproduce` — regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce <target> [--preset quick|standard|full] [--seed N] [--out DIR]
//!           [--parallel THREADS] [--journal PATH] [--resume]
//!           [--budget-secs N] [--retries N]
//!
//! targets:
//!   table2       algorithm characteristics
//!   table3       dataset characteristics & categories
//!   table4       algorithm parameter values
//!   table5       worst-case training complexities
//!   fig9         accuracy & F1 per dataset category        (sweep)
//!   fig10        earliness per category                    (sweep)
//!   fig11        harmonic mean per category                (sweep)
//!   fig12        training minutes per category             (sweep)
//!   fig13        online-feasibility heatmap                (sweep)
//!   figures      fig9-fig13 from a single shared sweep
//!   bio-savings  Section 6.3: early identification of
//!                non-interesting biological simulations
//!   supplementary  per-dataset results (the paper's supplementary
//!                material layout)                          (sweep)
//!   all          everything above
//! ```
//!
//! Sweep targets run the full (8 algorithms × 12 datasets × k-fold CV)
//! experiment at the chosen preset and print the same category × algorithm
//! series the paper plots; CSVs are written next to the text output when
//! `--out` is given.
//!
//! `--journal`, `--resume`, `--budget-secs` and `--retries` route the
//! sweep through the fault-tolerant supervisor: every cell is isolated
//! against panics, transient errors are retried, completed cells are
//! checkpointed to the journal, and `--resume` picks an interrupted
//! sweep up without recomputing finished cells. The matrix status table
//! (OK/DNF/ERR/PANIC per cell) is printed after a supervised sweep.

use etsc_bench::{
    biological_early_savings, render_table2, render_table3, render_table4, render_table5,
    run_sweep, run_sweep_parallel, run_sweep_supervised, ScalePreset, SweepOutput,
};
use etsc_datasets::PaperDataset;
use etsc_eval::aggregate::aggregate_by_category;
use etsc_eval::experiment::AlgoSpec;
use etsc_eval::online::online_cell;
use etsc_eval::report::{
    figure_csv, matrix_status_csv, render_figure, render_matrix_status, render_online_heatmap,
    FigureMetric,
};
use etsc_eval::supervisor::SupervisorOptions;

struct Args {
    target: String,
    preset: ScalePreset,
    seed: u64,
    out_dir: Option<std::path::PathBuf>,
    /// Worker threads for the sweep (1 = sequential, timing-faithful).
    threads: usize,
    /// Checkpoint journal path (enables the supervised sweep).
    journal: Option<std::path::PathBuf>,
    /// Resume from an existing journal instead of starting over.
    resume: bool,
    /// Training-budget override in seconds (the 48-hour rule, scaled).
    budget_secs: Option<u64>,
    /// Extra attempts after a transient cell error.
    retries: usize,
}

impl Args {
    /// The new robustness flags all imply the supervised sweep.
    fn supervised(&self) -> bool {
        self.journal.is_some() || self.resume || self.budget_secs.is_some() || self.retries > 0
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let target = args.next().ok_or("missing target (try `reproduce all`)")?;
    let mut preset = ScalePreset::Quick;
    let mut seed = 2024u64;
    let mut out_dir = None;
    let mut threads = 1usize;
    let mut journal = None;
    let mut resume = false;
    let mut budget_secs = None;
    let mut retries = 0usize;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--parallel" => {
                let v = args.next().ok_or("--parallel needs a thread count")?;
                threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
            }
            "--preset" => {
                let v = args.next().ok_or("--preset needs a value")?;
                preset = ScalePreset::parse(&v).ok_or(format!("unknown preset {v:?}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--out" => {
                let v = args.next().ok_or("--out needs a directory")?;
                out_dir = Some(std::path::PathBuf::from(v));
            }
            "--journal" => {
                let v = args.next().ok_or("--journal needs a file path")?;
                journal = Some(std::path::PathBuf::from(v));
            }
            "--resume" => resume = true,
            "--budget-secs" => {
                let v = args.next().ok_or("--budget-secs needs a value")?;
                budget_secs = Some(v.parse().map_err(|_| format!("bad budget {v:?}"))?);
            }
            "--retries" => {
                let v = args.next().ok_or("--retries needs a value")?;
                retries = v.parse().map_err(|_| format!("bad retry count {v:?}"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if resume && journal.is_none() {
        return Err("--resume needs --journal PATH".to_owned());
    }
    Ok(Args {
        target,
        preset,
        seed,
        out_dir,
        threads,
        journal,
        resume,
        budget_secs,
        retries,
    })
}

fn write_out(dir: &Option<std::path::PathBuf>, name: &str, content: &str) {
    if let Some(dir) = dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {dir:?}: {e}");
            return;
        }
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("warning: cannot write {path:?}: {e}");
        } else {
            println!("wrote {path:?}");
        }
    }
}

fn sweep(args: &Args) -> SweepOutput {
    println!(
        "running sweep: 8 algorithms x 12 datasets, preset {:?}, seed {}, threads {}",
        args.preset, args.seed, args.threads
    );
    if args.supervised() {
        let options = SupervisorOptions {
            max_threads: args.threads,
            retries: args.retries,
            journal: args.journal.clone(),
            resume: args.resume,
        };
        let out = run_sweep_supervised(
            &PaperDataset::ALL,
            &AlgoSpec::ALL,
            args.preset,
            args.seed,
            args.budget_secs.map(std::time::Duration::from_secs),
            &options,
            |line| println!("{line}"),
        )
        .unwrap_or_else(|e| {
            eprintln!("supervised sweep failed: {e}");
            std::process::exit(1);
        });
        let datasets: Vec<String> = out.dataset_meta.keys().cloned().collect();
        println!("\n=== matrix status ===");
        print!("{}", render_matrix_status(&out.outcomes, &datasets));
        write_out(
            &args.out_dir,
            "matrix_status.csv",
            &matrix_status_csv(&out.outcomes),
        );
        return SweepOutput {
            results: out.results(),
            categories: out.categories,
            dataset_meta: out.dataset_meta,
            config: out.config,
        };
    }
    let result = if args.threads > 1 {
        println!(
            "note: parallel timings include CPU contention; use --parallel 1 for Figures 12/13"
        );
        run_sweep_parallel(
            &PaperDataset::ALL,
            &AlgoSpec::ALL,
            args.preset,
            args.seed,
            args.threads,
            |line| println!("{line}"),
        )
    } else {
        run_sweep(
            &PaperDataset::ALL,
            &AlgoSpec::ALL,
            args.preset,
            args.seed,
            |line| println!("{line}"),
        )
    };
    result.unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(1);
    })
}

fn print_figures(out: &SweepOutput, args: &Args, which: &[&str]) {
    let aggregated = aggregate_by_category(&out.results, &out.categories);
    let figures: [(&str, FigureMetric, &str); 5] = [
        ("fig9", FigureMetric::Accuracy, "fig9_accuracy"),
        ("fig9", FigureMetric::F1, "fig9_f1"),
        ("fig10", FigureMetric::Earliness, "fig10_earliness"),
        ("fig11", FigureMetric::HarmonicMean, "fig11_harmonic_mean"),
        (
            "fig12",
            FigureMetric::TrainMinutes,
            "fig12_training_minutes",
        ),
    ];
    for (fig, metric, file) in figures {
        if !which.contains(&fig) {
            continue;
        }
        println!("\n=== {} ({}) ===", fig, metric.label());
        let table = render_figure(&aggregated, metric);
        println!("{table}");
        write_out(
            &args.out_dir,
            &format!("{file}.csv"),
            &figure_csv(&aggregated, metric),
        );
    }
    if which.contains(&"fig13") {
        println!("\n=== fig13 (online feasibility heatmap) ===");
        let mut cells = Vec::new();
        let mut datasets: Vec<String> = Vec::new();
        for r in &out.results {
            let Some(&(freq, len)) = out.dataset_meta.get(&r.dataset) else {
                continue;
            };
            cells.push(online_cell(r, freq, len, &out.config));
            if !datasets.contains(&r.dataset) {
                datasets.push(r.dataset.clone());
            }
        }
        let heatmap = render_online_heatmap(&cells, &datasets);
        println!("{heatmap}");
        let mut csv = String::from("dataset,algorithm,ratio,feasible\n");
        for c in &cells {
            csv.push_str(&format!(
                "{},{},{},{}\n",
                c.dataset,
                c.algo.name(),
                c.ratio.map(|r| format!("{r:.6e}")).unwrap_or_default(),
                c.feasible()
            ));
        }
        write_out(&args.out_dir, "fig13_online.csv", &csv);
    }
}

/// Per-dataset results in the paper's supplementary-material layout:
/// one block per dataset, one row per algorithm.
fn print_supplementary(out: &SweepOutput, args: &Args) {
    println!("\n=== supplementary: per-dataset results ===");
    let mut csv = String::from(
        "dataset,algorithm,accuracy,f1,earliness,harmonic_mean,train_secs,test_secs,dnf\n",
    );
    let mut datasets: Vec<String> = Vec::new();
    for r in &out.results {
        if !datasets.contains(&r.dataset) {
            datasets.push(r.dataset.clone());
        }
    }
    for ds in &datasets {
        println!("\n{ds}");
        println!(
            "  {:<10}{:>9}{:>9}{:>11}{:>9}{:>11}{:>11}",
            "Algorithm", "Acc", "F1", "Earliness", "HM", "Train (s)", "Test (ms)"
        );
        for r in out.results.iter().filter(|r| &r.dataset == ds) {
            match &r.metrics {
                Some(m) => {
                    println!(
                        "  {:<10}{:>9.3}{:>9.3}{:>11.3}{:>9.3}{:>11.2}{:>11.3}",
                        r.algo.name(),
                        m.accuracy,
                        m.f1,
                        m.earliness,
                        m.harmonic_mean,
                        r.train_secs,
                        r.test_secs_per_instance * 1000.0
                    );
                    csv.push_str(&format!(
                        "{ds},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},false\n",
                        r.algo.name(),
                        m.accuracy,
                        m.f1,
                        m.earliness,
                        m.harmonic_mean,
                        r.train_secs,
                        r.test_secs_per_instance
                    ));
                }
                None => {
                    println!("  {:<10}{:>9}", r.algo.name(), "DNF");
                    csv.push_str(&format!("{ds},{},,,,,,,true\n", r.algo.name()));
                }
            }
        }
    }
    write_out(&args.out_dir, "supplementary.csv", &csv);
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: reproduce <table2|table3|table4|table5|fig9|fig10|fig11|fig12|fig13|figures|supplementary|bio-savings|all> [--preset quick|standard|full] [--seed N] [--out DIR] [--parallel THREADS] [--journal PATH] [--resume] [--budget-secs N] [--retries N]");
            std::process::exit(2);
        }
    };
    match args.target.as_str() {
        "table2" => {
            println!("=== Table 2: algorithm characteristics ===");
            print!("{}", render_table2());
        }
        "table3" => {
            println!(
                "=== Table 3: dataset characteristics (preset {:?}) ===",
                args.preset
            );
            print!("{}", render_table3(args.preset, args.seed));
        }
        "table4" => {
            println!("=== Table 4: parameter values ===");
            print!("{}", render_table4(args.preset));
        }
        "table5" => {
            println!("=== Table 5: worst-case training complexity ===");
            print!("{}", render_table5());
        }
        "fig9" | "fig10" | "fig11" | "fig12" | "fig13" => {
            let out = sweep(&args);
            print_figures(&out, &args, &[args.target.as_str()]);
        }
        "supplementary" => {
            let out = sweep(&args);
            print_supplementary(&out, &args);
        }
        "figures" => {
            let out = sweep(&args);
            print_figures(&out, &args, &["fig9", "fig10", "fig11", "fig12", "fig13"]);
        }
        "bio-savings" => {
            println!("=== Section 6.3: biological early-termination savings ===");
            match biological_early_savings(args.preset, args.seed) {
                Ok(fraction) => {
                    println!(
                        "non-interesting simulations identified before completion: {:.1}% (paper: 65%)",
                        fraction * 100.0
                    );
                }
                Err(e) => {
                    eprintln!("failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "all" => {
            println!("=== Table 2: algorithm characteristics ===");
            print!("{}", render_table2());
            println!(
                "\n=== Table 3: dataset characteristics (preset {:?}) ===",
                args.preset
            );
            print!("{}", render_table3(args.preset, args.seed));
            println!("\n=== Table 4: parameter values ===");
            print!("{}", render_table4(args.preset));
            println!("\n=== Table 5: worst-case training complexity ===");
            print!("{}", render_table5());
            let out = sweep(&args);
            print_figures(&out, &args, &["fig9", "fig10", "fig11", "fig12", "fig13"]);
            println!("\n=== Section 6.3: biological early-termination savings ===");
            match biological_early_savings(args.preset, args.seed) {
                Ok(fraction) => println!(
                    "non-interesting simulations identified before completion: {:.1}% (paper: 65%)",
                    fraction * 100.0
                ),
                Err(e) => eprintln!("bio-savings failed: {e}"),
            }
        }
        other => {
            eprintln!("unknown target {other:?}");
            std::process::exit(2);
        }
    }
}
