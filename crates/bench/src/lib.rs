//! Shared harness for the benchmark binaries and criterion benches:
//! scale presets, the full experiment sweep, and renderers for the
//! paper's static tables (2, 4 and 5).

use std::collections::BTreeMap;

use etsc_core::registry::{all_algorithms, AlgoFamily};
use etsc_core::EtscError;
use etsc_data::stats::{Category, DatasetStats};
use etsc_datasets::{GenOptions, PaperDataset};
use etsc_eval::experiment::{run_cell, AlgoSpec, RunConfig, RunResult};
use etsc_eval::supervisor::{CellOutcome, CellStatus, SupervisorOptions};
use etsc_eval::MatrixRunner;

/// Scale preset for a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalePreset {
    /// CI-speed: heights capped at ~120 instances, lengths at ~64 points.
    Quick,
    /// Paper-shaped evaluation scale: heights ≤ ~300, lengths ≤ ~150.
    Standard,
    /// Full paper sizes (hours of compute; the 48-hour-budget regime).
    Full,
}

impl ScalePreset {
    /// Per-dataset generation options under this preset.
    pub fn options(self, dataset: PaperDataset, seed: u64) -> GenOptions {
        let spec = dataset.spec();
        let (max_h, max_l) = match self {
            ScalePreset::Quick => (120.0, 64.0),
            ScalePreset::Standard => (300.0, 150.0),
            ScalePreset::Full => (f64::INFINITY, f64::INFINITY),
        };
        GenOptions {
            height_scale: (max_h / spec.height as f64).min(1.0),
            length_scale: (max_l / spec.length as f64).min(1.0),
            seed,
        }
    }

    /// The matching run configuration.
    pub fn run_config(self) -> RunConfig {
        match self {
            ScalePreset::Quick => RunConfig::fast(),
            ScalePreset::Standard => RunConfig {
                folds: 5,
                ..RunConfig::fast()
            },
            ScalePreset::Full => RunConfig::default(),
        }
    }

    /// Parses a preset name.
    pub fn parse(s: &str) -> Option<ScalePreset> {
        match s.to_ascii_lowercase().as_str() {
            "quick" => Some(ScalePreset::Quick),
            "standard" => Some(ScalePreset::Standard),
            "full" => Some(ScalePreset::Full),
            _ => None,
        }
    }
}

/// Everything the figure reproductions need from one sweep.
pub struct SweepOutput {
    /// Per (algorithm, dataset) results.
    pub results: Vec<RunResult>,
    /// Dataset name → Table 3 categories (computed from generated data).
    pub categories: BTreeMap<String, Vec<Category>>,
    /// Dataset name → (observation frequency secs, generated length).
    pub dataset_meta: BTreeMap<String, (f64, usize)>,
    /// The run configuration used.
    pub config: RunConfig,
}

/// Runs the full (algorithms × datasets) cross-validated sweep.
///
/// `progress` receives one line per finished (algorithm, dataset) pair.
///
/// # Errors
/// Propagates harness failures (budget overruns are *not* failures; they
/// appear as DNF results, matching the paper).
pub fn run_sweep(
    datasets: &[PaperDataset],
    algos: &[AlgoSpec],
    preset: ScalePreset,
    seed: u64,
    mut progress: impl FnMut(&str),
) -> Result<SweepOutput, EtscError> {
    let config = preset.run_config();
    let mut results = Vec::new();
    let mut categories = BTreeMap::new();
    let mut dataset_meta = BTreeMap::new();
    for &ds in datasets {
        let spec = ds.spec();
        let data = ds.generate(preset.options(ds, seed));
        progress(&format!(
            "dataset {} generated: {} instances x {} vars x {} points",
            spec.name,
            data.len(),
            data.vars(),
            data.max_len()
        ));
        // Categories are pinned to the paper's full-scale Table 3 entry so
        // scaled-down heights don't drop e.g. the Large label.
        categories.insert(spec.name.to_owned(), spec.categories.to_vec());
        dataset_meta.insert(
            spec.name.to_owned(),
            (spec.obs_frequency_secs, data.max_len()),
        );
        for &algo in algos {
            let r = run_cell(algo, &data, &config, &etsc_obs::ambient())?;
            progress(&format!(
                "  {} on {}: {}",
                algo.name(),
                spec.name,
                match &r.metrics {
                    Some(m) => format!(
                        "acc {:.3} f1 {:.3} earliness {:.3} hm {:.3} (train {:.1}s)",
                        m.accuracy, m.f1, m.earliness, m.harmonic_mean, r.train_secs
                    ),
                    None => "DNF (training budget exceeded)".to_owned(),
                }
            ));
            results.push(r);
        }
    }
    Ok(SweepOutput {
        results,
        categories,
        dataset_meta,
        config,
    })
}

/// Renders Table 2 (algorithm characteristics).
pub fn render_table2() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12}{:<16}{:<14}{:<10}{:<12}\n",
        "Algorithm", "Family", "Multivariate", "ETSC", "Ref. impl."
    ));
    for a in all_algorithms() {
        out.push_str(&format!(
            "{:<12}{:<16}{:<14}{:<10}{:<12}\n",
            a.name,
            a.family.label(),
            if a.multivariate { "yes" } else { "no (voting)" },
            if a.early { "early" } else { "full-TSC" },
            a.reference_language,
        ));
    }
    out
}

/// Renders Table 3 (dataset characteristics) from *generated* data at the
/// given preset, with the paper's pinned categories alongside.
pub fn render_table3(preset: ScalePreset, seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24}{:>8}{:>8}{:>6}{:>9}{:>9}{:>8}  {}\n",
        "Dataset", "height", "length", "vars", "classes", "CoV", "CIR", "categories"
    ));
    for ds in PaperDataset::ALL {
        let spec = ds.spec();
        let data = ds.generate(preset.options(ds, seed));
        let stats = DatasetStats::compute(&data);
        let cats: Vec<&str> = spec.categories.iter().map(|c| c.name()).collect();
        out.push_str(&format!(
            "{:<24}{:>8}{:>8}{:>6}{:>9}{:>9.2}{:>8.2}  {}\n",
            spec.name,
            data.len(),
            data.max_len(),
            data.vars(),
            data.n_classes(),
            if stats.cov.is_finite() {
                stats.cov
            } else {
                99.99
            },
            stats.cir,
            cats.join(", ")
        ));
    }
    out
}

/// Renders Table 4 (parameter values actually used at a preset).
pub fn render_table4(preset: ScalePreset) -> String {
    let c = preset.run_config();
    let mut out = String::new();
    out.push_str("Algorithm   Parameter values\n");
    out.push_str(&format!(
        "ECEC        N = {}, alpha = 0.8\n",
        c.ecec_prefixes
    ));
    out.push_str("ECONOMY-K   k = {1, 2, 3}, lambda = 100, cost = 0.001\n");
    out.push_str("ECTS        support = 0\n");
    out.push_str(&format!(
        "EDSC        CHE, k = 3, minLen = 5, maxLen = L/2, budget = {:?}\n",
        c.train_budget
    ));
    out.push_str(&format!(
        "TEASER      S = {} (UCR/UEA), S = {} (Biological, Maritime)\n",
        c.teaser_prefixes_ucr, c.teaser_prefixes_new
    ));
    out.push_str(&format!(
        "S-MLSTM     grid {{0.05, 0.2, 0.4, 0.6, 0.8, 1}} * L, cells {:?}, epochs {}\n",
        c.mlstm_lstm_grid, c.mlstm_epochs
    ));
    out
}

/// Renders Table 5 (worst-case training complexities).
pub fn render_table5() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<12}{}\n", "Algorithm", "Worst-case complexity"));
    for a in all_algorithms() {
        let display = match a.family {
            // The paper lists the STRUT variants by their wrapped model.
            AlgoFamily::Miscellaneous if a.name == "MiniROCKET" => "S-MINI",
            AlgoFamily::Miscellaneous if a.name == "MLSTM" => "S-MLSTM",
            _ if a.name == "WEASEL" => "S-WEASEL",
            _ => a.name,
        };
        out.push_str(&format!("{:<12}{}\n", display, a.complexity));
    }
    out
}

/// The Section 6.3 claim: fraction of truly non-interesting Biological
/// simulations identified (correctly) before their final time point.
///
/// # Errors
/// Propagates harness failures.
pub fn biological_early_savings(preset: ScalePreset, seed: u64) -> Result<f64, EtscError> {
    use etsc_core::{EarlyClassifier, Teaser, TeaserConfig};
    use etsc_data::StratifiedKFold;

    let data = PaperDataset::Biological.generate(preset.options(PaperDataset::Biological, seed));
    let config = preset.run_config();
    let folds = StratifiedKFold::new(config.folds, seed)
        .map_err(EtscError::from)?
        .split(&data)
        .map_err(EtscError::from)?;
    let non_interesting = data
        .class_names()
        .iter()
        .position(|c| c == "non-interesting")
        .expect("biological dataset has the non-interesting class");
    let mut identified_early = 0usize;
    let mut total = 0usize;
    for fold in &folds {
        let train = data.subset(&fold.train);
        // TEASER wrapped for the 3-variable dataset.
        let mut clf = etsc_core::VotingAdapter::new(move || {
            Teaser::new(TeaserConfig {
                s_prefixes: 5,
                ..TeaserConfig::default()
            })
        });
        clf.fit(&train)?;
        for &i in &fold.test {
            if data.label(i) != non_interesting {
                continue;
            }
            total += 1;
            let p = clf.predict_early(data.instance(i))?;
            if p.label == non_interesting && p.prefix_len < data.instance(i).len() {
                identified_early += 1;
            }
        }
    }
    Ok(identified_early as f64 / total.max(1) as f64)
}

/// Parallel variant of [`run_sweep`]: all datasets are generated first,
/// then the (dataset × algorithm) matrix runs on `threads` workers via
/// [`MatrixRunner`]. Faster wall-clock, but CPU contention inflates the
/// per-run train/test timings — prefer the sequential sweep when
/// reproducing Figures 12/13.
///
/// # Errors
/// Propagates harness failures (budget overruns still surface as DNF
/// results).
pub fn run_sweep_parallel(
    datasets: &[PaperDataset],
    algos: &[AlgoSpec],
    preset: ScalePreset,
    seed: u64,
    threads: usize,
    mut progress: impl FnMut(&str),
) -> Result<SweepOutput, etsc_core::EtscError> {
    let config = preset.run_config();
    let mut categories = BTreeMap::new();
    let mut dataset_meta = BTreeMap::new();
    let mut generated = Vec::with_capacity(datasets.len());
    for &ds in datasets {
        let spec = ds.spec();
        let data = ds.generate(preset.options(ds, seed));
        progress(&format!(
            "dataset {} generated: {} instances x {} vars x {} points",
            spec.name,
            data.len(),
            data.vars(),
            data.max_len()
        ));
        categories.insert(spec.name.to_owned(), spec.categories.to_vec());
        dataset_meta.insert(
            spec.name.to_owned(),
            (spec.obs_frequency_secs, data.max_len()),
        );
        generated.push(data);
    }
    progress(&format!(
        "running {} x {} matrix on {} threads",
        generated.len(),
        algos.len(),
        threads
    ));
    let results = MatrixRunner::new(config.clone())
        .parallel(threads)
        .obs(etsc_obs::ambient())
        .run_results(&generated, algos)?;
    Ok(SweepOutput {
        results,
        categories,
        dataset_meta,
        config,
    })
}

/// A sweep run under the fault-tolerant supervisor: per-cell outcomes
/// instead of a flat result list, so a panicking or erroring cell is
/// reported rather than aborting the matrix.
pub struct SupervisedSweepOutput {
    /// Per-cell outcomes in (dataset × algorithm) row-major order.
    pub outcomes: Vec<CellOutcome>,
    /// Dataset name → Table 3 categories.
    pub categories: BTreeMap<String, Vec<Category>>,
    /// Dataset name → (observation frequency secs, generated length).
    pub dataset_meta: BTreeMap<String, (f64, usize)>,
    /// The run configuration used.
    pub config: RunConfig,
}

impl SupervisedSweepOutput {
    /// The finished runs (including DNF cells), for the figure
    /// aggregations; `ERR`/`PANIC` cells are excluded, matching how the
    /// paper's plots omit cells without results.
    pub fn results(&self) -> Vec<RunResult> {
        self.outcomes
            .iter()
            .filter_map(|c| c.run_result().cloned())
            .collect()
    }

    /// (ok, dnf, err, panic) cell counts.
    pub fn status_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for c in &self.outcomes {
            match c.status() {
                CellStatus::Ok => counts.0 += 1,
                CellStatus::Dnf => counts.1 += 1,
                CellStatus::Err => counts.2 += 1,
                CellStatus::Panic => counts.3 += 1,
            }
        }
        counts
    }
}

/// Supervised variant of [`run_sweep_parallel`]: the matrix runs under
/// a supervised [`MatrixRunner`] with panic isolation, bounded retries,
/// an optional training-budget override, and optional journal
/// checkpoint/resume.
///
/// # Errors
/// Only infrastructure failures (journal I/O, resume-header mismatch).
/// Per-cell failures become `ERR`/`PANIC`/`DNF` outcomes.
pub fn run_sweep_supervised(
    datasets: &[PaperDataset],
    algos: &[AlgoSpec],
    preset: ScalePreset,
    seed: u64,
    budget: Option<std::time::Duration>,
    options: &SupervisorOptions,
    mut progress: impl FnMut(&str),
) -> Result<SupervisedSweepOutput, EtscError> {
    let mut config = preset.run_config();
    if let Some(budget) = budget {
        config.train_budget = budget;
    }
    let mut categories = BTreeMap::new();
    let mut dataset_meta = BTreeMap::new();
    let mut generated = Vec::with_capacity(datasets.len());
    for &ds in datasets {
        let spec = ds.spec();
        let data = ds.generate(preset.options(ds, seed));
        progress(&format!(
            "dataset {} generated: {} instances x {} vars x {} points",
            spec.name,
            data.len(),
            data.vars(),
            data.max_len()
        ));
        categories.insert(spec.name.to_owned(), spec.categories.to_vec());
        dataset_meta.insert(
            spec.name.to_owned(),
            (spec.obs_frequency_secs, data.max_len()),
        );
        generated.push(data);
    }
    progress(&format!(
        "supervising {} x {} matrix on {} threads (retries {}, journal {:?})",
        generated.len(),
        algos.len(),
        options.max_threads,
        options.retries,
        options.journal
    ));
    let outcomes = MatrixRunner::new(config.clone())
        .supervised(options.clone())
        .obs(etsc_obs::ambient())
        .run(&generated, algos)?;
    Ok(SupervisedSweepOutput {
        outcomes,
        categories,
        dataset_meta,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_scale() {
        assert_eq!(ScalePreset::parse("quick"), Some(ScalePreset::Quick));
        assert_eq!(ScalePreset::parse("FULL"), Some(ScalePreset::Full));
        assert_eq!(ScalePreset::parse("nope"), None);
        let o = ScalePreset::Quick.options(PaperDataset::Maritime, 1);
        assert!(o.height_scale < 0.01);
        let o = ScalePreset::Full.options(PaperDataset::Maritime, 1);
        assert_eq!(o.height_scale, 1.0);
    }

    #[test]
    fn static_tables_render() {
        let t2 = render_table2();
        assert!(t2.contains("ECEC") && t2.contains("Model-based"));
        let t4 = render_table4(ScalePreset::Quick);
        assert!(t4.contains("TEASER"));
        let t5 = render_table5();
        assert!(t5.contains("S-MINI") && t5.contains("O("));
    }

    #[test]
    fn table3_includes_all_datasets() {
        let t3 = render_table3(ScalePreset::Quick, 3);
        for ds in PaperDataset::ALL {
            assert!(t3.contains(ds.spec().name), "{} missing", ds.spec().name);
        }
    }

    #[test]
    fn supervised_sweep_reports_outcomes_and_budget_override() {
        let options = SupervisorOptions {
            max_threads: 1,
            ..SupervisorOptions::default()
        };
        let out = run_sweep_supervised(
            &[PaperDataset::PowerCons],
            &[AlgoSpec::Ects],
            ScalePreset::Quick,
            5,
            None,
            &options,
            |_| {},
        )
        .unwrap();
        assert_eq!(out.outcomes.len(), 1);
        assert_eq!(out.status_counts(), (1, 0, 0, 0));
        assert_eq!(out.results().len(), 1);

        // A zero-second budget override turns the cell into a DNF.
        let out = run_sweep_supervised(
            &[PaperDataset::PowerCons],
            &[AlgoSpec::Ects],
            ScalePreset::Quick,
            5,
            Some(std::time::Duration::ZERO),
            &options,
            |_| {},
        )
        .unwrap();
        assert_eq!(out.status_counts(), (0, 1, 0, 0));
        assert!(out.results()[0].dnf);
    }

    #[test]
    fn tiny_sweep_produces_results() {
        let out = run_sweep(
            &[PaperDataset::PowerCons],
            &[AlgoSpec::Ects],
            ScalePreset::Quick,
            5,
            |_| {},
        )
        .unwrap();
        assert_eq!(out.results.len(), 1);
        assert!(out.results[0].metrics.is_some());
        assert!(out.categories.contains_key("PowerCons"));
    }
}
