//! Implementation of the `etsc` command-line interface (see `main.rs`
//! for the command grammar). The logic lives in the library so the test
//! suite can drive every command against an in-memory writer.

use std::collections::HashMap;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use etsc_core::registry::trigger_combos;
use etsc_core::{EarlyClassifier, TriggeredBase};
use etsc_data::loader::{load_csv, write_csv};
use etsc_data::{train_validation_split, Dataset};
use etsc_datasets::{GenOptions, PaperDataset};
use etsc_eval::experiment::{run_cell, AlgoSpec, RunConfig};
use etsc_eval::report::render_matrix_status;
use etsc_eval::supervisor::SupervisorOptions;
use etsc_eval::{CommonOpts, FaultPlan, MatrixRunner, TriggerCellResult};
use etsc_net::{
    AdmissionConfig, Client, ClientConfig, Endpoint, NetError, RouterBuilder, ServerBuilder,
};
use etsc_serve::{
    fit_model, fit_triggered_model, load_resilient, replay_dataset, Backpressure, BrownoutConfig,
    CodelConfig, DeadlineConfig, FallbackPolicy, ReplayOptions, SchedulerConfig, StoredModel,
    SupervisionConfig,
};
use etsc_trigger::{CalibrationKind, TriggerKind, TriggerSpec};

/// Usage text shown on argument errors.
pub const USAGE: &str = "\
usage: etsc <command> [--flag value ...]

shared flags (canonical spellings, accepted by evaluate, matrix,
train, and serve; `reproduce` uses the same names):
  --seed N  --folds N  --threads N  --fit-threads N  --budget-secs N
  --retries N  --journal FILE  --resume  --trace FILE  --metrics FILE
  (--parallel is a deprecated alias for --threads; --trace writes a
  JSONL span trace, --metrics a Prometheus text snapshot)

trigger flags (train, matrix, serve):
  --trigger NAME[:PARAMS]   wrap a probability-emitting base classifier
                            (MiniROCKET | WEASEL | MLSTM) in a decision
                            trigger; families: threshold, patience,
                            cost, calibrated (see list-triggers)
  --calibrate platt|isotonic|none   calibration layer for the trigger's
                            confidence scores
  on matrix, --trigger takes a ';'-separated list of specs and --algos
  names base classifiers; on serve, --trigger re-parameterizes the
  stored trigger without refitting (data-free families only)

commands:
  list-algorithms    the eight evaluated algorithms and their traits
  list-triggers      the trigger families and every registered
                     base-classifier x trigger combination
  list-datasets      the twelve paper datasets and their shapes
  generate           write a generated dataset as interchange CSV
                     --dataset NAME --out FILE
                     [--height-scale S] [--length-scale S] [--seed N]
  evaluate           cross-validated metrics for one algorithm
                     (--dataset NAME | --data FILE --vars K) --algo NAME
                     [--folds N] [--seed N] [--budget-secs N]
                     [--trace FILE] [--metrics FILE]
  matrix             supervised (datasets x algorithms) evaluation:
                     panic isolation, retries, checkpoint/resume
                     [--datasets A,B,..] [--algos X,Y,..] [--folds N]
                     [--seed N] [--budget-secs N] [--retries N]
                     [--threads N] [--fit-threads N] [--journal FILE]
                     [--resume] [--trace FILE] [--metrics FILE]
                     [--height-scale S] [--length-scale S]
  stream             replay one instance point-by-point
                     (--dataset NAME | --data FILE --vars K) --algo NAME
                     [--instance I] [--seed N]
  train              fit one algorithm and persist the model
                     (--dataset NAME | --data FILE --vars K) --algo NAME
                     --save FILE [--seed N] [--budget-secs N]
                     [--height-scale S] [--length-scale S]
  serve              replay a dataset through a saved model as
                     concurrent streaming sessions, or (with --listen)
                     serve the model over TCP
                     --model FILE (--replay NAME | --data FILE --vars K)
                     [--sessions N] [--workers N] [--queue N] [--shed]
                     [--obs-freq SECS] [--height-scale S]
                     [--length-scale S] [--seed N]
                     [--deadline-ms N] [--fallback wait|prior|decide-now]
                     [--max-restarts N] [--faults SPEC]
                     [--trace FILE] [--metrics FILE]
                     network mode: --model FILE --listen ADDR
                     [--max-conns N] [--queue N] [--shed]
                     [--event-loops N] (0 = auto-size to the machine)
                     [--deadline-ms N] [--fallback wait|prior|decide-now]
                     [--faults SPEC --fault-sessions N]
                     [--duration-secs N] (0 = until a client requests
                     shutdown) [--trace FILE] [--metrics FILE]
                     [--admission] (CoDel shedding + per-client rate
                     limits + brownout degradation under overload)
                     [--admission-open-rate R] [--codel-target-ms N]
                     [--brownout-high-ms N] [--brownout-tighten-ms N]
                     SPEC example: seed=42,panics=1,delay-rate=0.05,
                     delay-ms=50,nan-rate=0.02,corrupt-model=true
                     (network faults: torn-rate, disconnect-rate,
                     loris-rate, loris-ms)
  route              front a fleet of serving shards with a
                     consistent-hash session router (health probes,
                     circuit breakers, migration on shard death)
                     --listen ADDR --shards A,B,C
                     [--max-conns N] [--vnodes N]
                     [--probe-interval-ms N] [--probe-timeout-ms N]
                     [--duration-secs N] (0 = until a client requests
                     shutdown) [--trace FILE] [--metrics FILE]
  replicate          copy a saved model to shard replica paths
                     --model FILE --to F1,F2,..
  predict            classify instances with a saved model, locally or
                     against a remote server
                     --model FILE (--dataset NAME | --data FILE --vars K)
                     [--instance I] [--stream]
                     network mode: --connect ADDR
                     (--dataset NAME | --data FILE --vars K)
                     [--instance I] [--feedback] (report the true label
                     back after the verdict so an adapting server can
                     learn from it)";

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments; print usage.
    Usage(String),
    /// The command itself failed.
    Runtime(String),
}

type Flags = HashMap<String, String>;

fn parse<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, CliError> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid --{name} value {v:?}"))),
    }
}

/// Decodes the canonical shared options (`--seed`, `--threads`,
/// `--trace`, ...) out of the flag map; command-specific flags are left
/// for the command to interpret.
fn common_opts(flags: &Flags) -> Result<CommonOpts, CliError> {
    let mut opts = CommonOpts::default();
    for (name, value) in flags {
        opts.accept(name, value).map_err(CliError::Usage)?;
    }
    Ok(opts)
}

fn required<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, CliError> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| CliError::Usage(format!("--{name} is required")))
}

/// Loads the dataset named by `--dataset` (generated) or `--data`+`--vars`
/// (CSV file).
fn load_input(flags: &Flags) -> Result<Dataset, CliError> {
    if let Some(name) = flags.get("dataset") {
        let ds = PaperDataset::by_name(name)
            .ok_or_else(|| CliError::Usage(format!("unknown dataset {name:?}")))?;
        let options = GenOptions {
            height_scale: parse(flags, "height-scale", 0.2_f64)?,
            length_scale: parse(flags, "length-scale", 0.5_f64)?,
            seed: parse(flags, "seed", 7_u64)?,
        };
        Ok(ds.generate(options))
    } else if let Some(path) = flags.get("data") {
        let vars = parse(flags, "vars", 1_usize)?;
        load_csv(path, vars).map_err(|e| CliError::Runtime(format!("loading {path:?}: {e}")))
    } else {
        Err(CliError::Usage(
            "provide --dataset NAME or --data FILE [--vars K]".into(),
        ))
    }
}

/// Loads a model through the crash-consistent path: a corrupt file is
/// quarantined and the `.prev` last-good copy served instead, with the
/// degradation reported on `out`.
fn load_model(path: &std::path::Path, out: &mut dyn Write) -> Result<StoredModel, CliError> {
    let outcome = load_resilient(path)
        .map_err(|e| CliError::Runtime(format!("loading {}: {e}", path.display())))?;
    for warning in &outcome.warnings {
        writeln!(out, "warning: {warning}")
            .map_err(|e| CliError::Runtime(format!("write failed: {e}")))?;
    }
    Ok(outcome.model)
}

fn emit(out: &mut dyn Write, s: String) -> Result<(), CliError> {
    out.write_all(s.as_bytes())
        .map_err(|e| CliError::Runtime(format!("write failed: {e}")))
}

/// Decodes `--deadline-ms` + `--fallback` into a [`DeadlineConfig`].
/// The prior label is a placeholder; both serving paths overwrite it
/// with the stored model's majority training class.
fn parse_deadline(flags: &Flags) -> Result<Option<DeadlineConfig>, CliError> {
    if flags.get("deadline-ms").is_none() {
        return Ok(None);
    }
    let ms: u64 = parse(flags, "deadline-ms", 50_u64)?;
    let policy = match flags.get("fallback").map(String::as_str) {
        None | Some("wait") => FallbackPolicy::Wait,
        Some("prior") => FallbackPolicy::PriorClass,
        Some("decide-now") => FallbackPolicy::DecideNow,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "invalid --fallback {other:?} (wait | prior | decide-now)"
            )))
        }
    };
    Ok(Some(DeadlineConfig {
        deadline: Duration::from_millis(ms),
        policy,
        prior_label: 0,
    }))
}

fn parse_faults(flags: &Flags) -> Result<Option<FaultPlan>, CliError> {
    match flags.get("faults") {
        None => Ok(None),
        Some(spec) => FaultPlan::parse(spec)
            .map(Some)
            .map_err(|e| CliError::Usage(format!("invalid --faults: {e}"))),
    }
}

/// Decodes `--trigger NAME[:PARAMS]` (+ optional `--calibrate`) into a
/// [`TriggerSpec`]. `None` when `--trigger` is absent.
fn parse_trigger(flags: &Flags) -> Result<Option<TriggerSpec>, CliError> {
    let spec = match flags.get("trigger") {
        None => {
            if flags.contains_key("calibrate") {
                return Err(CliError::Usage(
                    "--calibrate needs --trigger NAME[:PARAMS]".into(),
                ));
            }
            return Ok(None);
        }
        Some(s) => {
            TriggerSpec::parse(s).map_err(|e| CliError::Usage(format!("invalid --trigger: {e}")))?
        }
    };
    Ok(Some(apply_calibrate(spec, flags)?))
}

/// Applies the `--calibrate` override to one parsed spec.
fn apply_calibrate(spec: TriggerSpec, flags: &Flags) -> Result<TriggerSpec, CliError> {
    match flags.get("calibrate") {
        None => Ok(spec),
        Some(c) => {
            let kind = CalibrationKind::parse(c).ok_or_else(|| {
                CliError::Usage(format!(
                    "invalid --calibrate {c:?} (platt | isotonic | none)"
                ))
            })?;
            if spec.kind == TriggerKind::Calibrated && kind == CalibrationKind::None {
                return Err(CliError::Usage(
                    "the calibrated trigger requires platt or isotonic calibration".into(),
                ));
            }
            Ok(spec.with_calibration(kind))
        }
    }
}

/// Serve-time `--trigger` override: re-parameterizes the stored trigger
/// of a loaded trigger-wrapped model without refitting.
fn apply_trigger_override(stored: &mut StoredModel, flags: &Flags) -> Result<(), CliError> {
    let Some(spec) = parse_trigger(flags)? else {
        return Ok(());
    };
    let prior = stored.model.fitted_trigger().cloned().ok_or_else(|| {
        CliError::Usage(
            "--trigger on serve needs a trigger-wrapped model (train ... --trigger)".into(),
        )
    })?;
    let trigger = spec.refit_from(&prior).map_err(CliError::Usage)?;
    stored.model.install_trigger(trigger);
    if let Some(desc) = &mut stored.meta.trigger {
        desc.spec = spec.canonical();
    }
    Ok(())
}

/// Renders the trigger-axis matrix results as a fixed-width table.
fn render_trigger_cells(results: &[TriggerCellResult]) -> String {
    let mut s = format!(
        "{:<16}{:<12}{:<36}{:>9}{:>11}{:>9}\n",
        "Dataset", "Base", "Trigger", "acc", "earliness", "HM"
    );
    let mut ok = 0;
    for r in results {
        match (&r.metrics, r.dnf, &r.error) {
            (Some(m), _, _) => {
                ok += 1;
                s.push_str(&format!(
                    "{:<16}{:<12}{:<36}{:>9.4}{:>11.4}{:>9.4}\n",
                    r.dataset, r.base, r.trigger, m.accuracy, m.earliness, m.harmonic_mean
                ));
            }
            (None, true, _) => {
                s.push_str(&format!(
                    "{:<16}{:<12}{:<36}{:>29}\n",
                    r.dataset, r.base, r.trigger, "DNF"
                ));
            }
            (None, _, err) => {
                s.push_str(&format!(
                    "{:<16}{:<12}{:<36}  ERR {}\n",
                    r.dataset,
                    r.base,
                    r.trigger,
                    err.as_deref().unwrap_or("unknown")
                ));
            }
        }
    }
    s.push_str(&format!("{ok} OK of {} trigger cells\n", results.len()));
    s
}

fn build_algo(flags: &Flags, data: &Dataset) -> Result<Box<dyn EarlyClassifier>, CliError> {
    let name = required(flags, "algo")?;
    let spec = AlgoSpec::by_name(name)
        .ok_or_else(|| CliError::Usage(format!("unknown algorithm {name:?}")))?;
    Ok(spec.build(data, &RunConfig::fast()))
}

/// Runs one CLI command, writing human-readable output to `out`.
///
/// # Errors
/// [`CliError::Usage`] for bad arguments, [`CliError::Runtime`] for
/// execution failures.
pub fn run(command: &str, flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    match command {
        "list-algorithms" => {
            let mut s = format!(
                "{:<10}{:<14}{:<22}\n",
                "Name", "Kind", "Multivariate support"
            );
            for a in AlgoSpec::ALL {
                s.push_str(&format!(
                    "{:<10}{:<14}{:<22}\n",
                    a.name(),
                    if a.univariate_only() { "ETSC" } else { "STRUT" },
                    if a.univariate_only() {
                        "via voting adapter"
                    } else {
                        "native"
                    },
                ));
            }
            emit(out, s)
        }
        "list-triggers" => {
            let mut s = String::from("trigger families (--trigger NAME[:PARAMS]):\n");
            for info in etsc_trigger::all_triggers() {
                s.push_str(&format!(
                    "  {:<12}{:<12}{}\n  {:<12}params: {}\n",
                    info.name,
                    if info.myopic { "myopic" } else { "non-myopic" },
                    info.summary,
                    "",
                    info.params,
                ));
            }
            s.push_str("\nregistered base x trigger combos (train/matrix --trigger):\n");
            for combo in trigger_combos() {
                s.push_str(&format!(
                    "  {:<24}default spec: {}\n",
                    combo.name(),
                    combo.default_spec
                ));
            }
            emit(out, s)
        }
        "list-datasets" => {
            let mut s = format!(
                "{:<24}{:>8}{:>8}{:>6}{:>9}  {}\n",
                "Name", "height", "length", "vars", "classes", "frequency (s/obs)"
            );
            for d in PaperDataset::ALL {
                let spec = d.spec();
                s.push_str(&format!(
                    "{:<24}{:>8}{:>8}{:>6}{:>9}  {}\n",
                    spec.name,
                    spec.height,
                    spec.length,
                    spec.vars,
                    spec.n_classes,
                    spec.obs_frequency_secs
                ));
            }
            emit(out, s)
        }
        "generate" => {
            let data = load_input(flags)?;
            let path = required(flags, "out")?;
            let file = std::fs::File::create(path)
                .map_err(|e| CliError::Runtime(format!("creating {path:?}: {e}")))?;
            write_csv(&data, std::io::BufWriter::new(file))
                .map_err(|e| CliError::Runtime(format!("writing {path:?}: {e}")))?;
            emit(
                out,
                format!(
                    "wrote {} instances x {} vars x {} points to {path}\n",
                    data.len(),
                    data.vars(),
                    data.max_len()
                ),
            )
        }
        "evaluate" => {
            let data = load_input(flags)?;
            let name = required(flags, "algo")?;
            let spec = AlgoSpec::by_name(name)
                .ok_or_else(|| CliError::Usage(format!("unknown algorithm {name:?}")))?;
            let opts = common_opts(flags)?;
            let mut config = RunConfig {
                folds: 3,
                seed: 2024,
                ..RunConfig::fast()
            };
            opts.apply_config(&mut config);
            let obs = opts.build_obs();
            let result = run_cell(spec, &data, &config, &obs);
            opts.export(&obs)
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            let r = result.map_err(|e| CliError::Runtime(format!("evaluation failed: {e}")))?;
            match r.metrics {
                Some(m) => emit(
                    out,
                    format!(
                        "{} on {} ({} folds)\n\
                         accuracy       {:.4}\n\
                         f1 (macro)     {:.4}\n\
                         earliness      {:.4}\n\
                         harmonic mean  {:.4}\n\
                         train          {:.2} s/fold\n\
                         test           {:.3} ms/instance\n",
                        spec.name(),
                        data.name(),
                        config.folds,
                        m.accuracy,
                        m.f1,
                        m.earliness,
                        m.harmonic_mean,
                        r.train_secs,
                        r.test_secs_per_instance * 1000.0
                    ),
                ),
                None => emit(
                    out,
                    format!(
                        "{} on {}: DNF (training budget exceeded)\n",
                        spec.name(),
                        data.name()
                    ),
                ),
            }
        }
        "matrix" => {
            let datasets: Vec<PaperDataset> = match flags.get("datasets") {
                None => PaperDataset::ALL.to_vec(),
                Some(list) => list
                    .split(',')
                    .map(|name| {
                        PaperDataset::by_name(name.trim())
                            .ok_or_else(|| CliError::Usage(format!("unknown dataset {name:?}")))
                    })
                    .collect::<Result<_, _>>()?,
            };
            let opts = common_opts(flags)?;
            let mut config = RunConfig {
                folds: 3,
                seed: 2024,
                ..RunConfig::fast()
            };
            opts.apply_config(&mut config);
            let options = opts.supervisor_options(SupervisorOptions {
                max_threads: 2,
                ..SupervisorOptions::default()
            });
            if options.resume && options.journal.is_none() {
                return Err(CliError::Usage("--resume needs --journal FILE".into()));
            }
            let gen_options = GenOptions {
                height_scale: parse(flags, "height-scale", 0.2_f64)?,
                length_scale: parse(flags, "length-scale", 0.5_f64)?,
                seed: config.seed,
            };
            let generated: Vec<Dataset> =
                datasets.iter().map(|d| d.generate(gen_options)).collect();
            let names: Vec<String> = generated.iter().map(|d| d.name().to_owned()).collect();
            let obs = opts.build_obs();
            // `--trigger` switches the matrix to its trigger axis:
            // `--algos` then names base classifiers and the trigger list
            // is ';'-separated (spec params use ',').
            if let Some(list) = flags.get("trigger") {
                let specs: Vec<TriggerSpec> = list
                    .split(';')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| {
                        let spec = TriggerSpec::parse(s.trim())
                            .map_err(|e| CliError::Usage(format!("invalid --trigger: {e}")))?;
                        apply_calibrate(spec, flags)
                    })
                    .collect::<Result<_, _>>()?;
                if specs.is_empty() {
                    return Err(CliError::Usage("--trigger names no specs".into()));
                }
                let bases: Vec<TriggeredBase> = match flags.get("algos") {
                    None => vec![TriggeredBase::MiniRocket, TriggeredBase::Weasel],
                    Some(list) => list
                        .split(',')
                        .map(|name| {
                            TriggeredBase::parse(name.trim()).ok_or_else(|| {
                                CliError::Usage(format!(
                                    "unknown base classifier {name:?} \
                                     (MiniROCKET | WEASEL | MLSTM)"
                                ))
                            })
                        })
                        .collect::<Result<_, _>>()?,
                };
                let results = MatrixRunner::new(config)
                    .supervised(options)
                    .obs(obs.clone())
                    .run_triggered(&generated, &bases, &specs)
                    .map_err(|e| CliError::Runtime(format!("trigger matrix failed: {e}")))?;
                opts.export(&obs)
                    .map_err(|e| CliError::Runtime(e.to_string()))?;
                return emit(out, render_trigger_cells(&results));
            }
            let algos: Vec<AlgoSpec> = match flags.get("algos") {
                None => AlgoSpec::ALL.to_vec(),
                Some(list) => list
                    .split(',')
                    .map(|name| {
                        AlgoSpec::by_name(name.trim())
                            .ok_or_else(|| CliError::Usage(format!("unknown algorithm {name:?}")))
                    })
                    .collect::<Result<_, _>>()?,
            };
            let outcomes = MatrixRunner::new(config)
                .supervised(options)
                .obs(obs.clone())
                .run(&generated, &algos)
                .map_err(|e| CliError::Runtime(format!("supervised matrix failed: {e}")))?;
            opts.export(&obs)
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            emit(out, render_matrix_status(&outcomes, &names))
        }
        "stream" => {
            let data = load_input(flags)?;
            let instance_idx = parse(flags, "instance", 0_usize)?;
            if instance_idx >= data.len() {
                return Err(CliError::Usage(format!(
                    "--instance {instance_idx} out of range (dataset has {})",
                    data.len()
                )));
            }
            let seed = parse(flags, "seed", 2024_u64)?;
            // Train on everything except a stratified quarter containing
            // the chosen instance being held out manually.
            let (mut train_idx, _) = train_validation_split(&data, 0.1, seed)
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            train_idx.retain(|&i| i != instance_idx);
            let train = data.subset(&train_idx);
            let mut clf = build_algo(flags, &data)?;
            clf.fit(&train)
                .map_err(|e| CliError::Runtime(format!("training failed: {e}")))?;
            let inst = data.instance(instance_idx);
            let mut stream = clf
                .start_stream()
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            let mut s = format!(
                "streaming instance {instance_idx} (true class: {})\n",
                data.class_names()[data.label(instance_idx)]
            );
            for t in 1..=inst.len() {
                let prefix = inst
                    .prefix(t)
                    .map_err(|e| CliError::Runtime(e.to_string()))?;
                match stream
                    .observe(&prefix, t == inst.len())
                    .map_err(|e| CliError::Runtime(e.to_string()))?
                {
                    Some(label) => {
                        s.push_str(&format!(
                            "t={t:>4}: COMMITTED -> {} (earliness {:.3})\n",
                            data.class_names()[label],
                            t as f64 / inst.len() as f64
                        ));
                        return emit(out, s);
                    }
                    None => {
                        if t % (inst.len() / 8).max(1) == 0 {
                            s.push_str(&format!("t={t:>4}: waiting for more data\n"));
                        }
                    }
                }
            }
            Err(CliError::Runtime(
                "stream ended without a decision (algorithm bug)".into(),
            ))
        }
        "train" => {
            let data = load_input(flags)?;
            let name = required(flags, "algo")?;
            let save_path = required(flags, "save")?;
            let opts = common_opts(flags)?;
            let mut config = RunConfig {
                seed: 2024,
                ..RunConfig::fast()
            };
            opts.apply_config(&mut config);
            let stored = match parse_trigger(flags)? {
                // `--trigger` wraps a probability-emitting base
                // classifier instead of training a built-in algorithm.
                Some(spec) => {
                    let base = TriggeredBase::parse(name).ok_or_else(|| {
                        CliError::Usage(format!(
                            "--trigger wraps a base classifier, not an algorithm; \
                             unknown base {name:?} (MiniROCKET | WEASEL | MLSTM)"
                        ))
                    })?;
                    fit_triggered_model(base, &spec, &data, &config)
                }
                None => {
                    let spec = AlgoSpec::by_name(name)
                        .ok_or_else(|| CliError::Usage(format!("unknown algorithm {name:?}")))?;
                    fit_model(spec, &data, &config)
                }
            }
            .map_err(|e| CliError::Runtime(format!("training failed: {e}")))?;
            stored
                .save(save_path)
                .map_err(|e| CliError::Runtime(format!("saving {save_path:?}: {e}")))?;
            let size = std::fs::metadata(save_path).map(|m| m.len()).unwrap_or(0);
            emit(
                out,
                format!(
                    "saved {} trained on {} ({} instances x {} vars x {} points, {} classes) \
                     to {save_path} ({size} bytes)\n",
                    stored.meta.algo_label(),
                    data.name(),
                    data.len(),
                    data.vars(),
                    data.max_len(),
                    stored.meta.class_names.len(),
                ),
            )
        }
        "serve" => {
            if let Some(addr) = flags.get("listen") {
                return serve_listen(addr, flags, out);
            }
            let model_path = required(flags, "model")?;
            let faults = parse_faults(flags)?;
            let mut stored = match &faults {
                // A corrupt-model fault stages a bit-flipped copy (with
                // a pristine `.prev`) in a temp dir and loads it through
                // the resilient path, demonstrating last-good fallback.
                Some(plan) if plan.corrupt_model => {
                    let bytes = std::fs::read(model_path)
                        .map_err(|e| CliError::Runtime(format!("reading {model_path:?}: {e}")))?;
                    if bytes.is_empty() {
                        return Err(CliError::Runtime(format!("{model_path:?} is empty")));
                    }
                    let dir = std::env::temp_dir().join(format!("etsc-chaos-{}", plan.seed));
                    std::fs::create_dir_all(&dir)
                        .map_err(|e| CliError::Runtime(format!("creating {dir:?}: {e}")))?;
                    let staged = dir.join("chaos.model");
                    std::fs::remove_file(dir.join("chaos.model.quarantine")).ok();
                    std::fs::write(dir.join("chaos.model.prev"), &bytes)
                        .map_err(|e| CliError::Runtime(format!("staging last-good copy: {e}")))?;
                    let mut corrupted = bytes;
                    let offset = plan.corruption_offset(corrupted.len());
                    corrupted[offset] ^= 0xff;
                    std::fs::write(&staged, &corrupted)
                        .map_err(|e| CliError::Runtime(format!("staging corrupt copy: {e}")))?;
                    emit(
                        out,
                        format!(
                            "fault: flipped byte {offset} of {} (pristine .prev kept)\n",
                            staged.display()
                        ),
                    )?;
                    load_model(&staged, out)?
                }
                _ => load_model(std::path::Path::new(model_path), out)?,
            };
            apply_trigger_override(&mut stored, flags)?;
            // `--replay NAME` names a generated dataset; `--data` loads a
            // CSV. Either way the stream is replayed at the dataset's (or
            // an overridden) observation frequency.
            let (data, default_freq) = if let Some(name) = flags.get("replay") {
                let ds = PaperDataset::by_name(name)
                    .ok_or_else(|| CliError::Usage(format!("unknown dataset {name:?}")))?;
                let options = GenOptions {
                    height_scale: parse(flags, "height-scale", 0.2_f64)?,
                    length_scale: parse(flags, "length-scale", 0.5_f64)?,
                    seed: parse(flags, "seed", 7_u64)?,
                };
                (ds.generate(options), ds.spec().obs_frequency_secs)
            } else {
                (load_input(flags)?, 1.0)
            };
            if data.vars() != stored.meta.vars {
                return Err(CliError::Usage(format!(
                    "model expects {} variables, dataset has {}",
                    stored.meta.vars,
                    data.vars()
                )));
            }
            let sessions = parse(flags, "sessions", data.len())?;
            if sessions == 0 || data.is_empty() {
                return Err(CliError::Usage("nothing to serve (0 sessions)".into()));
            }
            let indices: Vec<usize> = (0..sessions).map(|i| i % data.len()).collect();
            let data = data.subset(&indices);
            let batch = stored
                .meta
                .decision_batch(data.max_len(), &RunConfig::fast());
            let deadline = parse_deadline(flags)?;
            let opts = common_opts(flags)?;
            let obs = opts.build_obs();
            let options = ReplayOptions {
                obs_frequency_secs: parse(flags, "obs-freq", default_freq)?,
                batch,
                scheduler: SchedulerConfig {
                    workers: parse(flags, "workers", 4_usize)?,
                    queue_capacity: parse(flags, "queue", 1024_usize)?,
                    backpressure: if parse(flags, "shed", false)? {
                        Backpressure::Shed
                    } else {
                        Backpressure::Block
                    },
                    deadline,
                    supervision: SupervisionConfig {
                        max_restarts: parse(flags, "max-restarts", 3_usize)?,
                        ..SupervisionConfig::default()
                    },
                    faults,
                    obs: obs.clone(),
                },
            };
            let outcome = replay_dataset(&stored, &data, &options);
            // Flush the registry BEFORE propagating a replay failure: a
            // run whose scheduler shed its final batch must still leave
            // the shed counts in the scrape artifact.
            opts.export(&obs)
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            let outcome = outcome.map_err(|e| CliError::Runtime(format!("replay failed: {e}")))?;
            let mut rendered = outcome.render();
            if opts.metrics.is_some() {
                // Dump the snapshot into the report too, so the figures
                // and the scrape artifact can be eyeballed side by side.
                rendered.push_str("\nmetrics snapshot:\n");
                rendered.push_str(&obs.metrics.render_prometheus());
            }
            emit(out, rendered)
        }
        "route" => {
            let addr = required(flags, "listen")?;
            route_listen(addr, flags, out)
        }
        "replicate" => {
            let model_path = required(flags, "model")?;
            let to = required(flags, "to")?;
            let dests: Vec<&str> = to.split(',').filter(|s| !s.is_empty()).collect();
            if dests.is_empty() {
                return Err(CliError::Usage("--to needs at least one path".into()));
            }
            let model = etsc_serve::replicate(model_path, &dests)
                .map_err(|e| CliError::Runtime(format!("replicating {model_path:?}: {e}")))?;
            emit(
                out,
                format!(
                    "replicated {} ({} on {}) to {} path{}\n",
                    model_path,
                    model.meta.algo_label(),
                    model.meta.dataset,
                    dests.len(),
                    if dests.len() == 1 { "" } else { "s" },
                ),
            )
        }
        "predict" => {
            if let Some(addr) = flags.get("connect") {
                return predict_connect(addr, flags, out);
            }
            let model_path = required(flags, "model")?;
            let stored = load_model(std::path::Path::new(model_path), out)?;
            let data = load_input(flags)?;
            let instance_idx = parse(flags, "instance", 0_usize)?;
            if instance_idx >= data.len() {
                return Err(CliError::Usage(format!(
                    "--instance {instance_idx} out of range (dataset has {})",
                    data.len()
                )));
            }
            let inst = data.instance(instance_idx);
            let class_name = |label: usize| {
                stored
                    .meta
                    .class_names
                    .get(label)
                    .map_or_else(|| format!("class {label}"), Clone::clone)
            };
            if parse(flags, "stream", false)? {
                // Incremental mode: feed the instance observation by
                // observation through a live session.
                let mut session =
                    etsc_serve::StreamSession::new(stored.classifier(), inst.vars(), inst.len(), 1)
                        .map_err(|e| CliError::Runtime(e.to_string()))?;
                let mut s = format!("streaming instance {instance_idx} through {model_path}\n");
                for t in 0..inst.len() {
                    let row: Vec<f64> = (0..inst.vars()).map(|v| inst.at(v, t)).collect();
                    match session
                        .push(&row)
                        .map_err(|e| CliError::Runtime(e.to_string()))?
                    {
                        Some(p) => {
                            s.push_str(&format!(
                                "t={:>4}: COMMITTED -> {} (earliness {:.3})\n",
                                t + 1,
                                class_name(p.label),
                                p.prefix_len as f64 / inst.len() as f64
                            ));
                            return emit(out, s);
                        }
                        None => {
                            if (t + 1) % (inst.len() / 8).max(1) == 0 {
                                s.push_str(&format!("t={:>4}: waiting for more data\n", t + 1));
                            }
                        }
                    }
                }
                Err(CliError::Runtime(
                    "stream ended without a decision (algorithm bug)".into(),
                ))
            } else {
                let p = stored
                    .classifier()
                    .predict_early(inst)
                    .map_err(|e| CliError::Runtime(e.to_string()))?;
                emit(
                    out,
                    format!(
                        "instance {instance_idx}: {} at prefix {} of {} (earliness {:.3})\n",
                        class_name(p.label),
                        p.prefix_len,
                        inst.len(),
                        p.prefix_len as f64 / inst.len() as f64
                    ),
                )
            }
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

/// `etsc serve --listen ADDR`: expose a saved model over TCP via the
/// `etsc-net` wire protocol. With `--duration-secs 0` (the default)
/// the server runs until a client sends a Shutdown frame; either way
/// the stop is a graceful drain — in-flight sessions get answers.
fn serve_listen(addr: &str, flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let model_path = required(flags, "model")?;
    let faults = parse_faults(flags)?;
    let fault_horizon = parse(flags, "fault-sessions", 0_usize)?;
    if faults.is_some() && fault_horizon == 0 {
        return Err(CliError::Usage(
            "--faults on the network path needs --fault-sessions N".into(),
        ));
    }
    let mut stored = load_model(std::path::Path::new(model_path), out)?;
    apply_trigger_override(&mut stored, flags)?;
    let opts = common_opts(flags)?;
    let obs = opts.build_obs();
    // `--admission` arms overload control: CoDel-style shedding on
    // measured sojourn, per-client open rate limits, and the brownout
    // degradation ladder. The tuning flags override the defaults.
    let admission = if parse(flags, "admission", false)? {
        let defaults = AdmissionConfig::default();
        Some(AdmissionConfig {
            open_rate: parse(flags, "admission-open-rate", defaults.open_rate)?,
            codel: CodelConfig {
                target: Duration::from_millis(parse(flags, "codel-target-ms", 5_u64)?),
                ..CodelConfig::default()
            },
            brownout: BrownoutConfig {
                high_water: Duration::from_millis(parse(flags, "brownout-high-ms", 20_u64)?),
                ..BrownoutConfig::default()
            },
            tightened_deadline: Duration::from_millis(parse(flags, "brownout-tighten-ms", 10_u64)?),
            ..defaults
        })
    } else {
        None
    };
    let mut builder = ServerBuilder::new()
        .max_connections(parse(flags, "max-conns", 64_usize)?)
        .max_pending_frames(parse(flags, "queue", 1024_usize)?)
        .backpressure(if parse(flags, "shed", false)? {
            Backpressure::Shed
        } else {
            Backpressure::Block
        })
        // 0 = auto-size to the machine (clamped by the server).
        .event_loop_threads(parse(flags, "event-loops", 0_usize)?)
        .obs(obs.clone());
    if let Some(mut d) = parse_deadline(flags)? {
        d.prior_label = stored.meta.prior_label;
        builder = builder.deadline(d);
    }
    if let Some(plan) = faults {
        builder = builder.faults(plan, fault_horizon);
    }
    if let Some(a) = admission {
        builder = builder.admission(a);
    }
    let meta = stored.meta.clone();
    let server = Endpoint::serve(Arc::new(stored), addr, builder)
        .map_err(|e| CliError::Runtime(format!("binding {addr}: {e}")))?;
    emit(
        out,
        format!(
            "serving {} trained on {} at {}\n",
            meta.algo_label(),
            meta.dataset,
            server.local_addr()
        ),
    )?;
    out.flush()
        .map_err(|e| CliError::Runtime(format!("write failed: {e}")))?;
    let duration = parse(flags, "duration-secs", 0_u64)?;
    let started = Instant::now();
    while !server.is_draining() {
        if duration > 0 && started.elapsed() >= Duration::from_secs(duration) {
            server.shutdown();
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let stats = server.join();
    opts.export(&obs)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let mut s = format!(
        "drained after {:.1} s\n\
         connections    {} accepted, {} shed, {} closed\n\
         sessions       {} opened, {} resumed, {} decided ({} at drain), \
         {} failed, {} abandoned\n\
         frames         {} read, {} written, {} shed\n\
         faults         {} protocol errors, {} worker panics\n\
         overload       {} sessions shed, {} rate-limited, {} observations expired, \
         {} decisions degraded, {} brownout transitions\n\
         open sessions at exit: {}\n",
        started.elapsed().as_secs_f64(),
        stats.connections_accepted,
        stats.connections_shed,
        stats.connections_closed,
        stats.sessions_opened,
        stats.sessions_resumed,
        stats.sessions_decided,
        stats.drain_decisions,
        stats.sessions_failed,
        stats.sessions_abandoned,
        stats.frames_read,
        stats.frames_written,
        stats.frames_shed,
        stats.proto_errors,
        stats.worker_panics,
        stats.sessions_shed,
        stats.sessions_rate_limited,
        stats.observations_expired,
        stats.decisions_degraded,
        stats.brownout_transitions,
        stats.open_sessions(),
    );
    if opts.metrics.is_some() {
        s.push_str("\nmetrics snapshot:\n");
        s.push_str(&obs.metrics.render_prometheus());
    }
    emit(out, s)
}

/// `etsc route --listen ADDR --shards A,B,C`: front a fleet of
/// `etsc serve --listen` shards with the consistent-hash session
/// router. Runs until a client sends a Shutdown frame (or the
/// `--duration-secs` budget elapses), then drains gracefully.
fn route_listen(addr: &str, flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let shards_flag = required(flags, "shards")?;
    let shards: Vec<String> = shards_flag
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if shards.is_empty() {
        return Err(CliError::Usage(
            "--shards needs at least one address".into(),
        ));
    }
    let opts = common_opts(flags)?;
    let obs = opts.build_obs();
    let builder = RouterBuilder::new()
        .max_connections(parse(flags, "max-conns", 64_usize)?)
        .vnodes(parse(flags, "vnodes", 64_usize)?)
        .probes(
            Duration::from_millis(parse(flags, "probe-interval-ms", 200_u64)?),
            Duration::from_millis(parse(flags, "probe-timeout-ms", 500_u64)?),
        )
        .obs(obs.clone());
    let router = Endpoint::route(addr, &shards, builder)
        .map_err(|e| CliError::Runtime(format!("binding {addr}: {e}")))?;
    emit(
        out,
        format!(
            "routing across {} shard{} at {}\n",
            shards.len(),
            if shards.len() == 1 { "" } else { "s" },
            router.local_addr()
        ),
    )?;
    out.flush()
        .map_err(|e| CliError::Runtime(format!("write failed: {e}")))?;
    let duration = parse(flags, "duration-secs", 0_u64)?;
    let started = Instant::now();
    while !router.is_draining() {
        if duration > 0 && started.elapsed() >= Duration::from_secs(duration) {
            router.shutdown();
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let stats = router.join();
    opts.export(&obs)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let mut s = format!(
        "drained after {:.1} s\n\
         connections    {} accepted, {} shed, {} closed\n\
         sessions       {} opened, {} resumed, {} decided, {} failed, \
         {} abandoned\n\
         fleet          {} migrated, {} handoffs, {} planned drains, \
         {} retired\n\
         health         {} probes, {} shard failures, {} recoveries, \
         {} failovers ({:.1} ms recovering)\n\
         open sessions at exit: {}\n",
        started.elapsed().as_secs_f64(),
        stats.connections_accepted,
        stats.connections_shed,
        stats.connections_closed,
        stats.sessions_opened,
        stats.sessions_resumed,
        stats.sessions_decided,
        stats.sessions_failed,
        stats.sessions_abandoned,
        stats.sessions_migrated,
        stats.handoffs_sent,
        stats.planned_drains,
        stats.shards_retired,
        stats.probes_sent,
        stats.shard_failures,
        stats.shard_recoveries,
        stats.failovers,
        stats.failover_ms(),
        stats.open_sessions(),
    );
    if opts.metrics.is_some() {
        s.push_str("\nmetrics snapshot:\n");
        s.push_str(&obs.metrics.render_prometheus());
    }
    emit(out, s)
}

/// `etsc predict --connect ADDR`: stream one instance to a remote
/// server and report its verdict, using the class names the server
/// advertised in its handshake.
fn predict_connect(addr: &str, flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let net = |e: NetError| CliError::Runtime(format!("server {addr}: {e}"));
    let data = load_input(flags)?;
    let instance_idx = parse(flags, "instance", 0_usize)?;
    if instance_idx >= data.len() {
        return Err(CliError::Usage(format!(
            "--instance {instance_idx} out of range (dataset has {})",
            data.len()
        )));
    }
    let mut client = Client::connect(addr, ClientConfig::default())
        .map_err(|e| CliError::Runtime(format!("connecting to {addr}: {e}")))?;
    let meta = client.meta().clone();
    if data.vars() != meta.vars {
        return Err(CliError::Usage(format!(
            "served model ({} on {}) expects {} variables, dataset has {}",
            meta.algo,
            meta.dataset,
            meta.vars,
            data.vars()
        )));
    }
    let inst = data.instance(instance_idx);
    let started = Instant::now();
    let id = client.open_session(inst.len()).map_err(net)?;
    for t in 0..inst.len() {
        let row: Vec<f64> = (0..inst.vars()).map(|v| inst.at(v, t)).collect();
        client.observe(id, &row).map_err(net)?;
        if client.outcome(id).is_some() {
            break;
        }
        client.poll().map_err(net)?;
    }
    let d = client
        .wait_decision(id, Duration::from_secs(60))
        .map_err(net)?;
    let class = meta
        .classes
        .get(d.label)
        .cloned()
        .unwrap_or_else(|| format!("class {}", d.label));
    let mut s = format!(
        "instance {instance_idx}: {class} at prefix {} of {} \
         (earliness {:.3}, verdict {}, round trip {:.1} ms)\n",
        d.prefix_len,
        inst.len(),
        d.prefix_len as f64 / inst.len().max(1) as f64,
        d.kind.name(),
        started.elapsed().as_secs_f64() * 1e3,
    );
    if parse(flags, "feedback", false)? {
        let truth = data.label(instance_idx);
        client.feedback(id, truth).map_err(net)?;
        s.push_str(&format!(
            "feedback sent: truth {} — prediction was {}\n",
            meta.classes
                .get(truth)
                .cloned()
                .unwrap_or_else(|| format!("class {truth}")),
            if truth == d.label { "correct" } else { "wrong" },
        ));
    }
    emit(out, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn flags(pairs: &[(&str, &str)]) -> Flags {
        pairs
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect()
    }

    fn run_to_string(command: &str, f: &Flags) -> Result<String, CliError> {
        let mut buf = Vec::new();
        run(command, f, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf-8 output"))
    }

    #[test]
    fn lists_algorithms_and_datasets() {
        let out = run_to_string("list-algorithms", &flags(&[])).unwrap();
        assert!(out.contains("ECEC"));
        assert!(out.contains("S-MLSTM"));
        let out = run_to_string("list-datasets", &flags(&[])).unwrap();
        assert!(out.contains("Maritime"));
        assert!(out.contains("80591"));
    }

    #[test]
    fn evaluate_generated_dataset() {
        let out = run_to_string(
            "evaluate",
            &flags(&[
                ("dataset", "PowerCons"),
                ("algo", "ECTS"),
                ("height-scale", "0.2"),
                ("length-scale", "0.3"),
                ("folds", "3"),
            ]),
        )
        .unwrap();
        assert!(out.contains("accuracy"), "{out}");
        assert!(out.contains("harmonic mean"));
    }

    #[test]
    fn generate_then_evaluate_csv_roundtrip() {
        let dir = std::env::temp_dir().join("etsc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("powercons.csv");
        let path_str = path.to_str().unwrap();
        run_to_string(
            "generate",
            &flags(&[
                ("dataset", "PowerCons"),
                ("out", path_str),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
            ]),
        )
        .unwrap();
        let out = run_to_string(
            "evaluate",
            &flags(&[("data", path_str), ("vars", "1"), ("algo", "ECTS")]),
        )
        .unwrap();
        assert!(out.contains("accuracy"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn matrix_runs_supervised_and_resumes_from_journal() {
        let dir = std::env::temp_dir().join("etsc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("matrix.jsonl");
        std::fs::remove_file(&path).ok();
        let path_str = path.to_str().unwrap().to_owned();
        let base = [
            ("datasets", "PowerCons"),
            ("algos", "ECTS,ECO-K"),
            ("height-scale", "0.15"),
            ("length-scale", "0.3"),
            ("threads", "1"),
            ("journal", path_str.as_str()),
        ];
        let out = run_to_string("matrix", &flags(&base)).unwrap();
        assert!(out.contains("ECTS"), "{out}");
        assert!(
            out.contains("2 OK, 0 DNF, 0 ERR, 0 PANIC of 2 cells"),
            "{out}"
        );
        // Resume from the complete journal: identical status table.
        let mut resumed = base.to_vec();
        resumed.push(("resume", "true"));
        let again = run_to_string("matrix", &flags(&resumed)).unwrap();
        assert_eq!(out, again);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn matrix_writes_trace_and_metrics_artifacts() {
        let dir = std::env::temp_dir().join("etsc-cli-test-obs");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("matrix.trace.jsonl");
        let metrics = dir.join("matrix.prom");
        let out = run_to_string(
            "matrix",
            &flags(&[
                ("datasets", "PowerCons"),
                ("algos", "ECTS"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("threads", "1"),
                ("trace", trace.to_str().unwrap()),
                ("metrics", metrics.to_str().unwrap()),
            ]),
        )
        .unwrap();
        assert!(out.contains("1 OK"), "{out}");
        let log = etsc_obs::parse_jsonl(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let tree = etsc_obs::TraceTree::build(&log.records).unwrap();
        assert!(!tree.spans_named("cell").is_empty());
        assert!(!tree.spans_named("fit").is_empty());
        let text = std::fs::read_to_string(&metrics).unwrap();
        etsc_obs::validate_prometheus(&text).unwrap();
        assert!(text.contains("matrix_cells_ok_total 1"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn matrix_budget_override_yields_dnf_cells() {
        let out = run_to_string(
            "matrix",
            &flags(&[
                ("datasets", "PowerCons"),
                ("algos", "ECTS"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("threads", "1"),
                ("budget-secs", "0"),
            ]),
        )
        .unwrap();
        assert!(
            out.contains("0 OK, 1 DNF, 0 ERR, 0 PANIC of 1 cells"),
            "{out}"
        );
    }

    #[test]
    fn matrix_usage_errors() {
        assert!(matches!(
            run_to_string("matrix", &flags(&[("algos", "nope")])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_to_string("matrix", &flags(&[("datasets", "nope")])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_to_string("matrix", &flags(&[("resume", "true")])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn stream_commits() {
        let out = run_to_string(
            "stream",
            &flags(&[
                ("dataset", "PowerCons"),
                ("algo", "ECTS"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("instance", "3"),
            ]),
        )
        .unwrap();
        assert!(out.contains("COMMITTED"), "{out}");
    }

    #[test]
    fn train_serve_predict_roundtrip() {
        let dir = std::env::temp_dir().join("etsc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("powercons-ects.model");
        let model_str = model_path.to_str().unwrap();
        let out = run_to_string(
            "train",
            &flags(&[
                ("dataset", "PowerCons"),
                ("algo", "ECTS"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("save", model_str),
            ]),
        )
        .unwrap();
        assert!(out.contains("saved ECTS"), "{out}");
        assert!(model_path.exists());

        let out = run_to_string(
            "serve",
            &flags(&[
                ("model", model_str),
                ("replay", "PowerCons"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("sessions", "20"),
                ("workers", "2"),
            ]),
        )
        .unwrap();
        assert!(out.contains("20 sessions"), "{out}");
        assert!(out.contains("online ratio"), "{out}");
        assert!(out.contains("0 dropped"), "{out}");

        let out = run_to_string(
            "predict",
            &flags(&[
                ("model", model_str),
                ("dataset", "PowerCons"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("instance", "2"),
            ]),
        )
        .unwrap();
        assert!(out.contains("earliness"), "{out}");

        let out = run_to_string(
            "predict",
            &flags(&[
                ("model", model_str),
                ("dataset", "PowerCons"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("instance", "2"),
                ("stream", "true"),
            ]),
        )
        .unwrap();
        assert!(out.contains("COMMITTED"), "{out}");
        std::fs::remove_file(&model_path).ok();
    }

    #[test]
    fn list_triggers_enumerates_families_and_combos() {
        let out = run_to_string("list-triggers", &flags(&[])).unwrap();
        for family in ["threshold", "patience", "cost", "calibrated"] {
            assert!(out.contains(family), "missing {family}: {out}");
        }
        assert!(out.contains("non-myopic"), "{out}");
        assert!(out.contains("WEASEL+calibrated"), "{out}");
        assert!(out.contains("default spec"), "{out}");
    }

    #[test]
    fn train_trigger_serve_roundtrip_and_overrides() {
        let dir = std::env::temp_dir().join("etsc-cli-test-trigger");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("powercons-trig.model");
        let model_str = model_path.to_str().unwrap();
        let gen = [
            ("dataset", "PowerCons"),
            ("height-scale", "0.1"),
            ("length-scale", "0.2"),
        ];
        let mut train = gen.to_vec();
        train.extend([
            ("algo", "WEASEL"),
            ("trigger", "threshold:0.7"),
            ("save", model_str),
        ]);
        let out = run_to_string("train", &flags(&train)).unwrap();
        assert!(out.contains("saved WEASEL+threshold"), "{out}");

        // Replay honors the persisted trigger (decision batch 1).
        let mut serve = gen.to_vec();
        serve.extend([
            ("model", model_str),
            ("replay", "PowerCons"),
            ("sessions", "8"),
            ("workers", "2"),
        ]);
        let out = run_to_string("serve", &flags(&serve)).unwrap();
        assert!(out.contains("8 sessions"), "{out}");
        assert!(out.contains("0 dropped"), "{out}");

        // Serve-time re-parameterization without refitting.
        serve.push(("trigger", "threshold:0.95"));
        let out = run_to_string("serve", &flags(&serve)).unwrap();
        assert!(out.contains("8 sessions"), "{out}");

        let mut predict = gen.to_vec();
        predict.extend([("model", model_str), ("instance", "1")]);
        let out = run_to_string("predict", &flags(&predict)).unwrap();
        assert!(out.contains("earliness"), "{out}");
        std::fs::remove_file(&model_path).ok();
    }

    fn error_message(e: CliError) -> String {
        match e {
            CliError::Usage(m) | CliError::Runtime(m) => m,
        }
    }

    #[test]
    fn trigger_usage_errors_are_actionable() {
        // --calibrate without --trigger.
        let err = error_message(
            run_to_string(
                "train",
                &flags(&[
                    ("dataset", "PowerCons"),
                    ("algo", "WEASEL"),
                    ("calibrate", "platt"),
                    ("save", "/tmp/never-written.model"),
                ]),
            )
            .unwrap_err(),
        );
        assert!(err.contains("--calibrate needs --trigger"), "{err}");

        // --trigger with a non-base algorithm name.
        let err = error_message(
            run_to_string(
                "train",
                &flags(&[
                    ("dataset", "PowerCons"),
                    ("algo", "ECTS"),
                    ("trigger", "threshold:0.7"),
                    ("save", "/tmp/never-written.model"),
                ]),
            )
            .unwrap_err(),
        );
        assert!(err.contains("unknown base"), "{err}");

        // --trigger on serve with an untriggered model.
        let dir = std::env::temp_dir().join("etsc-cli-test-trigger-err");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("plain.model");
        let model_str = model_path.to_str().unwrap();
        run_to_string(
            "train",
            &flags(&[
                ("dataset", "PowerCons"),
                ("algo", "ECTS"),
                ("height-scale", "0.1"),
                ("length-scale", "0.2"),
                ("save", model_str),
            ]),
        )
        .unwrap();
        let err = error_message(
            run_to_string(
                "serve",
                &flags(&[
                    ("model", model_str),
                    ("replay", "PowerCons"),
                    ("height-scale", "0.1"),
                    ("length-scale", "0.2"),
                    ("trigger", "threshold:0.9"),
                ]),
            )
            .unwrap_err(),
        );
        assert!(err.contains("trigger-wrapped model"), "{err}");
        std::fs::remove_file(&model_path).ok();
    }

    #[test]
    fn matrix_runs_the_trigger_axis() {
        let out = run_to_string(
            "matrix",
            &flags(&[
                ("datasets", "PowerCons"),
                ("algos", "WEASEL"),
                ("trigger", "threshold:0.7;patience:2"),
                ("height-scale", "0.1"),
                ("length-scale", "0.2"),
                ("threads", "1"),
            ]),
        )
        .unwrap();
        assert!(out.contains("Trigger"), "{out}");
        assert!(out.contains("threshold:"), "{out}");
        assert!(out.contains("patience:k=2"), "{out}");
        assert!(out.contains("2 OK of 2 trigger cells"), "{out}");
    }

    #[test]
    fn serve_with_faults_reports_degraded_mode() {
        let dir = std::env::temp_dir().join("etsc-cli-test-faults");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("chaos-ects.model");
        let model_str = model_path.to_str().unwrap();
        run_to_string(
            "train",
            &flags(&[
                ("dataset", "PowerCons"),
                ("algo", "ECTS"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("save", model_str),
            ]),
        )
        .unwrap();

        // Injected panic + delays against a deadline with prior-class
        // fallback, plus a corrupted model file recovered from .prev.
        let out = run_to_string(
            "serve",
            &flags(&[
                ("model", model_str),
                ("replay", "PowerCons"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("sessions", "20"),
                ("workers", "2"),
                ("deadline-ms", "1"),
                ("fallback", "prior"),
                (
                    "faults",
                    "seed=11,panics=1,delay-rate=0.5,delay-ms=20,corrupt-model=true",
                ),
            ]),
        )
        .unwrap();
        assert!(out.contains("fault: flipped byte"), "{out}");
        assert!(out.contains("serving the last-good model"), "{out}");
        assert!(out.contains("degraded"), "{out}");
        assert!(out.contains("1 worker panics"), "{out}");
        assert!(out.contains("faults         injected 1 panics"), "{out}");

        assert!(matches!(
            run_to_string(
                "serve",
                &flags(&[
                    ("model", model_str),
                    ("replay", "PowerCons"),
                    ("faults", "seed=abc"),
                ])
            ),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_to_string(
                "serve",
                &flags(&[
                    ("model", model_str),
                    ("replay", "PowerCons"),
                    ("deadline-ms", "5"),
                    ("fallback", "nope"),
                ])
            ),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_flushes_metrics_even_when_shedding() {
        let dir = std::env::temp_dir().join("etsc-cli-test-shed");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("shed-ects.model");
        let model_str = model_path.to_str().unwrap();
        run_to_string(
            "train",
            &flags(&[
                ("dataset", "PowerCons"),
                ("algo", "ECTS"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("save", model_str),
            ]),
        )
        .unwrap();
        // A one-slot queue under shed policy with slowed workers must
        // drop observations — and the dropped count has to reach the
        // scrape artifact even though shedding starves the replay.
        let metrics = dir.join("shed.prom");
        run_to_string(
            "serve",
            &flags(&[
                ("model", model_str),
                ("replay", "PowerCons"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("sessions", "16"),
                ("workers", "1"),
                ("queue", "1"),
                ("shed", "true"),
                ("faults", "seed=3,delay-rate=1.0,delay-ms=5"),
                ("metrics", metrics.to_str().unwrap()),
            ]),
        )
        .unwrap();
        let text = std::fs::read_to_string(&metrics).unwrap();
        etsc_obs::validate_prometheus(&text).unwrap();
        let shed: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix("serve_shed_total "))
            .expect("serve_shed_total exported")
            .trim()
            .parse()
            .unwrap();
        assert!(shed > 0, "expected sheds in:\n{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_listen_and_predict_connect_roundtrip() {
        let dir = std::env::temp_dir().join("etsc-cli-test-net");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("net-ects.model");
        let model_str = model_path.to_str().unwrap().to_owned();
        run_to_string(
            "train",
            &flags(&[
                ("dataset", "PowerCons"),
                ("algo", "ECTS"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("save", &model_str),
            ]),
        )
        .unwrap();
        // The server picks an ephemeral port; grab it from the banner
        // written through the shared pipe-backed buffer.
        let out: std::sync::Arc<Mutex<Vec<u8>>> = std::sync::Arc::default();
        let server_out = out.clone();
        let server = std::thread::spawn(move || {
            struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
            impl Write for Shared {
                fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                    self.0.lock().unwrap().extend_from_slice(buf);
                    Ok(buf.len())
                }
                fn flush(&mut self) -> std::io::Result<()> {
                    Ok(())
                }
            }
            let f = flags(&[("model", model_str.as_str()), ("listen", "127.0.0.1:0")]);
            run("serve", &f, &mut Shared(server_out))
        });
        let addr = loop {
            std::thread::sleep(Duration::from_millis(25));
            let buf = out.lock().unwrap();
            let text = String::from_utf8_lossy(&buf);
            if let Some(rest) = text.split(" at ").nth(1) {
                if let Some(addr) = rest.split_whitespace().next() {
                    break addr.to_owned();
                }
            }
            drop(buf);
        };
        let predicted = run_to_string(
            "predict",
            &flags(&[
                ("connect", addr.as_str()),
                ("dataset", "PowerCons"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("instance", "2"),
                ("feedback", "true"),
            ]),
        )
        .unwrap();
        assert!(predicted.contains("earliness"), "{predicted}");
        assert!(predicted.contains("verdict genuine"), "{predicted}");
        assert!(predicted.contains("feedback sent"), "{predicted}");
        // A second client asks the server to drain; the serve command
        // must then return with its stats report.
        let mut stopper = Client::connect(&addr, ClientConfig::default()).unwrap();
        stopper.shutdown_server().unwrap();
        stopper.wait_drain(Duration::from_secs(10)).unwrap();
        server.join().unwrap().unwrap();
        let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        assert!(text.contains("drained after"), "{text}");
        assert!(text.contains("open sessions at exit: 0"), "{text}");
        std::fs::remove_dir_all(&dir).ok();

        // Usage guards for the network modes.
        assert!(matches!(
            run_to_string(
                "serve",
                &flags(&[
                    ("model", "nope.model"),
                    ("listen", "127.0.0.1:0"),
                    ("faults", "seed=1,torn-rate=0.1"),
                ])
            ),
            Err(CliError::Usage(_))
        ));
        assert!(run_to_string(
            "predict",
            &flags(&[("connect", "127.0.0.1:1"), ("dataset", "PowerCons")])
        )
        .is_err());
    }

    #[test]
    fn route_fronts_replicated_shards_and_drains() {
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        type Running = (
            std::sync::Arc<Mutex<Vec<u8>>>,
            std::thread::JoinHandle<Result<(), CliError>>,
        );
        fn spawn(command: &'static str, f: Flags) -> Running {
            let out: std::sync::Arc<Mutex<Vec<u8>>> = std::sync::Arc::default();
            let sink = out.clone();
            let handle = std::thread::spawn(move || run(command, &f, &mut Shared(sink)));
            (out, handle)
        }
        // Both banners ("serving ... at ADDR", "routing across ... at
        // ADDR") carry the bound ephemeral address after " at ".
        fn banner_addr(out: &std::sync::Arc<Mutex<Vec<u8>>>) -> String {
            loop {
                std::thread::sleep(Duration::from_millis(25));
                let buf = out.lock().unwrap();
                let text = String::from_utf8_lossy(&buf);
                if let Some(rest) = text.split(" at ").nth(1) {
                    if let Some(addr) = rest.split_whitespace().next() {
                        return addr.to_owned();
                    }
                }
            }
        }

        let dir = std::env::temp_dir().join("etsc-cli-test-route");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("shard0.model");
        let model_str = model_path.to_str().unwrap().to_owned();
        run_to_string(
            "train",
            &flags(&[
                ("dataset", "PowerCons"),
                ("algo", "ECTS"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("save", &model_str),
            ]),
        )
        .unwrap();
        // Stage the second shard's copy through the replicate command.
        let replica = dir.join("shard1.model");
        let replica_str = replica.to_str().unwrap().to_owned();
        let replicated = run_to_string(
            "replicate",
            &flags(&[("model", &model_str), ("to", &replica_str)]),
        )
        .unwrap();
        assert!(replicated.contains("replicated"), "{replicated}");
        assert!(replica.exists());

        let (out0, shard0) = spawn(
            "serve",
            flags(&[("model", &model_str), ("listen", "127.0.0.1:0")]),
        );
        let (out1, shard1) = spawn(
            "serve",
            flags(&[("model", &replica_str), ("listen", "127.0.0.1:0")]),
        );
        let (addr0, addr1) = (banner_addr(&out0), banner_addr(&out1));
        let shard_list = format!("{addr0},{addr1}");
        let (rout, router) = spawn(
            "route",
            flags(&[
                ("listen", "127.0.0.1:0"),
                ("shards", &shard_list),
                ("probe-interval-ms", "50"),
            ]),
        );
        let raddr = banner_addr(&rout);
        // A client speaking to the router is indistinguishable from one
        // speaking to a shard: predict --connect just works.
        let predicted = run_to_string(
            "predict",
            &flags(&[
                ("connect", raddr.as_str()),
                ("dataset", "PowerCons"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("instance", "3"),
            ]),
        )
        .unwrap();
        assert!(predicted.contains("earliness"), "{predicted}");

        let mut stopper = Client::connect(&raddr, ClientConfig::default()).unwrap();
        stopper.shutdown_server().unwrap();
        stopper.wait_drain(Duration::from_secs(10)).unwrap();
        router.join().unwrap().unwrap();
        let text = String::from_utf8(rout.lock().unwrap().clone()).unwrap();
        assert!(text.contains("drained after"), "{text}");
        assert!(text.contains("open sessions at exit: 0"), "{text}");

        for addr in [&addr0, &addr1] {
            let mut stop = Client::connect(addr, ClientConfig::default()).unwrap();
            stop.shutdown_server().unwrap();
            stop.wait_drain(Duration::from_secs(10)).unwrap();
        }
        shard0.join().unwrap().unwrap();
        shard1.join().unwrap().unwrap();
        std::fs::remove_dir_all(&dir).ok();

        // Usage guards for the fleet commands.
        assert!(matches!(
            run_to_string("route", &flags(&[("listen", "127.0.0.1:0")])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_to_string(
                "route",
                &flags(&[("listen", "127.0.0.1:0"), ("shards", "")])
            ),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_to_string("replicate", &flags(&[("model", "x.model")])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_to_string("replicate", &flags(&[("model", "x.model"), ("to", "")])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_rejects_mismatched_model() {
        let dir = std::env::temp_dir().join("etsc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("uni.model");
        let model_str = model_path.to_str().unwrap();
        run_to_string(
            "train",
            &flags(&[
                ("dataset", "PowerCons"),
                ("algo", "ECTS"),
                ("height-scale", "0.15"),
                ("length-scale", "0.3"),
                ("save", model_str),
            ]),
        )
        .unwrap();
        // BasicMotions is multivariate; the univariate model must refuse.
        assert!(matches!(
            run_to_string(
                "serve",
                &flags(&[
                    ("model", model_str),
                    ("replay", "BasicMotions"),
                    ("height-scale", "0.25"),
                    ("length-scale", "0.3"),
                ])
            ),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_to_string("serve", &flags(&[("replay", "PowerCons")])),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(&model_path).ok();
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(
            run_to_string("evaluate", &flags(&[("algo", "ECTS")])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_to_string("evaluate", &flags(&[("dataset", "nope"), ("algo", "ECTS")])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_to_string(
                "evaluate",
                &flags(&[("dataset", "PowerCons"), ("algo", "nope")])
            ),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_to_string("frobnicate", &flags(&[])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_to_string(
                "stream",
                &flags(&[
                    ("dataset", "PowerCons"),
                    ("algo", "ECTS"),
                    ("instance", "999999")
                ])
            ),
            Err(CliError::Usage(_))
        ));
    }
}
