//! `etsc-cli` — the framework's command-line interface, mirroring the
//! reference implementation's `cli.py` (paper Section 5.5): list the
//! available algorithms and datasets, export/import datasets in the CSV
//! interchange format, run cross-validated evaluations, and stream a
//! single instance through an early classifier.
//!
//! ```text
//! etsc list-algorithms
//! etsc list-datasets
//! etsc generate --dataset Maritime --out maritime.csv [--height-scale S] [--length-scale S] [--seed N]
//! etsc evaluate (--dataset NAME | --data FILE --vars K) --algo NAME [--folds N] [--seed N] [--budget-secs N]
//! etsc matrix   [--datasets A,B,..] [--algos X,Y,..] [--journal FILE] [--resume] [--budget-secs N] [--retries N] [--threads N]
//! etsc stream   (--dataset NAME | --data FILE --vars K) --algo NAME [--instance I] [--seed N]
//! etsc train    (--dataset NAME | --data FILE --vars K) --algo NAME --save FILE [--seed N] [--budget-secs N]
//! etsc serve    --model FILE (--replay NAME | --data FILE --vars K) [--sessions N] [--workers N] [--queue N] [--shed] [--obs-freq SECS]
//!               [--deadline-ms N] [--fallback wait|prior|decide-now] [--max-restarts N] [--faults SPEC]
//! etsc serve    --model FILE --listen ADDR [--max-conns N] [--queue N] [--shed] [--deadline-ms N] [--fallback POLICY]
//!               [--faults SPEC --fault-sessions N] [--duration-secs N] [--admission] [--admission-open-rate R]
//!               [--codel-target-ms N] [--brownout-high-ms N] [--brownout-tighten-ms N]
//! etsc predict  --model FILE (--dataset NAME | --data FILE --vars K) [--instance I] [--stream]
//! etsc predict  --connect ADDR (--dataset NAME | --data FILE --vars K) [--instance I] [--feedback]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use etsc_cli::{run, CliError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", etsc_cli::USAGE);
        return ExitCode::from(2);
    };
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            eprintln!("error: expected a --flag, got {flag:?}");
            return ExitCode::from(2);
        };
        // Boolean flags take no value.
        if etsc_eval::CommonOpts::SWITCHES.contains(&name)
            || matches!(name, "stream" | "shed" | "feedback" | "admission")
        {
            flags.insert(name.to_owned(), "true".to_owned());
            continue;
        }
        let Some(value) = it.next() else {
            eprintln!("error: --{name} needs a value");
            return ExitCode::from(2);
        };
        flags.insert(name.to_owned(), value.clone());
    }
    match run(command, &flags, &mut std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{}", etsc_cli::USAGE);
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
