//! Symbolic Fourier Approximation: discretising Fourier features into
//! words via information-gain binning.
//!
//! For each Fourier coefficient, boundaries are chosen on the training
//! data so that the resulting bins maximally discriminate the class
//! labels (the "IG binning" of WEASEL). A window's word is the
//! base-`alphabet` number formed by its per-coefficient symbols.

/// Fitted SFA discretisation model.
#[derive(Debug, Clone)]
pub struct SfaModel {
    /// `bins[c]` = sorted bin boundaries for coefficient `c`
    /// (at most `alphabet - 1` values).
    bins: Vec<Vec<f64>>,
    alphabet: usize,
}

impl SfaModel {
    /// Learns per-coefficient IG bin boundaries.
    ///
    /// `windows` are Fourier feature vectors (all the same length),
    /// `labels` their class labels. `alphabet` is the number of symbols
    /// per coefficient (≥ 2).
    ///
    /// Degenerate inputs (no windows, constant coefficients) yield empty
    /// boundary sets — every value then maps to symbol 0, which is safe.
    pub fn fit(windows: &[Vec<f64>], labels: &[usize], alphabet: usize) -> SfaModel {
        let alphabet = alphabet.max(2);
        let n_coeffs = windows.first().map_or(0, |w| w.len());
        let mut bins = Vec::with_capacity(n_coeffs);
        for c in 0..n_coeffs {
            let mut pairs: Vec<(f64, usize)> = windows
                .iter()
                .zip(labels)
                .map(|(w, &l)| (w[c], l))
                .filter(|(v, _)| v.is_finite())
                .collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            bins.push(ig_boundaries(&pairs, alphabet));
        }
        SfaModel { bins, alphabet }
    }

    /// Number of Fourier coefficients per word.
    pub fn word_length(&self) -> usize {
        self.bins.len()
    }

    /// Alphabet size.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// The symbol (bin index) of one coefficient value.
    pub fn symbol(&self, coeff: usize, value: f64) -> usize {
        let bounds = &self.bins[coeff];
        bounds.iter().take_while(|&&b| value > b).count()
    }

    /// Encodes a Fourier feature vector into a word
    /// (base-`alphabet` integer).
    ///
    /// # Panics
    /// When `features.len() != self.word_length()` (programming error).
    pub fn word(&self, features: &[f64]) -> u32 {
        assert_eq!(
            features.len(),
            self.bins.len(),
            "feature length must match word length"
        );
        let mut w = 0u32;
        for (c, &v) in features.iter().enumerate() {
            w = w * self.alphabet as u32 + self.symbol(c, v) as u32;
        }
        w
    }

    /// Upper bound (exclusive) on word codes.
    pub fn word_space(&self) -> u32 {
        (self.alphabet as u32).pow(self.bins.len() as u32)
    }

    /// Serializes the fitted bin boundaries (model store).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.f64_rows(&self.bins);
        e.usize(self.alphabet);
    }

    /// Reconstructs a model written by [`SfaModel::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        Ok(SfaModel {
            bins: d.f64_rows()?,
            alphabet: d.usize()?,
        })
    }
}

/// Shannon entropy of a label multiset given per-class counts.
fn entropy(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let tf = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / tf;
            -p * p.log2()
        })
        .sum()
}

/// Greedy recursive IG binning: repeatedly apply the single best split
/// (highest information gain) across all current segments until
/// `alphabet` bins exist or no split helps.
fn ig_boundaries(sorted: &[(f64, usize)], alphabet: usize) -> Vec<f64> {
    if sorted.len() < 2 {
        return Vec::new();
    }
    let n_classes = sorted.iter().map(|&(_, l)| l).max().unwrap_or(0) + 1;
    // Segments as index ranges into `sorted`.
    let mut segments: Vec<(usize, usize)> = vec![(0, sorted.len())];
    let mut boundaries: Vec<f64> = Vec::new();
    while segments.len() < alphabet {
        let mut best: Option<(usize, usize, f64, f64)> = None; // (seg idx, split idx, boundary, gain)
        for (si, &(lo, hi)) in segments.iter().enumerate() {
            if hi - lo < 2 {
                continue;
            }
            let mut total_counts = vec![0usize; n_classes];
            for &(_, l) in &sorted[lo..hi] {
                total_counts[l] += 1;
            }
            let seg_n = hi - lo;
            let parent_h = entropy(&total_counts, seg_n);
            if parent_h == 0.0 {
                continue;
            }
            let mut left_counts = vec![0usize; n_classes];
            for i in lo..hi - 1 {
                left_counts[sorted[i].1] += 1;
                if sorted[i + 1].0 <= sorted[i].0 {
                    continue; // no boundary between equal values
                }
                let left_n = i - lo + 1;
                let right_n = seg_n - left_n;
                let right_counts: Vec<usize> = total_counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(t, l)| t - l)
                    .collect();
                let gain = parent_h
                    - (left_n as f64 * entropy(&left_counts, left_n)
                        + right_n as f64 * entropy(&right_counts, right_n))
                        / seg_n as f64;
                if best.is_none_or(|(_, _, _, g)| gain > g) {
                    best = Some((si, i + 1, (sorted[i].0 + sorted[i + 1].0) / 2.0, gain));
                }
            }
        }
        let Some((si, split, boundary, gain)) = best else {
            break;
        };
        if gain <= 0.0 {
            break;
        }
        let (lo, hi) = segments[si];
        segments[si] = (lo, split);
        segments.insert(si + 1, (split, hi));
        boundaries.push(boundary);
    }
    boundaries.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    boundaries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_classes_get_a_boundary_between_them() {
        // Coefficient values: class 0 near 0, class 1 near 10.
        let windows: Vec<Vec<f64>> = vec![
            vec![0.1],
            vec![0.2],
            vec![0.3],
            vec![9.8],
            vec![9.9],
            vec![10.0],
        ];
        let labels = vec![0, 0, 0, 1, 1, 1];
        let m = SfaModel::fit(&windows, &labels, 2);
        assert_eq!(m.bins[0].len(), 1);
        let b = m.bins[0][0];
        assert!(b > 0.3 && b < 9.8, "boundary {b}");
        assert_eq!(m.symbol(0, 0.0), 0);
        assert_eq!(m.symbol(0, 10.0), 1);
    }

    #[test]
    fn word_encoding_is_base_alphabet() {
        let windows: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
        ];
        let labels = vec![0, 1, 2, 3];
        let m = SfaModel::fit(&windows, &labels, 4);
        assert_eq!(m.alphabet(), 4);
        assert_eq!(m.word_length(), 2);
        let w_low = m.word(&[-1.0, -1.0]);
        let w_high = m.word(&[99.0, 99.0]);
        assert_eq!(w_low, 0);
        assert!(w_high < m.word_space());
        assert!(w_high > w_low);
    }

    #[test]
    fn constant_coefficient_maps_everything_to_symbol_zero() {
        let windows: Vec<Vec<f64>> = vec![vec![5.0]; 6];
        let labels = vec![0, 1, 0, 1, 0, 1];
        let m = SfaModel::fit(&windows, &labels, 4);
        assert!(m.bins[0].is_empty());
        assert_eq!(m.symbol(0, 5.0), 0);
        assert_eq!(m.word(&[5.0]), 0);
    }

    #[test]
    fn alphabet_bounds_bin_count() {
        let windows: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..32).map(|i| i % 4).collect();
        let m = SfaModel::fit(&windows, &labels, 4);
        assert!(m.bins[0].len() <= 3);
    }

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy(&[4, 0], 4), 0.0);
        assert!((entropy(&[2, 2], 4) - 1.0).abs() < 1e-12);
        assert_eq!(entropy(&[], 0), 0.0);
    }

    #[test]
    fn empty_input_is_safe() {
        let m = SfaModel::fit(&[], &[], 4);
        assert_eq!(m.word_length(), 0);
        assert_eq!(m.word(&[]), 0);
    }

    #[test]
    fn nan_values_are_ignored_during_fit() {
        let windows: Vec<Vec<f64>> =
            vec![vec![f64::NAN], vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
        let labels = vec![0, 0, 0, 1, 1];
        let m = SfaModel::fit(&windows, &labels, 2);
        assert_eq!(m.bins[0].len(), 1);
    }
}
