//! WEASEL+MUSE (Schäfer & Leser 2017): the multivariate WEASEL variant.
//!
//! Each variable — and its first-difference derivative channel — gets its
//! own WEASEL bag whose features are tagged by dimension; the final
//! feature vector is the concatenation over all channels. As with WEASEL
//! (and per the paper's Section 4), the default normalisation step is
//! removed for the streaming ETSC setting.

use etsc_data::MultiSeries;
use etsc_ml::MlError;

use crate::weasel::{Weasel, WeaselConfig};

/// Hyper-parameters for [`Muse`].
#[derive(Debug, Clone)]
pub struct MuseConfig {
    /// Per-channel WEASEL configuration template (its `top_features` is
    /// divided by the channel count).
    pub weasel: WeaselConfig,
    /// Include first-difference derivative channels.
    pub use_derivatives: bool,
}

impl Default for MuseConfig {
    fn default() -> Self {
        MuseConfig {
            weasel: WeaselConfig::default(),
            use_derivatives: true,
        }
    }
}

/// Fitted WEASEL+MUSE transform.
#[derive(Debug, Clone)]
pub struct Muse {
    config: MuseConfig,
    /// One WEASEL per channel (raw channels first, then derivatives).
    channels: Vec<Weasel>,
    vars: usize,
}

impl Muse {
    /// Untrained transform.
    pub fn new(config: MuseConfig) -> Self {
        Muse {
            config,
            channels: Vec::new(),
            vars: 0,
        }
    }

    /// Untrained transform with defaults.
    pub fn with_defaults() -> Self {
        Self::new(MuseConfig::default())
    }

    /// Total feature dimensionality (0 before fit).
    pub fn n_features(&self) -> usize {
        self.channels.iter().map(|w| w.n_features()).sum()
    }

    fn expand(&self, sample: &MultiSeries) -> MultiSeries {
        if self.config.use_derivatives {
            sample.with_derivatives()
        } else {
            sample.clone()
        }
    }

    /// Fits one WEASEL per (derivative-expanded) channel.
    ///
    /// # Errors
    /// Propagates WEASEL validation failures.
    pub fn fit(
        &mut self,
        samples: &[MultiSeries],
        labels: &[usize],
        n_classes: usize,
    ) -> Result<(), MlError> {
        if samples.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        if samples.len() != labels.len() {
            return Err(MlError::DimensionMismatch {
                expected: samples.len(),
                got: labels.len(),
            });
        }
        self.vars = samples[0].vars();
        let expanded: Vec<MultiSeries> = samples.iter().map(|s| self.expand(s)).collect();
        let n_channels = expanded[0].vars();
        let per_channel = (self.config.weasel.top_features / n_channels).max(16);
        self.channels.clear();
        for ch in 0..n_channels {
            let rows: Vec<&[f64]> = expanded.iter().map(|s| s.var(ch)).collect();
            let mut w = Weasel::new(WeaselConfig {
                top_features: per_channel,
                ..self.config.weasel.clone()
            });
            w.fit(&rows, labels, n_classes)?;
            self.channels.push(w);
        }
        Ok(())
    }

    /// Serializes the fitted state (model store).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        self.config.weasel.encode_state(e);
        e.bool(self.config.use_derivatives);
        e.usize(self.channels.len());
        for w in &self.channels {
            w.encode_state(e);
        }
        e.usize(self.vars);
    }

    /// Reconstructs a transform written by [`Muse::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let weasel = WeaselConfig::decode_state(d)?;
        let use_derivatives = d.bool()?;
        let n = d.usize()?;
        let mut channels = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            channels.push(Weasel::decode_state(d)?);
        }
        Ok(Muse {
            config: MuseConfig {
                weasel,
                use_derivatives,
            },
            channels,
            vars: d.usize()?,
        })
    }

    /// Transforms one multivariate sample into the concatenated feature
    /// vector.
    ///
    /// # Errors
    /// [`MlError::NotFitted`] before fit;
    /// [`MlError::DimensionMismatch`] on variable-count mismatch.
    pub fn transform(&self, sample: &MultiSeries) -> Result<Vec<f64>, MlError> {
        if self.channels.is_empty() {
            return Err(MlError::NotFitted);
        }
        if sample.vars() != self.vars {
            return Err(MlError::DimensionMismatch {
                expected: self.vars,
                got: sample.vars(),
            });
        }
        let expanded = self.expand(sample);
        let mut out = Vec::with_capacity(self.n_features());
        for (ch, w) in self.channels.iter().enumerate() {
            out.extend(w.transform(expanded.var(ch))?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Vec<MultiSeries>, Vec<usize>) {
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for i in 0..8 {
            let phase = i as f64 * 0.23;
            let slow: Vec<f64> = (0..32).map(|t| ((t as f64 * 0.2) + phase).sin()).collect();
            let fast: Vec<f64> = (0..32).map(|t| ((t as f64 * 1.4) + phase).sin()).collect();
            samples.push(MultiSeries::from_rows(vec![slow.clone(), fast.clone()]).unwrap());
            labels.push(0);
            samples.push(MultiSeries::from_rows(vec![fast, slow]).unwrap());
            labels.push(1);
        }
        (samples, labels)
    }

    #[test]
    fn concatenates_channel_features() {
        let (samples, labels) = toy();
        let mut m = Muse::with_defaults();
        m.fit(&samples, &labels, 2).unwrap();
        // 2 raw + 2 derivative channels.
        assert_eq!(m.channels.len(), 4);
        let f = m.transform(&samples[0]).unwrap();
        assert_eq!(f.len(), m.n_features());
        assert!(f.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn derivative_channels_optional() {
        let (samples, labels) = toy();
        let mut m = Muse::new(MuseConfig {
            use_derivatives: false,
            ..MuseConfig::default()
        });
        m.fit(&samples, &labels, 2).unwrap();
        assert_eq!(m.channels.len(), 2);
    }

    #[test]
    fn error_paths() {
        let m = Muse::with_defaults();
        let (samples, _) = toy();
        assert!(matches!(m.transform(&samples[0]), Err(MlError::NotFitted)));
        let mut m = Muse::with_defaults();
        assert!(m.fit(&[], &[], 2).is_err());
        let (samples, labels) = toy();
        let mut m2 = Muse::with_defaults();
        m2.fit(&samples, &labels, 2).unwrap();
        let wrong = MultiSeries::from_rows(vec![vec![0.0; 32]]).unwrap();
        assert!(m2.transform(&wrong).is_err());
    }

    #[test]
    fn separates_swapped_channels() {
        let (samples, labels) = toy();
        let mut m = Muse::with_defaults();
        m.fit(&samples, &labels, 2).unwrap();
        let f0 = m.transform(&samples[0]).unwrap();
        let f1 = m.transform(&samples[1]).unwrap();
        let dist: f64 = f0
            .iter()
            .zip(&f1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.5, "swapped channels should look different: {dist}");
    }
}
