//! WEASEL: Word ExtrAction for time SEries cLassification
//! (Schäfer & Leser 2017).
//!
//! The transform slides windows of several lengths over a univariate
//! series, approximates every window with its first Fourier coefficients
//! ([`crate::fourier`]), discretises them into words with IG binning
//! ([`crate::sfa`]), counts unigrams and (non-overlapping) bigrams per
//! window length, and keeps the most class-discriminative counts by
//! chi-squared selection. The result is a fixed-size dense feature vector
//! for a linear classifier.
//!
//! Matching the paper's setup, the transform performs **no dataset-level
//! z-normalisation** — Section 6.1 argues that assuming knowledge of the
//! full series' mean/std is unrealistic for online ETSC.

use std::collections::HashMap;

use etsc_ml::MlError;

use crate::fourier::sliding_dft;
use crate::sfa::SfaModel;

/// Hyper-parameters for [`Weasel`].
#[derive(Debug, Clone)]
pub struct WeaselConfig {
    /// Number of Fourier features per window (word length).
    pub word_length: usize,
    /// Symbols per feature.
    pub alphabet: usize,
    /// Smallest window length considered.
    pub min_window: usize,
    /// Maximum number of distinct window lengths (spread linearly between
    /// `min_window` and the series length).
    pub max_windows: usize,
    /// Count bigrams of non-overlapping adjacent words.
    pub use_bigrams: bool,
    /// Number of features kept by chi-squared selection.
    pub top_features: usize,
}

impl Default for WeaselConfig {
    fn default() -> Self {
        WeaselConfig {
            word_length: 4,
            alphabet: 4,
            min_window: 6,
            max_windows: 8,
            use_bigrams: true,
            top_features: 384,
        }
    }
}

impl WeaselConfig {
    /// Serializes the hyper-parameters (model store).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.usize(self.word_length);
        e.usize(self.alphabet);
        e.usize(self.min_window);
        e.usize(self.max_windows);
        e.bool(self.use_bigrams);
        e.usize(self.top_features);
    }

    /// Reconstructs a config written by [`WeaselConfig::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        Ok(WeaselConfig {
            word_length: d.usize()?,
            alphabet: d.usize()?,
            min_window: d.usize()?,
            max_windows: d.usize()?,
            use_bigrams: d.bool()?,
            top_features: d.usize()?,
        })
    }
}

/// Sentinel marking a unigram in the packed feature key.
const UNIGRAM: u64 = 0;

/// Packs (window index, previous word + 1 or 0, word) into one key.
fn pack(win_idx: usize, prev_plus1: u64, word: u32) -> u64 {
    ((win_idx as u64) << 48) | (prev_plus1 << 24) | word as u64
}

/// Fitted WEASEL transform.
///
/// ```
/// use etsc_transforms::weasel::Weasel;
///
/// let slow: Vec<f64> = (0..32).map(|t| (t as f64 * 0.2).sin()).collect();
/// let fast: Vec<f64> = (0..32).map(|t| (t as f64 * 1.4).sin()).collect();
/// let series: Vec<&[f64]> = vec![&slow, &fast, &slow, &fast];
/// let labels = vec![0, 1, 0, 1];
/// let mut weasel = Weasel::with_defaults();
/// weasel.fit(&series, &labels, 2).unwrap();
/// let features = weasel.transform(&slow).unwrap();
/// assert_eq!(features.len(), weasel.n_features());
/// ```
#[derive(Debug, Clone)]
pub struct Weasel {
    config: WeaselConfig,
    /// `(window length, SFA model)` per window size.
    models: Vec<(usize, SfaModel)>,
    /// Selected feature key → dense feature index.
    feature_map: HashMap<u64, usize>,
}

impl Weasel {
    /// Untrained transform with the given hyper-parameters.
    pub fn new(config: WeaselConfig) -> Self {
        Weasel {
            config,
            models: Vec::new(),
            feature_map: HashMap::new(),
        }
    }

    /// Untrained transform with the paper's defaults.
    pub fn with_defaults() -> Self {
        Self::new(WeaselConfig::default())
    }

    /// Dimensionality of the transformed feature vectors (0 before fit).
    pub fn n_features(&self) -> usize {
        self.feature_map.len()
    }

    /// Window lengths in use after fitting.
    pub fn window_lengths(&self) -> Vec<usize> {
        self.models.iter().map(|(w, _)| *w).collect()
    }

    /// Chooses up to `max_windows` lengths spread over `[min_window, len]`.
    fn choose_windows(&self, len: usize) -> Vec<usize> {
        let lo = self.config.min_window.max(3).min(len);
        let hi = len;
        if lo >= hi {
            return vec![lo];
        }
        let k = self.config.max_windows.max(1);
        let mut sizes: Vec<usize> = (0..k)
            .map(|i| lo + (hi - lo) * i / (k.saturating_sub(1).max(1)))
            .collect();
        sizes.dedup();
        sizes
    }

    /// Fits SFA models and the chi-squared feature selection.
    ///
    /// # Errors
    /// * [`MlError::EmptyTrainingSet`] on no series / empty series;
    /// * [`MlError::DimensionMismatch`] on label count mismatch.
    pub fn fit(
        &mut self,
        series: &[&[f64]],
        labels: &[usize],
        n_classes: usize,
    ) -> Result<(), MlError> {
        let mut span = etsc_obs::ambient_span("transform");
        span.attr("name", "weasel");
        span.attr("series", &series.len().to_string());
        if series.is_empty() || series.iter().any(|s| s.is_empty()) {
            return Err(MlError::EmptyTrainingSet);
        }
        if series.len() != labels.len() {
            return Err(MlError::DimensionMismatch {
                expected: series.len(),
                got: labels.len(),
            });
        }
        let min_len = series.iter().map(|s| s.len()).min().expect("non-empty");
        let windows = self.choose_windows(min_len);
        // Fit one SFA model per window size.
        self.models.clear();
        for &win in &windows {
            let mut feats = Vec::new();
            let mut flabels = Vec::new();
            for (s, &l) in series.iter().zip(labels) {
                for f in sliding_dft(s, win, self.config.word_length) {
                    feats.push(f);
                    flabels.push(l);
                }
            }
            let model = SfaModel::fit(&feats, &flabels, self.config.alphabet);
            self.models.push((win, model));
        }
        // Count features per class for chi-squared selection.
        let mut counts: HashMap<u64, Vec<f64>> = HashMap::new();
        let mut class_totals = vec![0.0; n_classes];
        for (s, &l) in series.iter().zip(labels) {
            for (key, c) in self.bag(s) {
                let entry = counts.entry(key).or_insert_with(|| vec![0.0; n_classes]);
                entry[l] += c;
                class_totals[l] += c;
            }
        }
        let grand: f64 = class_totals.iter().sum();
        let mut scored: Vec<(u64, f64)> = counts
            .iter()
            .map(|(&key, per_class)| {
                let feat_total: f64 = per_class.iter().sum();
                let mut chi2 = 0.0;
                for (c, &obs) in per_class.iter().enumerate() {
                    let exp = feat_total * class_totals[c] / grand.max(1e-12);
                    if exp > 0.0 {
                        chi2 += (obs - exp) * (obs - exp) / exp;
                    }
                }
                (key, chi2)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(self.config.top_features);
        self.feature_map = scored
            .into_iter()
            .enumerate()
            .map(|(i, (key, _))| (key, i))
            .collect();
        Ok(())
    }

    /// The raw bag of `(feature key, count)` for one series.
    fn bag(&self, series: &[f64]) -> HashMap<u64, f64> {
        let mut bag = HashMap::new();
        for (wi, (win, model)) in self.models.iter().enumerate() {
            let feats = sliding_dft(series, *win, self.config.word_length);
            if feats.is_empty() {
                continue;
            }
            let words: Vec<u32> = feats.iter().map(|f| model.word(f)).collect();
            for (i, &w) in words.iter().enumerate() {
                *bag.entry(pack(wi, UNIGRAM, w)).or_insert(0.0) += 1.0;
                if self.config.use_bigrams && i >= *win {
                    let prev = words[i - *win];
                    *bag.entry(pack(wi, prev as u64 + 1, w)).or_insert(0.0) += 1.0;
                }
            }
        }
        bag
    }

    /// Serializes the fitted state: config, per-window SFA models and the
    /// selected feature map (written in sorted key order so the byte
    /// stream is deterministic despite the `HashMap`).
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        self.config.encode_state(e);
        e.usize(self.models.len());
        for (win, model) in &self.models {
            e.usize(*win);
            model.encode_state(e);
        }
        let mut entries: Vec<(u64, usize)> =
            self.feature_map.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable();
        e.usize(entries.len());
        for (key, idx) in entries {
            e.u64(key);
            e.usize(idx);
        }
    }

    /// Reconstructs a transform written by [`Weasel::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let config = WeaselConfig::decode_state(d)?;
        let n_models = d.usize()?;
        let mut models = Vec::with_capacity(n_models.min(1 << 16));
        for _ in 0..n_models {
            let win = d.usize()?;
            models.push((win, SfaModel::decode_state(d)?));
        }
        let n_feats = d.usize()?;
        let mut feature_map = HashMap::with_capacity(n_feats.min(1 << 20));
        for _ in 0..n_feats {
            let key = d.u64()?;
            let idx = d.usize()?;
            feature_map.insert(key, idx);
        }
        Ok(Weasel {
            config,
            models,
            feature_map,
        })
    }

    /// Transforms a series into the selected dense feature vector.
    ///
    /// Series shorter than every window produce the all-zero vector.
    ///
    /// # Errors
    /// [`MlError::NotFitted`] before `fit`.
    pub fn transform(&self, series: &[f64]) -> Result<Vec<f64>, MlError> {
        if self.models.is_empty() {
            return Err(MlError::NotFitted);
        }
        let mut out = vec![0.0; self.feature_map.len()];
        for (key, c) in self.bag(series) {
            if let Some(&idx) = self.feature_map.get(&key) {
                out[idx] = c;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two easily separable signal shapes.
    fn toy() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut series = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            let phase = i as f64 * 0.17;
            // Class 0: low-frequency sine; class 1: high-frequency sine.
            let slow: Vec<f64> = (0..40).map(|t| ((t as f64 * 0.2) + phase).sin()).collect();
            let fast: Vec<f64> = (0..40).map(|t| ((t as f64 * 1.5) + phase).sin()).collect();
            series.push(slow);
            labels.push(0);
            series.push(fast);
            labels.push(1);
        }
        (series, labels)
    }

    fn refs(series: &[Vec<f64>]) -> Vec<&[f64]> {
        series.iter().map(|s| s.as_slice()).collect()
    }

    #[test]
    fn produces_fixed_size_vectors() {
        let (series, labels) = toy();
        let mut w = Weasel::with_defaults();
        w.fit(&refs(&series), &labels, 2).unwrap();
        assert!(w.n_features() > 0);
        assert!(w.n_features() <= 384);
        let f = w.transform(&series[0]).unwrap();
        assert_eq!(f.len(), w.n_features());
    }

    #[test]
    fn features_separate_frequency_classes() {
        let (series, labels) = toy();
        let mut w = Weasel::with_defaults();
        w.fit(&refs(&series), &labels, 2).unwrap();
        // Average feature vectors per class must differ substantially.
        let mut mean0 = vec![0.0; w.n_features()];
        let mut mean1 = vec![0.0; w.n_features()];
        for (s, &l) in series.iter().zip(&labels) {
            let f = w.transform(s).unwrap();
            let target = if l == 0 { &mut mean0 } else { &mut mean1 };
            for (m, v) in target.iter_mut().zip(f) {
                *m += v;
            }
        }
        let dist: f64 = mean0
            .iter()
            .zip(&mean1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 1.0, "class means too close: {dist}");
    }

    #[test]
    fn short_series_transform_is_zero_vector() {
        let (series, labels) = toy();
        let mut w = Weasel::with_defaults();
        w.fit(&refs(&series), &labels, 2).unwrap();
        let f = w.transform(&[1.0, 2.0]).unwrap();
        assert!(f.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn window_lengths_respect_series_length() {
        let (series, labels) = toy();
        let mut w = Weasel::with_defaults();
        w.fit(&refs(&series), &labels, 2).unwrap();
        assert!(w.window_lengths().iter().all(|&l| (3..=40).contains(&l)));
    }

    #[test]
    fn bigrams_add_features() {
        let (series, labels) = toy();
        let mut with = Weasel::new(WeaselConfig {
            top_features: 100_000,
            ..WeaselConfig::default()
        });
        with.fit(&refs(&series), &labels, 2).unwrap();
        let mut without = Weasel::new(WeaselConfig {
            use_bigrams: false,
            top_features: 100_000,
            ..WeaselConfig::default()
        });
        without.fit(&refs(&series), &labels, 2).unwrap();
        assert!(with.n_features() > without.n_features());
    }

    #[test]
    fn error_paths() {
        let w = Weasel::with_defaults();
        assert!(matches!(w.transform(&[1.0]), Err(MlError::NotFitted)));
        let mut w = Weasel::with_defaults();
        assert!(w.fit(&[], &[], 2).is_err());
        let s = vec![1.0, 2.0, 3.0];
        let series: Vec<&[f64]> = vec![&s];
        assert!(w.fit(&series, &[0, 1], 2).is_err());
    }

    #[test]
    fn deterministic() {
        let (series, labels) = toy();
        let mut a = Weasel::with_defaults();
        let mut b = Weasel::with_defaults();
        a.fit(&refs(&series), &labels, 2).unwrap();
        b.fit(&refs(&series), &labels, 2).unwrap();
        assert_eq!(
            a.transform(&series[3]).unwrap(),
            b.transform(&series[3]).unwrap()
        );
    }
}
