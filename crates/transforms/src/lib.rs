//! # etsc-transforms
//!
//! Feature transforms for (early) time-series classification:
//!
//! * [`fourier`] — real discrete Fourier transform of sliding windows;
//! * [`sfa`] — Symbolic Fourier Approximation: information-gain binning of
//!   Fourier coefficients into discrete words;
//! * [`weasel`] — the WEASEL bag-of-patterns (multiple window sizes,
//!   unigrams + bigrams, chi-squared feature selection) used by S-WEASEL,
//!   TEASER and ECEC;
//! * [`muse`] — WEASEL+MUSE, the multivariate variant with per-dimension
//!   words and derivative channels;
//! * [`minirocket`] — the MiniROCKET transform: the fixed 84-kernel set
//!   with exponential dilations, training-quantile biases and PPV
//!   features.
//!
//! All transforms are fit on training data and produce dense feature
//! vectors consumable by the classifiers in `etsc-ml`.

pub mod fourier;
pub mod minirocket;
pub mod muse;
pub mod sfa;
pub mod weasel;

pub use minirocket::{MiniRocket, MiniRocketConfig};
pub use muse::{Muse, MuseConfig};
pub use sfa::SfaModel;
pub use weasel::{Weasel, WeaselConfig};
