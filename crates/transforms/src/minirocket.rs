//! MiniROCKET (Dempster et al. 2021): a fast, (almost) deterministic
//! convolutional transform.
//!
//! The fixed kernel set is every length-9 kernel with exactly three taps
//! of weight 2 and six taps of weight −1 (84 kernels, weights sum to ~0).
//! Kernels are applied at exponentially spaced dilations, with and without
//! padding (alternating), and each (kernel, dilation) pair produces a few
//! **PPV** features — the Proportion of Positive Values of the
//! convolution output above a bias drawn from training-set quantiles.
//! Multivariate inputs are handled by summing a per-combination channel
//! subset, as in the reference implementation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use etsc_data::MultiSeries;
use etsc_ml::MlError;

/// Hyper-parameters for [`MiniRocket`].
#[derive(Debug, Clone)]
pub struct MiniRocketConfig {
    /// Approximate total feature count (rounded to a multiple of the
    /// kernel/dilation combinations).
    pub num_features: usize,
    /// Maximum number of dilations.
    pub max_dilations: usize,
    /// Seed for channel-subset selection.
    pub seed: u64,
}

impl Default for MiniRocketConfig {
    fn default() -> Self {
        MiniRocketConfig {
            num_features: 1000,
            max_dilations: 8,
            seed: 31,
        }
    }
}

/// One (kernel, dilation) feature group.
#[derive(Debug, Clone)]
struct Combo {
    /// Indices (0..9) of the three weight-2 taps.
    kernel: [usize; 3],
    dilation: usize,
    padded: bool,
    /// Channels summed for this combination.
    channels: Vec<usize>,
    /// Bias per feature of this combination.
    biases: Vec<f64>,
}

/// Fitted MiniROCKET transform.
#[derive(Debug, Clone)]
pub struct MiniRocket {
    config: MiniRocketConfig,
    combos: Vec<Combo>,
    vars: usize,
}

/// Enumerates the 84 combinations of 3 positions among 9.
fn kernel_set() -> Vec<[usize; 3]> {
    let mut out = Vec::with_capacity(84);
    for a in 0..9 {
        for b in (a + 1)..9 {
            for c in (b + 1)..9 {
                out.push([a, b, c]);
            }
        }
    }
    out
}

/// Convolution output of one combo at every valid position.
fn convolve(sample: &MultiSeries, combo: &Combo) -> Vec<f64> {
    let len = sample.len();
    let d = combo.dilation;
    let span = 8 * d; // kernel reach: positions 0, d, ..., 8d
                      // Summed channel signal.
    let mut signal = vec![0.0; len];
    for &ch in &combo.channels {
        for (s, &v) in signal.iter_mut().zip(sample.var(ch)) {
            *s += v;
        }
    }
    let get = |t: isize| -> f64 {
        if t < 0 || t as usize >= len {
            0.0
        } else {
            signal[t as usize]
        }
    };
    let starts: Vec<isize> = if combo.padded {
        // Centre the kernel: output length = input length.
        (0..len as isize).map(|t| t - (span / 2) as isize).collect()
    } else {
        if len <= span {
            return Vec::new();
        }
        (0..(len - span) as isize).collect()
    };
    let mut out = Vec::with_capacity(starts.len());
    for s in starts {
        let mut acc = 0.0;
        for k in 0..9 {
            let pos = s + (k * d) as isize;
            let w = if combo.kernel.contains(&k) { 2.0 } else { -1.0 };
            acc += w * get(pos);
        }
        out.push(acc);
    }
    out
}

impl MiniRocket {
    /// Untrained transform.
    pub fn new(config: MiniRocketConfig) -> Self {
        MiniRocket {
            config,
            combos: Vec::new(),
            vars: 0,
        }
    }

    /// Untrained transform with defaults (~1000 features).
    pub fn with_defaults() -> Self {
        Self::new(MiniRocketConfig::default())
    }

    /// Total number of PPV features (0 before fit).
    pub fn n_features(&self) -> usize {
        self.combos.iter().map(|c| c.biases.len()).sum()
    }

    /// Fits dilations, channel subsets and bias quantiles on training
    /// samples.
    ///
    /// # Errors
    /// [`MlError::EmptyTrainingSet`] on empty input.
    pub fn fit(&mut self, samples: &[MultiSeries]) -> Result<(), MlError> {
        let mut span = etsc_obs::ambient_span("transform");
        span.attr("name", "minirocket");
        span.attr("samples", &samples.len().to_string());
        if samples.is_empty() || samples[0].is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let len = samples.iter().map(|s| s.len()).min().expect("non-empty");
        let vars = samples[0].vars();
        self.vars = vars;
        let kernels = kernel_set();
        // Exponentially spaced dilations with receptive field inside the
        // series.
        let max_d = ((len.saturating_sub(1)) / 8).max(1);
        let k = self.config.max_dilations.max(1);
        let mut dilations: Vec<usize> = (0..k)
            .map(|i| {
                let e = (max_d as f64).ln() * i as f64 / (k.saturating_sub(1).max(1)) as f64;
                e.exp().round() as usize
            })
            .map(|d| d.max(1))
            .collect();
        dilations.dedup();

        let n_combos = kernels.len() * dilations.len();
        let feats_per_combo = (self.config.num_features / n_combos).max(1);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        // Quantile positions via a low-discrepancy (golden ratio) sequence.
        let phi = (5.0_f64.sqrt() - 1.0) / 2.0;

        self.combos.clear();
        let mut combo_idx = 0usize;
        for &dilation in &dilations {
            for kernel in &kernels {
                // Channel subset: the reference samples a random subset of
                // size 2^u; for small var counts take 1..=vars uniformly.
                let subset = if vars == 1 {
                    vec![0]
                } else {
                    let size = rng.random_range(1..=vars);
                    let mut chans: Vec<usize> = (0..vars).collect();
                    for i in (1..chans.len()).rev() {
                        let j = rng.random_range(0..=i);
                        chans.swap(i, j);
                    }
                    chans.truncate(size);
                    chans.sort_unstable();
                    chans
                };
                let mut combo = Combo {
                    kernel: *kernel,
                    dilation,
                    padded: combo_idx.is_multiple_of(2),
                    channels: subset,
                    biases: Vec::new(),
                };
                // Bias quantiles from one training sample per combo
                // (cycled), matching MiniROCKET's per-kernel sampling.
                let sample = &samples[combo_idx % samples.len()];
                let mut conv = convolve(sample, &combo);
                if conv.is_empty() {
                    // Unpadded kernel longer than series: fall back to padded.
                    combo.padded = true;
                    conv = convolve(sample, &combo);
                }
                conv.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                for f in 0..feats_per_combo {
                    let q = ((combo_idx * feats_per_combo + f + 1) as f64 * phi).fract();
                    let pos = ((conv.len() as f64 - 1.0) * q).round() as usize;
                    combo.biases.push(conv[pos.min(conv.len() - 1)]);
                }
                self.combos.push(combo);
                combo_idx += 1;
            }
        }
        Ok(())
    }

    /// Serializes the fitted state: config, kernel/dilation combinations
    /// with their channel subsets and bias quantiles.
    pub fn encode_state(&self, e: &mut etsc_data::Encoder) {
        e.usize(self.config.num_features);
        e.usize(self.config.max_dilations);
        e.u64(self.config.seed);
        e.usize(self.combos.len());
        for c in &self.combos {
            e.usize(c.kernel[0]);
            e.usize(c.kernel[1]);
            e.usize(c.kernel[2]);
            e.usize(c.dilation);
            e.bool(c.padded);
            e.usizes(&c.channels);
            e.f64s(&c.biases);
        }
        e.usize(self.vars);
    }

    /// Reconstructs a transform written by [`MiniRocket::encode_state`].
    ///
    /// # Errors
    /// [`etsc_data::CodecError`] on malformed input.
    pub fn decode_state(d: &mut etsc_data::Decoder) -> Result<Self, etsc_data::CodecError> {
        let config = MiniRocketConfig {
            num_features: d.usize()?,
            max_dilations: d.usize()?,
            seed: d.u64()?,
        };
        let n = d.usize()?;
        let mut combos = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            combos.push(Combo {
                kernel: [d.usize()?, d.usize()?, d.usize()?],
                dilation: d.usize()?,
                padded: d.bool()?,
                channels: d.usizes()?,
                biases: d.f64s()?,
            });
        }
        Ok(MiniRocket {
            config,
            combos,
            vars: d.usize()?,
        })
    }

    /// Transforms a sample into its PPV feature vector.
    ///
    /// # Errors
    /// [`MlError::NotFitted`] / [`MlError::DimensionMismatch`].
    pub fn transform(&self, sample: &MultiSeries) -> Result<Vec<f64>, MlError> {
        if self.combos.is_empty() {
            return Err(MlError::NotFitted);
        }
        if sample.vars() != self.vars {
            return Err(MlError::DimensionMismatch {
                expected: self.vars,
                got: sample.vars(),
            });
        }
        let mut out = Vec::with_capacity(self.n_features());
        for combo in &self.combos {
            let conv = convolve(sample, combo);
            if conv.is_empty() {
                out.extend(std::iter::repeat_n(0.0, combo.biases.len()));
                continue;
            }
            let n = conv.len() as f64;
            for &bias in &combo.biases {
                let ppv = conv.iter().filter(|&&v| v > bias).count() as f64 / n;
                out.push(ppv);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::Series;

    fn uni(values: Vec<f64>) -> MultiSeries {
        MultiSeries::univariate(Series::new(values))
    }

    fn toy() -> Vec<MultiSeries> {
        (0..6)
            .map(|i| {
                let phase = i as f64 * 0.4;
                uni((0..50).map(|t| ((t as f64 * 0.3) + phase).sin()).collect())
            })
            .collect()
    }

    #[test]
    fn kernel_set_has_84_members() {
        let ks = kernel_set();
        assert_eq!(ks.len(), 84);
        // All distinct, all strictly increasing triples.
        for k in &ks {
            assert!(k[0] < k[1] && k[1] < k[2] && k[2] < 9);
        }
    }

    #[test]
    fn feature_count_close_to_requested() {
        let samples = toy();
        let mut mr = MiniRocket::new(MiniRocketConfig {
            num_features: 300,
            max_dilations: 4,
            seed: 0,
        });
        mr.fit(&samples).unwrap();
        let n = mr.n_features();
        assert!(n >= 84, "n = {n}");
        let f = mr.transform(&samples[0]).unwrap();
        assert_eq!(f.len(), n);
    }

    #[test]
    fn ppv_features_are_proportions() {
        let samples = toy();
        let mut mr = MiniRocket::with_defaults();
        mr.fit(&samples).unwrap();
        let f = mr.transform(&samples[1]).unwrap();
        assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Not all features degenerate.
        assert!(f.iter().any(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let samples = toy();
        let mut a = MiniRocket::with_defaults();
        let mut b = MiniRocket::with_defaults();
        a.fit(&samples).unwrap();
        b.fit(&samples).unwrap();
        assert_eq!(
            a.transform(&samples[2]).unwrap(),
            b.transform(&samples[2]).unwrap()
        );
    }

    #[test]
    fn distinguishes_different_signals() {
        let samples = toy();
        let mut mr = MiniRocket::with_defaults();
        mr.fit(&samples).unwrap();
        let flat = uni(vec![0.0; 50]);
        let f_sin = mr.transform(&samples[0]).unwrap();
        let f_flat = mr.transform(&flat).unwrap();
        let dist: f64 = f_sin
            .iter()
            .zip(&f_flat)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.5, "distance {dist}");
    }

    #[test]
    fn multivariate_channels() {
        let samples: Vec<MultiSeries> = (0..4)
            .map(|i| {
                let a: Vec<f64> = (0..40).map(|t| ((t + i) as f64 * 0.2).sin()).collect();
                let b: Vec<f64> = (0..40).map(|t| ((t + i) as f64 * 0.9).cos()).collect();
                MultiSeries::from_rows(vec![a, b]).unwrap()
            })
            .collect();
        let mut mr = MiniRocket::with_defaults();
        mr.fit(&samples).unwrap();
        let f = mr.transform(&samples[0]).unwrap();
        assert_eq!(f.len(), mr.n_features());
        let wrong = uni(vec![0.0; 40]);
        assert!(mr.transform(&wrong).is_err());
    }

    #[test]
    fn error_paths() {
        let mr = MiniRocket::with_defaults();
        let s = toy();
        assert!(matches!(mr.transform(&s[0]), Err(MlError::NotFitted)));
        let mut mr = MiniRocket::with_defaults();
        assert!(mr.fit(&[]).is_err());
    }

    #[test]
    fn very_short_series_still_works() {
        let samples: Vec<MultiSeries> = (0..3).map(|i| uni(vec![i as f64; 10])).collect();
        let mut mr = MiniRocket::with_defaults();
        mr.fit(&samples).unwrap();
        let f = mr.transform(&samples[0]).unwrap();
        assert_eq!(f.len(), mr.n_features());
    }
}
