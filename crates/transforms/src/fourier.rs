//! Real discrete Fourier transform of short windows.
//!
//! SFA keeps only the first few Fourier coefficients of each sliding
//! window, so a direct `O(n · k)` evaluation beats an FFT for the window
//! sizes WEASEL uses (k ≈ 2-4 complex coefficients).

/// First `n_coeffs` *real-valued* Fourier features of a window:
/// interleaved `[re(c1), im(c1), re(c2), im(c2), ...]`.
///
/// The DC coefficient `c0` is skipped — its magnitude only encodes the
/// window mean, which WEASEL drops to gain shift invariance (the
/// "mean-normalised" configuration the paper's no-z-norm variant keeps).
/// When fewer coefficients exist than requested, the output is
/// zero-padded so callers always receive `n_coeffs` values.
pub fn dft_features(window: &[f64], n_coeffs: usize) -> Vec<f64> {
    let n = window.len();
    let mut out = Vec::with_capacity(n_coeffs);
    if n == 0 {
        return vec![0.0; n_coeffs];
    }
    let base = -2.0 * std::f64::consts::PI / n as f64;
    let mut k = 1usize; // skip DC
    while out.len() < n_coeffs {
        if k > n / 2 {
            out.push(0.0);
            continue;
        }
        let mut re = 0.0;
        let mut im = 0.0;
        for (t, &v) in window.iter().enumerate() {
            let angle = base * (k * t) as f64;
            re += v * angle.cos();
            im += v * angle.sin();
        }
        out.push(re);
        if out.len() < n_coeffs {
            out.push(im);
        }
        k += 1;
    }
    out
}

/// All sliding windows of `len` over `series` (step 1), transformed by
/// [`dft_features`]. Returns an empty vector when the series is shorter
/// than the window.
///
/// Uses the incremental **momentary Fourier transform** (MFT): after the
/// first window's direct DFT, each shift updates every kept coefficient
/// in O(1) via `F_k ← (F_k − x_out + x_in)·e^{i2πk/n}`, making the whole
/// pass O(W·k) instead of O(W·n·k).
pub fn sliding_dft(series: &[f64], len: usize, n_coeffs: usize) -> Vec<Vec<f64>> {
    if series.len() < len || len == 0 {
        return Vec::new();
    }
    let n_windows = series.len() - len + 1;
    // Complex coefficients kept: ceil(n_coeffs / 2) of c1, c2, ...
    let kept = n_coeffs.div_ceil(2);
    let mut out = Vec::with_capacity(n_windows);

    // First window: direct DFT, tracking complex values for the update.
    let base = -2.0 * std::f64::consts::PI / len as f64;
    let mut re = vec![0.0f64; kept];
    let mut im = vec![0.0f64; kept];
    for (kk, (r, i)) in re.iter_mut().zip(im.iter_mut()).enumerate() {
        let k = kk + 1; // skip DC
        if k > len / 2 {
            break;
        }
        for (t, &v) in series[..len].iter().enumerate() {
            let angle = base * (k * t) as f64;
            *r += v * angle.cos();
            *i += v * angle.sin();
        }
    }
    let emit = |re: &[f64], im: &[f64]| -> Vec<f64> {
        let mut f = Vec::with_capacity(n_coeffs);
        for kk in 0..kept {
            let k = kk + 1;
            let (r, i) = if k > len / 2 {
                (0.0, 0.0)
            } else {
                (re[kk], im[kk])
            };
            f.push(r);
            if f.len() < n_coeffs {
                f.push(i);
            }
        }
        f.truncate(n_coeffs);
        while f.len() < n_coeffs {
            f.push(0.0);
        }
        f
    };
    out.push(emit(&re, &im));

    // MFT updates for the remaining windows.
    for w in 1..n_windows {
        let x_out = series[w - 1];
        let x_in = series[w - 1 + len];
        for kk in 0..kept {
            let k = kk + 1;
            if k > len / 2 {
                continue;
            }
            // Remove the outgoing sample (phase 0 in the old window),
            // add the incoming one (phase n ≡ 0 mod n), then rotate.
            let r = re[kk] - x_out + x_in;
            let i = im[kk];
            let angle = -base * k as f64; // e^{+i2πk/n}: indices shift left
            let (c, s) = (angle.cos(), angle.sin());
            re[kk] = r * c - i * s;
            im[kk] = r * s + i * c;
        }
        out.push(emit(&re, &im));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_window_has_zero_ac_coefficients() {
        let f = dft_features(&[3.0; 8], 4);
        assert!(f.iter().all(|&v| v.abs() < 1e-9), "{f:?}");
    }

    #[test]
    fn pure_cosine_concentrates_in_first_coefficient() {
        let n = 16;
        let w: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / n as f64).cos())
            .collect();
        let f = dft_features(&w, 4);
        // re(c1) = n/2, everything else ~0.
        assert!((f[0] - n as f64 / 2.0).abs() < 1e-9, "{f:?}");
        assert!(f[1].abs() < 1e-9);
        assert!(f[2].abs() < 1e-9);
        assert!(f[3].abs() < 1e-9);
    }

    #[test]
    fn sine_shows_up_in_imaginary_part() {
        let n = 16;
        let w: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / n as f64).sin())
            .collect();
        let f = dft_features(&w, 2);
        assert!(f[0].abs() < 1e-9);
        assert!((f[1] + n as f64 / 2.0).abs() < 1e-9, "{f:?}");
    }

    #[test]
    fn output_always_has_requested_length() {
        assert_eq!(dft_features(&[1.0, 2.0], 6).len(), 6);
        assert_eq!(dft_features(&[], 4), vec![0.0; 4]);
    }

    #[test]
    fn incremental_mft_matches_direct_dft() {
        // The O(1)-per-shift MFT must agree with the direct transform on
        // every window, for even and odd window lengths and coefficient
        // counts beyond the Nyquist limit.
        let series: Vec<f64> = (0..60)
            .map(|t| (t as f64 * 0.37).sin() * 3.0 + (t as f64 * 1.7).cos())
            .collect();
        for &len in &[4usize, 5, 9, 16] {
            for &n_coeffs in &[2usize, 4, 6, 12] {
                let fast = sliding_dft(&series, len, n_coeffs);
                let slow: Vec<Vec<f64>> = series
                    .windows(len)
                    .map(|w| dft_features(w, n_coeffs))
                    .collect();
                assert_eq!(fast.len(), slow.len());
                for (wi, (a, b)) in fast.iter().zip(&slow).enumerate() {
                    for (x, y) in a.iter().zip(b) {
                        assert!(
                            (x - y).abs() < 1e-7,
                            "len {len} coeffs {n_coeffs} window {wi}: {x} vs {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sliding_windows_cover_series() {
        let s: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ws = sliding_dft(&s, 4, 2);
        assert_eq!(ws.len(), 7);
        assert!(sliding_dft(&s, 11, 2).is_empty());
        assert!(sliding_dft(&s, 0, 2).is_empty());
    }

    #[test]
    fn mean_shift_invariance() {
        // Skipping c0 makes features invariant to adding a constant.
        let a = [1.0, 5.0, 2.0, 8.0, 3.0, 4.0, 7.0, 2.0];
        let b: Vec<f64> = a.iter().map(|v| v + 100.0).collect();
        let fa = dft_features(&a, 4);
        let fb = dft_features(&b, 4);
        for (x, y) in fa.iter().zip(&fb) {
            assert!((x - y).abs() < 1e-8);
        }
    }
}
