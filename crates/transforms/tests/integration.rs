//! Transform-level integration tests: the WEASEL/MUSE/MiniROCKET
//! pipelines paired with their reference classifier heads, and
//! cross-transform sanity properties.

use etsc_data::{MultiSeries, Series};
use etsc_ml::logistic::LogisticRegression;
use etsc_ml::ridge::RidgeClassifier;
use etsc_ml::{Classifier, Matrix};
use etsc_transforms::minirocket::{MiniRocket, MiniRocketConfig};
use etsc_transforms::muse::{Muse, MuseConfig};
use etsc_transforms::weasel::{Weasel, WeaselConfig};

/// Three-class signal zoo: sine frequencies + a square wave.
fn zoo(n_per_class: usize, len: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut series = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n_per_class {
        let phase = i as f64 * 0.37;
        series.push(
            (0..len)
                .map(|t| ((t as f64 * 0.25) + phase).sin())
                .collect(),
        );
        labels.push(0);
        series.push((0..len).map(|t| ((t as f64 * 1.3) + phase).sin()).collect());
        labels.push(1);
        series.push(
            (0..len)
                .map(|t| {
                    if ((t as f64 * 0.4) + phase).sin() > 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect(),
        );
        labels.push(2);
    }
    (series, labels)
}

#[test]
fn weasel_logistic_three_class_pipeline() {
    let (series, labels) = zoo(10, 48);
    let refs: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
    let mut w = Weasel::with_defaults();
    w.fit(&refs, &labels, 3).unwrap();
    let rows: Vec<Vec<f64>> = series.iter().map(|s| w.transform(s).unwrap()).collect();
    let x = Matrix::from_rows(&rows).unwrap();
    let mut head = LogisticRegression::with_defaults();
    head.fit(&x, &labels, 3).unwrap();
    let correct = rows
        .iter()
        .zip(&labels)
        .filter(|(r, &l)| head.predict(r).unwrap() == l)
        .count();
    assert!(
        correct as f64 / labels.len() as f64 > 0.9,
        "{correct}/{}",
        labels.len()
    );
}

#[test]
fn minirocket_ridge_three_class_pipeline() {
    let (series, labels) = zoo(10, 48);
    let samples: Vec<MultiSeries> = series
        .iter()
        .map(|s| MultiSeries::univariate(Series::new(s.clone())))
        .collect();
    let mut mr = MiniRocket::new(MiniRocketConfig {
        num_features: 400,
        max_dilations: 5,
        seed: 1,
    });
    mr.fit(&samples).unwrap();
    let rows: Vec<Vec<f64>> = samples.iter().map(|s| mr.transform(s).unwrap()).collect();
    let x = Matrix::from_rows(&rows).unwrap();
    let mut head = RidgeClassifier::with_defaults();
    head.fit(&x, &labels, 3).unwrap();
    let correct = rows
        .iter()
        .zip(&labels)
        .filter(|(r, &l)| head.predict(r).unwrap() == l)
        .count();
    assert!(
        correct as f64 / labels.len() as f64 > 0.9,
        "{correct}/{}",
        labels.len()
    );
}

#[test]
fn muse_separates_channel_swapped_classes() {
    let mut samples = Vec::new();
    let mut labels = Vec::new();
    for i in 0..10 {
        let phase = i as f64 * 0.29;
        let a: Vec<f64> = (0..40).map(|t| ((t as f64 * 0.3) + phase).sin()).collect();
        let b: Vec<f64> = (0..40).map(|t| ((t as f64 * 1.5) + phase).sin()).collect();
        samples.push(MultiSeries::from_rows(vec![a.clone(), b.clone()]).unwrap());
        labels.push(0);
        samples.push(MultiSeries::from_rows(vec![b, a]).unwrap());
        labels.push(1);
    }
    let mut m = Muse::new(MuseConfig::default());
    m.fit(&samples, &labels, 2).unwrap();
    let rows: Vec<Vec<f64>> = samples.iter().map(|s| m.transform(s).unwrap()).collect();
    let x = Matrix::from_rows(&rows).unwrap();
    let mut head = LogisticRegression::with_defaults();
    head.fit(&x, &labels, 2).unwrap();
    let correct = rows
        .iter()
        .zip(&labels)
        .filter(|(r, &l)| head.predict(r).unwrap() == l)
        .count();
    assert!(correct as f64 / labels.len() as f64 > 0.9);
}

#[test]
fn weasel_transform_counts_scale_with_series_length() {
    // Doubling the series length roughly doubles the total bag mass —
    // the counts are window counts, not normalised frequencies.
    let (series, labels) = zoo(8, 32);
    let refs: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
    let mut w = Weasel::new(WeaselConfig {
        max_windows: 3,
        ..WeaselConfig::default()
    });
    w.fit(&refs, &labels, 3).unwrap();
    let short_mass: f64 = w.transform(&series[0]).unwrap().iter().sum();
    let mut doubled = series[0].clone();
    doubled.extend_from_slice(&series[0]);
    let long_mass: f64 = w.transform(&doubled).unwrap().iter().sum();
    assert!(long_mass > short_mass, "{long_mass} vs {short_mass}");
}

#[test]
fn minirocket_is_length_tolerant_at_transform_time() {
    // MiniROCKET transforms of longer series than trained on still work
    // (padded kernels see more positions).
    let (series, _) = zoo(4, 32);
    let samples: Vec<MultiSeries> = series
        .iter()
        .map(|s| MultiSeries::univariate(Series::new(s.clone())))
        .collect();
    let mut mr = MiniRocket::with_defaults();
    mr.fit(&samples).unwrap();
    let mut longer = series[0].clone();
    longer.extend_from_slice(&series[1]);
    let f = mr
        .transform(&MultiSeries::univariate(Series::new(longer)))
        .unwrap();
    assert_eq!(f.len(), mr.n_features());
    assert!(f.iter().all(|v| v.is_finite()));
}

#[test]
fn transforms_are_robust_to_constant_series() {
    let (mut series, mut labels) = zoo(6, 32);
    series.push(vec![0.0; 32]);
    labels.push(0);
    let refs: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
    let mut w = Weasel::with_defaults();
    w.fit(&refs, &labels, 3).unwrap();
    let f = w.transform(&series[series.len() - 1]).unwrap();
    assert!(f.iter().all(|v| v.is_finite()));

    let samples: Vec<MultiSeries> = series
        .iter()
        .map(|s| MultiSeries::univariate(Series::new(s.clone())))
        .collect();
    let mut mr = MiniRocket::with_defaults();
    mr.fit(&samples).unwrap();
    let f = mr.transform(samples.last().unwrap()).unwrap();
    assert!(f.iter().all(|v| v.is_finite()));
}
