//! Drift as an evaluation axis: adaptive vs frozen over one stream.
//!
//! The paper's matrix evaluates frozen models; this module replays a
//! (possibly drifting) instance stream twice under identical decision
//! machinery — once with the initial model frozen, once supervised by
//! an [`Adapter`] receiving per-instance label feedback — and scores
//! both arms with the framework's own [`Metrics`]. The instance order
//! *is* the time axis: drift generators (see `etsc_datasets::drift`)
//! place their regime change along it.
//!
//! [`compare_cell`] packages the adaptive arm as a
//! `MatrixRunner::run_with`-compatible cell so drift datasets slot
//! straight into the evaluation matrix.

use std::sync::Arc;
use std::time::Instant;

use etsc_core::EtscError;
use etsc_data::{Dataset, DatasetBuilder, MultiSeries};
use etsc_eval::experiment::{AlgoSpec, RunConfig, RunResult};
use etsc_eval::metrics::{EvalOutcome, Metrics};
use etsc_serve::{fit_model, ServeError, StoredModel, StreamSession};

use crate::adapter::{Adapter, AdapterConfig, FeedbackEvent, FeedbackSink};
use crate::reservoir::LabeledExample;

/// Options for [`adaptive_vs_frozen`].
#[derive(Clone)]
pub struct CompareOptions {
    /// Leading fraction of the stream used to train the initial model
    /// (both arms start from byte-identical copies of it).
    pub train_frac: f64,
    /// Supervisor configuration for the adaptive arm.
    pub adapter: AdapterConfig,
    /// Pre-fill the adaptive arm's reservoir with the training
    /// examples so its first refit is not starved.
    pub seed_reservoir: bool,
}

impl Default for CompareOptions {
    fn default() -> CompareOptions {
        CompareOptions {
            train_frac: 0.3,
            adapter: AdapterConfig::default(),
            seed_reservoir: true,
        }
    }
}

/// Both arms' scores plus the adaptive arm's adaptation activity.
#[derive(Debug, Clone, Copy)]
pub struct CompareOutcome {
    /// Frozen-model metrics over the evaluation tail.
    pub frozen: Metrics,
    /// Adapter-supervised metrics over the same tail.
    pub adaptive: Metrics,
    /// Initial training wall-clock seconds.
    pub train_secs: f64,
    /// Instances in the evaluation tail.
    pub evaluated: usize,
    /// Drift signals raised in the adaptive arm.
    pub drifts: u64,
    /// Refits trained.
    pub refits: u64,
    /// Hot-swaps committed.
    pub swaps: u64,
    /// Swaps rolled back.
    pub rollbacks: u64,
    /// Generation serving when the stream ended.
    pub final_generation: u64,
}

/// Copies the instance's values out as per-variable rows.
fn instance_rows(inst: &MultiSeries) -> Vec<Vec<f64>> {
    (0..inst.vars())
        .map(|v| (0..inst.len()).map(|t| inst.at(v, t)).collect())
        .collect()
}

/// The leading `n_train` instances as a training dataset, with the
/// full stream's class registry pre-interned so dense labels agree.
fn head_subset(stream: &Dataset, n_train: usize) -> Result<Dataset, EtscError> {
    let mut b = DatasetBuilder::new(stream.name());
    for class in stream.class_names() {
        b.class(class);
    }
    for i in 0..n_train {
        let inst =
            MultiSeries::from_rows(instance_rows(stream.instance(i))).map_err(EtscError::Data)?;
        b.push_named(inst, &stream.class_names()[stream.label(i)]);
    }
    b.build().map_err(EtscError::Data)
}

/// Streams one instance through a fresh session against `model`,
/// reporting the truth back through `StreamSession::feedback`.
fn replay_one(
    model: &StoredModel,
    inst: &MultiSeries,
    batch: usize,
    truth: usize,
) -> Result<EvalOutcome, EtscError> {
    let vars = inst.vars();
    let len = inst.len();
    let mut session = StreamSession::new(model.classifier(), vars, len, batch)?;
    let mut decided = None;
    for t in 0..len {
        let row: Vec<f64> = (0..vars).map(|v| inst.at(v, t)).collect();
        if let Some(p) = session.push(&row)? {
            decided = Some(p);
            break;
        }
    }
    let p = match decided {
        Some(p) => p,
        None => session.force_decide(model.meta.prior_label)?,
    };
    let correct = session.feedback(truth);
    debug_assert_eq!(correct, Some(p.label == truth));
    Ok(EvalOutcome {
        truth,
        predicted: p.label,
        prefix_len: p.prefix_len.max(1),
        full_len: len,
    })
}

/// Replays the stream's evaluation tail through a frozen arm and an
/// adapter-supervised arm and scores both.
///
/// # Errors
/// Training or evaluation failures ([`ServeError`]); the stream must
/// have enough instances for a split and at least two classes in the
/// training head.
pub fn adaptive_vs_frozen(
    algo: AlgoSpec,
    stream: &Dataset,
    opts: &CompareOptions,
) -> Result<CompareOutcome, ServeError> {
    let n = stream.len();
    let n_train = ((n as f64 * opts.train_frac) as usize).max(4);
    if n_train + 1 >= n {
        return Err(ServeError::Format(format!(
            "stream of {n} instances is too short for an adaptive-vs-frozen split at train_frac {}",
            opts.train_frac
        )));
    }
    let train = head_subset(stream, n_train).map_err(ServeError::Model)?;
    let started = Instant::now();
    let frozen = fit_model(algo, &train, &opts.adapter.train)?;
    let train_secs = started.elapsed().as_secs_f64();
    // The adaptive arm starts from a byte-identical copy so any score
    // difference is attributable to adaptation alone.
    let initial = StoredModel::from_bytes(&frozen.to_bytes()?)?;
    let adapter = Adapter::new(Arc::new(initial), None, opts.adapter.clone());
    if opts.seed_reservoir {
        adapter.seed_reservoir((0..n_train).map(|i| LabeledExample {
            rows: instance_rows(stream.instance(i)),
            class: stream.class_names()[stream.label(i)].clone(),
        }));
    }
    let batch = algo.decision_batch(frozen.meta.train_len, &opts.adapter.train);
    let mut frozen_outcomes = Vec::with_capacity(n - n_train);
    let mut adaptive_outcomes = Vec::with_capacity(n - n_train);
    for i in n_train..n {
        let inst = stream.instance(i);
        let truth = stream.label(i);
        frozen_outcomes.push(replay_one(&frozen, inst, batch, truth).map_err(ServeError::Model)?);
        let model = adapter.current();
        let out = replay_one(&model, inst, batch, truth).map_err(ServeError::Model)?;
        adapter.record(FeedbackEvent {
            key: 0,
            session: i as u64,
            predicted: out.predicted,
            truth,
            prefix_len: out.prefix_len,
            generation: model.meta.generation,
            class_name: stream.class_names()[truth].clone(),
            rows: instance_rows(inst),
        });
        adapter.poll()?;
        adaptive_outcomes.push(out);
    }
    let stats = adapter.stats();
    Ok(CompareOutcome {
        frozen: Metrics::compute(&frozen_outcomes, stream.n_classes()),
        adaptive: Metrics::compute(&adaptive_outcomes, stream.n_classes()),
        train_secs,
        evaluated: n - n_train,
        drifts: stats.drifts,
        refits: stats.refits,
        swaps: stats.swaps,
        rollbacks: stats.rollbacks,
        final_generation: stats.generation,
    })
}

/// An adaptive-evaluation cell for `MatrixRunner::run_with`: scores
/// the *adaptive* arm of [`adaptive_vs_frozen`] so drift datasets run
/// through the standard matrix machinery (journaling, retries,
/// observability) like any other cell.
///
/// # Errors
/// Propagates training/evaluation failures as [`EtscError`].
pub fn compare_cell(
    algo: AlgoSpec,
    data: &Dataset,
    config: &RunConfig,
) -> Result<RunResult, EtscError> {
    let opts = CompareOptions {
        adapter: AdapterConfig {
            train: config.clone(),
            ..AdapterConfig::default()
        },
        ..CompareOptions::default()
    };
    let started = Instant::now();
    let outcome = adaptive_vs_frozen(algo, data, &opts).map_err(|e| match e {
        ServeError::Model(inner) => inner,
        other => EtscError::Config(other.to_string()),
    })?;
    let total = started.elapsed().as_secs_f64();
    Ok(RunResult {
        algo,
        dataset: data.name().to_string(),
        metrics: Some(outcome.adaptive),
        train_secs: outcome.train_secs,
        test_secs_per_instance: if outcome.evaluated > 0 {
            (total - outcome.train_secs).max(0.0) / outcome.evaluated as f64
        } else {
            0.0
        },
        dnf: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::DetectorKind;
    use etsc_data::Series;

    /// A univariate stream whose label mapping flips halfway: class
    /// "up" series slope upward and "down" downward for the first
    /// half, then the *names* swap — P(y|x) changes, the model keeps
    /// seeing familiar shapes with contradicting truths.
    fn flipping_stream(n: usize, len: usize) -> Dataset {
        let mut b = DatasetBuilder::new("flip");
        for i in 0..n {
            let up = i % 2 == 0;
            let flipped = i >= n / 2;
            let slope = if up { 1.0 } else { -1.0 };
            let values: Vec<f64> = (0..len)
                .map(|t| slope * (t as f64 + 1.0) + (i % 5) as f64 * 0.01)
                .collect();
            let class = match (up, flipped) {
                (true, false) | (false, true) => "up",
                _ => "down",
            };
            b.push_named(MultiSeries::univariate(Series::new(values)), class);
        }
        b.build().unwrap()
    }

    #[test]
    fn adaptation_beats_frozen_on_a_label_flip() {
        let stream = flipping_stream(120, 16);
        let opts = CompareOptions {
            train_frac: 0.25,
            adapter: AdapterConfig {
                detector: DetectorKind::Ddm,
                reservoir_cap: 48,
                min_refit_examples: 12,
                rollback_window: 12,
                // Drift alone is not enough: a refit committed from a
                // reservoir still dominated by the old concept yields a
                // model that is wrong from birth, which a rate-*change*
                // detector can never flag. The periodic schedule keeps
                // refitting on ever-fresher reservoirs until accuracy
                // recovers. Longer than DDM's 30-observation warm-up so
                // the swap-time detector reset cannot starve detection.
                refit_every: Some(32),
                ..AdapterConfig::default()
            },
            seed_reservoir: false,
        };
        let out = adaptive_vs_frozen(AlgoSpec::Ects, &stream, &opts).unwrap();
        assert!(out.drifts >= 1, "no drift detected: {out:?}");
        assert!(out.swaps >= 1, "no hot-swap committed: {out:?}");
        assert!(
            out.adaptive.accuracy > out.frozen.accuracy,
            "adaptive {:.3} did not beat frozen {:.3}",
            out.adaptive.accuracy,
            out.frozen.accuracy
        );
        assert!(out.final_generation > 1);
    }

    #[test]
    fn short_streams_are_rejected() {
        let stream = flipping_stream(5, 8);
        let err = adaptive_vs_frozen(AlgoSpec::Ects, &stream, &CompareOptions::default());
        assert!(err.is_err());
    }
}
