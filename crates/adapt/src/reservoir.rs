//! Bounded reservoir of recent labeled series — the refit training set.
//!
//! Label feedback arrives one series at a time and never stops; a
//! refit needs a bounded, representative sample of the *recent*
//! stream — after a concept change the refit must train on the new
//! concept, not a uniform sample dominated by stale pre-drift data.
//! This is biased reservoir sampling (Aggarwal, 2006): every offered
//! example is admitted, evicting a uniformly random resident, so a
//! resident's survival decays geometrically with mean lifetime `cap`.
//! A splitmix64 PRNG makes a seeded run sample identically everywhere.

use std::collections::HashMap;

use etsc_data::{DataError, Dataset, DatasetBuilder, MultiSeries};

/// One labeled series captured after its decision: the full observed
/// values (one inner vector per variable) and the fed-back true class
/// *name* — names, not dense labels, so examples stay meaningful
/// across hot-swaps that re-intern the class registry.
#[derive(Debug, Clone)]
pub struct LabeledExample {
    /// Observed values, one inner vector per variable.
    pub rows: Vec<Vec<f64>>,
    /// True class display name.
    pub class: String,
}

/// A bounded recency-biased sample of the feedback stream: the last
/// `cap` offers are over-represented and older examples decay away
/// geometrically. Deterministic under its seed.
#[derive(Debug, Clone)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    items: Vec<LabeledExample>,
    state: u64,
}

impl Reservoir {
    /// An empty reservoir holding at most `cap` examples.
    pub fn new(cap: usize, seed: u64) -> Reservoir {
        Reservoir {
            cap: cap.max(1),
            seen: 0,
            items: Vec::new(),
            state: seed,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Offers one example. Below capacity it is appended; at capacity
    /// it *always* enters, evicting a uniformly random resident — the
    /// biased-reservoir rule that keeps the sample anchored to the
    /// recent stream.
    pub fn push(&mut self, example: LabeledExample) {
        self.seen += 1;
        if self.items.len() < self.cap {
            self.items.push(example);
            return;
        }
        let j = (self.next_u64() % self.cap as u64) as usize;
        self.items[j] = example;
    }

    /// Examples currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Examples ever offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Residents per class name.
    pub fn class_counts(&self) -> HashMap<&str, usize> {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for item in &self.items {
            *counts.entry(item.class.as_str()).or_default() += 1;
        }
        counts
    }

    /// Distinct class names currently resident.
    pub fn distinct_classes(&self) -> usize {
        self.class_counts().len()
    }

    /// The current residents, oldest-offered first.
    pub fn items(&self) -> &[LabeledExample] {
        &self.items
    }

    /// Materialises the sample as a training [`Dataset`].
    ///
    /// `class_order` pre-interns the serving model's class registry so
    /// the refit model's dense labels line up with the generation it
    /// replaces whenever the classes overlap (decisions on the wire
    /// are dense labels; keeping the mapping stable makes generations
    /// comparable). Classes fed back that the registry never named are
    /// interned after it, in first-seen order.
    ///
    /// # Errors
    /// [`DataError`] when the reservoir is empty or examples disagree
    /// on variable count.
    pub fn to_dataset(&self, name: &str, class_order: &[String]) -> Result<Dataset, DataError> {
        let mut b = DatasetBuilder::new(name);
        for class in class_order {
            b.class(class);
        }
        for item in &self.items {
            b.push_named(MultiSeries::from_rows(item.rows.clone())?, &item.class);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(class: &str, fill: f64) -> LabeledExample {
        LabeledExample {
            rows: vec![vec![fill; 8]],
            class: class.to_string(),
        }
    }

    #[test]
    fn fills_then_samples_within_capacity() {
        let mut r = Reservoir::new(10, 42);
        for i in 0..200 {
            r.push(ex(if i % 2 == 0 { "a" } else { "b" }, i as f64));
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 200);
        // A uniform sample of 200 alternating examples keeps late
        // entries: at least one resident must come from the back half.
        assert!(r.items().iter().any(|e| e.rows[0][0] >= 100.0));
    }

    #[test]
    fn sampling_is_deterministic_under_a_seed() {
        let run = |seed| {
            let mut r = Reservoir::new(5, seed);
            for i in 0..100 {
                r.push(ex("a", i as f64));
            }
            r.items()
                .iter()
                .map(|e| e.rows[0][0] as u64)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn dataset_keeps_the_served_class_order() {
        let mut r = Reservoir::new(8, 1);
        r.push(ex("hot", 1.0));
        r.push(ex("cold", 2.0));
        let order = vec!["cold".to_string(), "hot".to_string()];
        let d = r.to_dataset("reservoir", &order).unwrap();
        assert_eq!(d.class_names()[..2], order[..]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn empty_reservoir_refuses_to_build() {
        let r = Reservoir::new(4, 0);
        assert!(r.to_dataset("empty", &[]).is_err());
    }
}
