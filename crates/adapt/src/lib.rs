//! # etsc-adapt
//!
//! Online adaptation under concept drift for the ETSC serving stack.
//!
//! The paper's framework (and the serving layers built on it) treat a
//! model as frozen after training, but streaming deployments see
//! *concept drift*: the relationship between a prefix and its eventual
//! label changes mid-stream, and a model that was accurate yesterday
//! quietly is not today. This crate closes the loop from decision back
//! to training:
//!
//! * [`FeedbackSink`] / [`FeedbackEvent`] — ground-truth labels
//!   reported *after* a decision (over the wire via `Frame::Feedback`,
//!   or in-process via `StreamSession::feedback`) become a stream of
//!   per-decision correctness bits;
//! * [`detect`] — from-scratch streaming drift detectors over that
//!   bit stream: an error-rate test in the DDM/EDDM family and an
//!   ADWIN-style adaptive window, behind one [`DriftDetector`] trait
//!   with per-key and global aggregation ([`DriftMonitor`]);
//! * [`reservoir`] — a bounded, seeded reservoir sample of recent
//!   labeled series, the refit training set;
//! * [`adapter`] — the [`Adapter`] supervisor: on a drift signal (or a
//!   periodic schedule) it retrains on the reservoir, bumps the model
//!   generation, saves through the crash-consistent store (`.prev`
//!   last-good semantics preserved) and hot-swaps via a caller-supplied
//!   hook, rolling back when post-swap windowed accuracy regresses;
//! * [`compare`] — drift as an *evaluation axis*: an adaptive-vs-frozen
//!   comparison over a drifting stream, runnable as a
//!   `MatrixRunner::run_with` cell.
//!
//! Everything is dependency-free and deterministic under a seed; drift
//! events, refit latency, swap counts and rollbacks are exported as
//! `etsc-obs` metrics and trace events.

pub mod adapter;
pub mod compare;
pub mod detect;
pub mod reservoir;

pub use adapter::{
    Adapter, AdapterConfig, AdapterEvent, AdapterStats, FeedbackEvent, FeedbackSink,
};
pub use compare::{adaptive_vs_frozen, compare_cell, CompareOptions, CompareOutcome};
pub use detect::{Adwin, Ddm, DetectorKind, DriftDetector, DriftMonitor, DriftSignal, Eddm};
pub use reservoir::{LabeledExample, Reservoir};
