//! The adaptation supervisor: feedback in, hot-swapped refits out.
//!
//! An [`Adapter`] sits between decision feedback and the model store.
//! Serving code pushes [`FeedbackEvent`]s through the [`FeedbackSink`]
//! trait (cheap: detector + reservoir bookkeeping under one mutex) and
//! periodically calls [`Adapter::poll`], which does the expensive work
//! *in the caller's thread*: when drift was signalled (or a periodic
//! refit is due) it retrains on the labeled reservoir, bumps the model
//! generation, saves through the crash-consistent store (the demoted
//! generation becomes `.prev`, so last-good semantics are preserved)
//! and announces the swap through a caller-supplied hook — e.g.
//! `NetServer::reload`. After every swap the adapter watches a window
//! of post-swap feedback and *rolls back* to the last good generation
//! when accuracy regressed, because a refit on a skewed reservoir can
//! be worse than the drifted model it replaced.
//!
//! Training runs outside the adapter lock — feedback keeps flowing
//! while a refit is in progress, and a refit that raced a concurrent
//! swap is discarded rather than committed.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use etsc_eval::experiment::RunConfig;
use etsc_obs::Obs;
use etsc_serve::{fit_model, ServeError, StoredModel};

use crate::detect::{DetectorKind, DriftMonitor, DriftSignal};
use crate::reservoir::{LabeledExample, Reservoir};

/// Ground truth for one answered session, reported after its decision.
#[derive(Debug, Clone)]
pub struct FeedbackEvent {
    /// Aggregation key for drift attribution (connection id, shard id,
    /// or 0 for in-process replay).
    pub key: u64,
    /// The session the truth belongs to.
    pub session: u64,
    /// Dense label the model committed.
    pub predicted: usize,
    /// Dense true label, under the deciding generation's class order.
    pub truth: usize,
    /// Prefix length consumed before committing.
    pub prefix_len: usize,
    /// Generation of the model that made the decision.
    pub generation: u64,
    /// Display name of the true class (stable across re-interning).
    pub class_name: String,
    /// The observed series, one inner vector per variable — empty when
    /// the reporter chose not to retain values (detection still works;
    /// the example just cannot join the refit reservoir).
    pub rows: Vec<Vec<f64>>,
}

impl FeedbackEvent {
    /// Was the committed decision right?
    pub fn correct(&self) -> bool {
        self.predicted == self.truth
    }
}

/// Anything that consumes post-decision ground truth. The serving
/// layers hold one behind an `Arc` and call it inline on the feedback
/// path, so implementations must be cheap and thread-safe.
pub trait FeedbackSink: Send + Sync {
    /// Records one labeled outcome.
    fn record(&self, event: FeedbackEvent);
}

/// Tuning for [`Adapter`].
#[derive(Clone)]
pub struct AdapterConfig {
    /// Drift detector family for the [`DriftMonitor`].
    pub detector: DetectorKind,
    /// Labeled examples retained for refits.
    pub reservoir_cap: usize,
    /// Reservoir floor before a refit is attempted (a drift signal
    /// stays pending until enough labeled data accumulates).
    pub min_refit_examples: usize,
    /// Also refit every N live feedbacks, drift or not (`None` = only
    /// on drift signals).
    pub refit_every: Option<u64>,
    /// Post-swap feedbacks watched before the swap verdict, and the
    /// width of the rolling pre-swap accuracy baseline.
    pub rollback_window: usize,
    /// Allowed post-swap accuracy regression before rolling back.
    pub rollback_drop: f64,
    /// Seed for the reservoir sampler.
    pub seed: u64,
    /// Training configuration for refits.
    pub train: RunConfig,
    /// Metrics + trace sink.
    pub obs: Obs,
}

impl Default for AdapterConfig {
    fn default() -> AdapterConfig {
        AdapterConfig {
            detector: DetectorKind::Ddm,
            reservoir_cap: 256,
            min_refit_examples: 16,
            refit_every: None,
            rollback_window: 24,
            rollback_drop: 0.15,
            seed: 0xADA9_7043,
            train: RunConfig::fast(),
            obs: Obs::disabled(),
        }
    }
}

/// Monotonic adaptation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdapterStats {
    /// Feedback events recorded (any generation).
    pub feedbacks: u64,
    /// Feedbacks whose decision was wrong.
    pub errors: u64,
    /// Warning signals from the monitor.
    pub warnings: u64,
    /// Drift signals from the monitor.
    pub drifts: u64,
    /// Refits that trained to completion.
    pub refits: u64,
    /// Refits that failed to train.
    pub refit_failures: u64,
    /// Hot-swaps committed (refits + rollbacks).
    pub swaps: u64,
    /// Swaps undone because post-swap accuracy regressed.
    pub rollbacks: u64,
    /// Generation currently served.
    pub generation: u64,
    /// Wall-clock seconds of the most recent refit.
    pub last_refit_secs: f64,
}

/// What a [`Adapter::poll`] call did.
#[derive(Debug, Clone, PartialEq)]
pub enum AdapterEvent {
    /// A refit trained, saved and swapped in.
    Refitted {
        /// Generation now serving.
        generation: u64,
        /// Reservoir examples trained on.
        examples: usize,
        /// Training wall-clock seconds.
        secs: f64,
    },
    /// A regressed swap was undone: the last good model is serving
    /// again under a fresh (bumped) generation.
    RolledBack {
        /// The generation rolled away from.
        from: u64,
        /// The generation now serving the restored model.
        generation: u64,
        /// Pre-swap baseline accuracy.
        baseline: f64,
        /// Post-swap windowed accuracy that triggered the rollback.
        post: f64,
    },
}

/// Post-swap probation: the swap is provisional until `need` live
/// feedbacks accumulate, then compared against `baseline`.
#[derive(Debug, Clone, Copy)]
struct Probation {
    baseline: f64,
    correct: usize,
    total: usize,
    need: usize,
}

struct Inner {
    current: Arc<StoredModel>,
    /// The generation to restore on rollback — the last one that
    /// survived (or never entered) probation.
    last_good: Arc<StoredModel>,
    path: Option<PathBuf>,
    monitor: DriftMonitor,
    reservoir: Reservoir,
    cfg: AdapterConfig,
    /// Rolling correctness of live-generation decisions (baseline for
    /// the next swap's probation).
    window: VecDeque<bool>,
    probation: Option<Probation>,
    pending_drift: bool,
    feedbacks_since_refit: u64,
    /// Test hook: train the next refit on rotated labels, producing a
    /// deterministically degraded model that must trip the rollback.
    sabotage_next: bool,
    /// A poll() is mid-refit outside the lock.
    refitting: bool,
    stats: AdapterStats,
    swap_hook: Option<Arc<dyn Fn(Arc<StoredModel>) + Send + Sync>>,
}

/// The adaptation supervisor. Clones share state; implement
/// [`FeedbackSink`] recording and call [`Adapter::poll`] from any
/// thread.
#[derive(Clone)]
pub struct Adapter {
    inner: Arc<Mutex<Inner>>,
}

impl Adapter {
    /// Supervises `model`. When `path` is given, every committed swap
    /// is saved there through the crash-consistent store (demoting the
    /// replaced generation to `.prev`); with `None` swaps are
    /// in-memory only (the in-process evaluation harness).
    pub fn new(model: Arc<StoredModel>, path: Option<PathBuf>, cfg: AdapterConfig) -> Adapter {
        let stats = AdapterStats {
            generation: model.meta.generation,
            ..AdapterStats::default()
        };
        Adapter {
            inner: Arc::new(Mutex::new(Inner {
                last_good: Arc::clone(&model),
                current: model,
                path,
                monitor: DriftMonitor::new(cfg.detector),
                reservoir: Reservoir::new(cfg.reservoir_cap, cfg.seed),
                window: VecDeque::new(),
                probation: None,
                pending_drift: false,
                feedbacks_since_refit: 0,
                sabotage_next: false,
                refitting: false,
                stats,
                swap_hook: None,
                cfg,
            })),
        }
    }

    /// Installs the hot-swap announcement hook (e.g. a closure calling
    /// `NetServer::reload`). Called outside the adapter lock, after
    /// the store save, with the new generation.
    pub fn set_swap_hook(&self, hook: impl Fn(Arc<StoredModel>) + Send + Sync + 'static) {
        self.lock().swap_hook = Some(Arc::new(hook));
    }

    /// The generation currently serving.
    pub fn current(&self) -> Arc<StoredModel> {
        Arc::clone(&self.lock().current)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AdapterStats {
        self.lock().stats
    }

    /// Generation counter of the serving model.
    pub fn generation(&self) -> u64 {
        self.lock().current.meta.generation
    }

    /// Labeled examples currently in the refit reservoir.
    pub fn reservoir_len(&self) -> usize {
        self.lock().reservoir.len()
    }

    /// Seeds the reservoir with already-labeled series (typically the
    /// original training set) so the first refit is not starved.
    pub fn seed_reservoir(&self, examples: impl IntoIterator<Item = LabeledExample>) {
        let mut g = self.lock();
        for ex in examples {
            g.reservoir.push(ex);
        }
    }

    /// Test hook: the next refit trains on label-rotated examples — a
    /// deterministically degraded model that post-swap probation must
    /// catch and roll back.
    pub fn sabotage_next_refit(&self) {
        self.lock().sabotage_next = true;
    }

    /// Ops hook: ask for a refit at the next [`Adapter::poll`] even
    /// without a drift signal (a manual retrain, a scheduled refresh,
    /// or a rollback drill). Subject to the same gates as a drift
    /// signal: an open probation or a starved reservoir defers it.
    pub fn request_refit(&self) {
        self.lock().pending_drift = true;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs due maintenance: a rollback verdict if probation is
    /// complete, otherwise a refit + hot-swap if drift is pending (or
    /// a periodic refit is due) and the reservoir is ready. Training
    /// happens in *this* thread with the lock released; returns what
    /// was done, `Ok(None)` when nothing was due.
    ///
    /// # Errors
    /// [`ServeError`] when a refit fails to train or a swap fails to
    /// save — the adapter stays on the old generation.
    pub fn poll(&self) -> Result<Option<AdapterEvent>, ServeError> {
        // Phase 1 (locked): settle probation, decide whether to refit,
        // and snapshot the training set.
        let (data, base_generation, sabotaged) = {
            let mut g = self.lock();
            if g.refitting {
                return Ok(None);
            }
            if let Some(event) = settle_probation(&mut g)? {
                let hook = g.swap_hook.clone();
                let model = Arc::clone(&g.current);
                drop(g);
                if let Some(hook) = hook {
                    hook(model);
                }
                return Ok(Some(event));
            }
            let periodic_due = g
                .cfg
                .refit_every
                .is_some_and(|n| g.feedbacks_since_refit >= n);
            if !(g.pending_drift || periodic_due) {
                return Ok(None);
            }
            if g.probation.is_some() {
                // Never stack swaps: the last one is still on trial.
                return Ok(None);
            }
            if g.reservoir.len() < g.cfg.min_refit_examples || g.reservoir.distinct_classes() < 2 {
                return Ok(None); // drift stays pending until data arrives
            }
            let sabotaged = std::mem::take(&mut g.sabotage_next);
            let name = g.current.meta.dataset.clone();
            let classes = g.current.meta.class_names.clone();
            let data = if sabotaged {
                let mut r = g.reservoir.clone();
                rotate_labels(&mut r, &classes);
                r.to_dataset(&name, &classes)
            } else {
                g.reservoir.to_dataset(&name, &classes)
            }
            .map_err(|e| ServeError::Model(etsc_core::EtscError::Data(e)))?;
            g.refitting = true;
            (data, g.current.meta.generation, sabotaged)
        };

        // Phase 2 (unlocked): train. Feedback keeps flowing meanwhile.
        let (algo, cfg, obs) = {
            let g = self.lock();
            (g.current.meta.algo, g.cfg.train.clone(), g.cfg.obs.clone())
        };
        let mut span = obs.tracer.span("adapt.refit");
        span.attr("algo", algo.name());
        span.attr("examples", &data.len().to_string());
        span.attr("sabotaged", if sabotaged { "true" } else { "false" });
        let started = Instant::now();
        let fitted = fit_model(algo, &data, &cfg);
        let secs = started.elapsed().as_secs_f64();
        obs.metrics.histogram("adapt_refit_seconds").record(secs);
        drop(span);

        // Phase 3 (locked): commit, unless the world moved on.
        let mut g = self.lock();
        g.refitting = false;
        let mut fitted = match fitted {
            Ok(m) => m,
            Err(e) => {
                g.stats.refit_failures += 1;
                obs.metrics.counter("adapt_refit_failures_total").inc();
                // Drop the pending signal: retrying the same reservoir
                // immediately would spin on the same failure.
                g.pending_drift = false;
                g.feedbacks_since_refit = 0;
                return Err(e);
            }
        };
        if g.current.meta.generation != base_generation {
            // Someone else swapped while we trained; their generation
            // wins and our stale refit is discarded.
            return Ok(None);
        }
        fitted.meta.generation = base_generation + 1;
        let examples = data.len();
        g.stats.refits += 1;
        g.stats.last_refit_secs = secs;
        obs.metrics.counter("adapt_refit_total").inc();
        let baseline = window_accuracy(&g.window);
        commit_swap(&mut g, Arc::new(fitted), &obs)?;
        g.probation = baseline.map(|baseline| Probation {
            baseline,
            correct: 0,
            total: 0,
            need: g.cfg.rollback_window.max(1),
        });
        let hook = g.swap_hook.clone();
        let model = Arc::clone(&g.current);
        let generation = g.current.meta.generation;
        drop(g);
        if let Some(hook) = hook {
            hook(model);
        }
        Ok(Some(AdapterEvent::Refitted {
            generation,
            examples,
            secs,
        }))
    }
}

impl FeedbackSink for Adapter {
    fn record(&self, event: FeedbackEvent) {
        let mut g = self.lock();
        let obs = g.cfg.obs.clone();
        g.stats.feedbacks += 1;
        obs.metrics.counter("adapt_feedback_total").inc();
        let correct = event.correct();
        if !correct {
            g.stats.errors += 1;
            obs.metrics.counter("adapt_feedback_errors_total").inc();
        }
        if !event.rows.is_empty() {
            g.reservoir.push(LabeledExample {
                rows: event.rows,
                class: event.class_name,
            });
        }
        // Only live-generation outcomes say anything about the serving
        // model: feedback for a decision made before a swap is stale.
        if event.generation != g.current.meta.generation {
            return;
        }
        g.feedbacks_since_refit += 1;
        let cap = g.cfg.rollback_window.max(1);
        g.window.push_back(correct);
        while g.window.len() > cap {
            g.window.pop_front();
        }
        if let Some(p) = &mut g.probation {
            p.total += 1;
            if correct {
                p.correct += 1;
            }
        }
        match g.monitor.update(event.key, correct) {
            DriftSignal::Stable => {}
            DriftSignal::Warning => {
                g.stats.warnings += 1;
                obs.metrics.counter("adapt_drift_warnings_total").inc();
            }
            DriftSignal::Drift => {
                g.stats.drifts += 1;
                g.pending_drift = true;
                obs.metrics.counter("adapt_drift_total").inc();
                obs.tracer.event(
                    "adapt.drift",
                    &[
                        ("key", &event.key.to_string()),
                        ("detector", g.cfg.detector.name()),
                        ("generation", &event.generation.to_string()),
                    ],
                );
            }
        }
    }
}

/// Accuracy over the rolling window, `None` until it has any entries.
fn window_accuracy(window: &VecDeque<bool>) -> Option<f64> {
    if window.is_empty() {
        return None;
    }
    let correct = window.iter().filter(|c| **c).count();
    Some(correct as f64 / window.len() as f64)
}

/// If probation is complete and the swap regressed, restore the last
/// good model under a bumped generation. Returns the rollback event
/// with the inner lock still held (the caller announces the swap).
fn settle_probation(g: &mut Inner) -> Result<Option<AdapterEvent>, ServeError> {
    let Some(p) = g.probation else {
        return Ok(None);
    };
    if p.total < p.need {
        return Ok(None);
    }
    let post = p.correct as f64 / p.total as f64;
    g.probation = None;
    if post >= p.baseline - g.cfg.rollback_drop {
        // Swap accepted: it becomes the rollback target from now on.
        g.last_good = Arc::clone(&g.current);
        return Ok(None);
    }
    let from = g.current.meta.generation;
    // Restore the last good model through the codec (StoredModel holds
    // fitted algorithms and is deliberately not Clone) and bump the
    // generation so routers see the rollback as a fresh swap.
    let mut restored = StoredModel::from_bytes(&g.last_good.to_bytes()?)?;
    restored.meta.generation = from + 1;
    let obs = g.cfg.obs.clone();
    g.stats.rollbacks += 1;
    obs.metrics.counter("adapt_rollback_total").inc();
    obs.tracer.event(
        "adapt.rollback",
        &[
            ("from", &from.to_string()),
            ("baseline", &format!("{:.3}", p.baseline)),
            ("post", &format!("{post:.3}")),
        ],
    );
    commit_swap(g, Arc::new(restored), &obs)?;
    // A rollback is evidence the refit was bad, not that the drift went
    // away — re-arm the signal so a later poll retries once the
    // reservoir has turned over further. (commit_swap just cleared it.)
    g.pending_drift = true;
    Ok(Some(AdapterEvent::RolledBack {
        from,
        generation: g.current.meta.generation,
        baseline: p.baseline,
        post,
    }))
}

/// Commits `next` as the serving generation: saves through the
/// crash-consistent store (when a path is configured), swaps the
/// in-memory Arc, and resets detection state — the new generation's
/// error process starts clean.
fn commit_swap(g: &mut Inner, next: Arc<StoredModel>, obs: &Obs) -> Result<(), ServeError> {
    if let Some(path) = &g.path {
        next.save(path)?;
    }
    g.current = Arc::clone(&next);
    g.stats.swaps += 1;
    g.stats.generation = next.meta.generation;
    g.monitor.reset();
    g.window.clear();
    g.pending_drift = false;
    g.feedbacks_since_refit = 0;
    obs.metrics.counter("adapt_swap_total").inc();
    obs.metrics
        .gauge("adapt_model_generation")
        .set(next.meta.generation as f64);
    obs.tracer.event(
        "adapt.swap",
        &[
            ("generation", &next.meta.generation.to_string()),
            ("algo", next.meta.algo.name()),
        ],
    );
    Ok(())
}

/// Rotates every resident example's class name one step along the
/// model's class order — the sabotage hook's deterministic poison.
fn rotate_labels(reservoir: &mut Reservoir, classes: &[String]) {
    if classes.len() < 2 {
        return;
    }
    let rotated: Vec<LabeledExample> = reservoir
        .items()
        .iter()
        .map(|item| {
            let idx = classes.iter().position(|c| *c == item.class);
            let class = match idx {
                Some(i) => classes[(i + 1) % classes.len()].clone(),
                None => item.class.clone(),
            };
            LabeledExample {
                rows: item.rows.clone(),
                class,
            }
        })
        .collect();
    let mut fresh = Reservoir::new(reservoir.len().max(1), 0);
    for ex in rotated {
        fresh.push(ex);
    }
    *reservoir = fresh;
}
