//! Streaming drift detectors over decision correctness.
//!
//! Each detector consumes one boolean per answered session — was the
//! committed early decision correct, judged against the label feedback
//! that arrived later — and raises [`DriftSignal::Warning`] /
//! [`DriftSignal::Drift`] when the error process changes. Two families
//! are implemented from scratch (no external dependencies):
//!
//! * [`Ddm`] / [`Eddm`] — the classic error-rate tests of Gama et al.
//!   (DDM, 2004) and Baena-García et al. (EDDM, 2006): track the
//!   binomial error rate (or the spacing between errors) and compare
//!   against the best level seen since the last reset;
//! * [`Adwin`] — an ADWIN-style adaptive window (Bifet & Gavaldà,
//!   2007): an exponential-histogram window over the error indicator
//!   that drops its oldest buckets whenever two sub-windows have
//!   statistically distinct means.
//!
//! All three share the [`DriftDetector`] trait; [`DriftMonitor`]
//! aggregates one global detector with bounded per-key (per session
//! source / connection) detectors so a drift can be attributed.

use std::collections::{HashMap, VecDeque};

/// What a detector concluded after the latest observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DriftSignal {
    /// The error process looks unchanged.
    Stable,
    /// Elevated error level: start hoarding labeled data.
    Warning,
    /// The concept has changed: refit.
    Drift,
}

impl DriftSignal {
    /// Short lowercase name for logs and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            DriftSignal::Stable => "stable",
            DriftSignal::Warning => "warning",
            DriftSignal::Drift => "drift",
        }
    }
}

/// A streaming detector over per-decision correctness bits.
pub trait DriftDetector: Send {
    /// Feeds one decision outcome; returns the signal *after* it.
    fn update(&mut self, correct: bool) -> DriftSignal;
    /// Observations consumed since the last (self-)reset.
    fn observed(&self) -> u64;
    /// Total drift signals raised over the detector's lifetime.
    fn drifts(&self) -> u64;
    /// Forgets all state (a hot-swap starts detection afresh).
    fn reset(&mut self);
    /// Detector family name for attribution.
    fn name(&self) -> &'static str;
}

/// Which detector family to instantiate — the configuration surface
/// for [`DriftMonitor`] and `AdapterConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// Error-rate test (DDM).
    Ddm,
    /// Error-spacing test (EDDM).
    Eddm,
    /// Adaptive window (ADWIN).
    Adwin,
}

impl DetectorKind {
    /// Instantiates a detector of this family with default parameters.
    pub fn build(self) -> Box<dyn DriftDetector> {
        match self {
            DetectorKind::Ddm => Box::new(Ddm::new()),
            DetectorKind::Eddm => Box::new(Eddm::new()),
            DetectorKind::Adwin => Box::new(Adwin::new(0.002)),
        }
    }

    /// Parses a lowercase family name (`ddm`, `eddm`, `adwin`).
    pub fn parse(s: &str) -> Option<DetectorKind> {
        match s {
            "ddm" => Some(DetectorKind::Ddm),
            "eddm" => Some(DetectorKind::Eddm),
            "adwin" => Some(DetectorKind::Adwin),
            _ => None,
        }
    }

    /// The family name [`DetectorKind::parse`] accepts.
    pub fn name(self) -> &'static str {
        match self {
            DetectorKind::Ddm => "ddm",
            DetectorKind::Eddm => "eddm",
            DetectorKind::Adwin => "adwin",
        }
    }
}

// ---------------------------------------------------------------------
// DDM — drift detection method over the running error rate.
// ---------------------------------------------------------------------

/// DDM: models the error count as a binomial and tracks the minimum of
/// `p + s` (error rate plus its standard deviation). A rise past
/// `p_min + 2·s_min` is a warning, past `p_min + 3·s_min` a drift.
#[derive(Debug, Clone)]
pub struct Ddm {
    n: u64,
    errors: u64,
    p_min: f64,
    s_min: f64,
    min_observations: u64,
    drifts: u64,
}

impl Default for Ddm {
    fn default() -> Ddm {
        Ddm::new()
    }
}

impl Ddm {
    /// A fresh detector with the customary 30-observation warm-up.
    pub fn new() -> Ddm {
        Ddm {
            n: 0,
            errors: 0,
            p_min: f64::INFINITY,
            s_min: f64::INFINITY,
            min_observations: 30,
            drifts: 0,
        }
    }
}

impl DriftDetector for Ddm {
    fn update(&mut self, correct: bool) -> DriftSignal {
        self.n += 1;
        if !correct {
            self.errors += 1;
        }
        if self.n < self.min_observations {
            return DriftSignal::Stable;
        }
        let p = self.errors as f64 / self.n as f64;
        let s = (p * (1.0 - p) / self.n as f64).sqrt();
        if p + s < self.p_min + self.s_min {
            self.p_min = p;
            self.s_min = s;
        }
        let level = p + s;
        if level > self.p_min + 3.0 * self.s_min {
            self.drifts += 1;
            let drifts = self.drifts;
            self.reset();
            self.drifts = drifts;
            DriftSignal::Drift
        } else if level > self.p_min + 2.0 * self.s_min {
            DriftSignal::Warning
        } else {
            DriftSignal::Stable
        }
    }

    fn observed(&self) -> u64 {
        self.n
    }

    fn drifts(&self) -> u64 {
        self.drifts
    }

    fn reset(&mut self) {
        let drifts = self.drifts;
        *self = Ddm::new();
        self.drifts = drifts;
    }

    fn name(&self) -> &'static str {
        "ddm"
    }
}

// ---------------------------------------------------------------------
// EDDM — drift detection over the spacing between errors.
// ---------------------------------------------------------------------

/// EDDM: tracks the mean and deviation of the *distance between
/// consecutive errors* (Welford), against the maximum of
/// `mean + 2·std` seen since the last reset. Shrinking spacing —
/// errors arriving closer together — signals drift even when the
/// absolute error rate is still low, which makes EDDM the more
/// sensitive test for slow/gradual drift.
#[derive(Debug, Clone)]
pub struct Eddm {
    n: u64,
    last_error_at: Option<u64>,
    distances: u64,
    mean: f64,
    m2: f64,
    max_level: f64,
    min_errors: u64,
    warning_ratio: f64,
    drift_ratio: f64,
    drifts: u64,
}

impl Default for Eddm {
    fn default() -> Eddm {
        Eddm::new()
    }
}

impl Eddm {
    /// A fresh detector with the customary 0.95 / 0.90 ratio cuts.
    pub fn new() -> Eddm {
        Eddm {
            n: 0,
            last_error_at: None,
            distances: 0,
            mean: 0.0,
            m2: 0.0,
            max_level: 0.0,
            min_errors: 30,
            warning_ratio: 0.95,
            drift_ratio: 0.90,
            drifts: 0,
        }
    }
}

impl DriftDetector for Eddm {
    fn update(&mut self, correct: bool) -> DriftSignal {
        self.n += 1;
        if correct {
            return DriftSignal::Stable;
        }
        let distance = match self.last_error_at {
            Some(at) => (self.n - at) as f64,
            None => self.n as f64,
        };
        self.last_error_at = Some(self.n);
        self.distances += 1;
        let delta = distance - self.mean;
        self.mean += delta / self.distances as f64;
        self.m2 += delta * (distance - self.mean);
        if self.distances < self.min_errors {
            return DriftSignal::Stable;
        }
        let std = (self.m2 / self.distances as f64).sqrt();
        let level = self.mean + 2.0 * std;
        if level > self.max_level {
            self.max_level = level;
        }
        let ratio = if self.max_level > 0.0 {
            level / self.max_level
        } else {
            1.0
        };
        if ratio < self.drift_ratio {
            self.drifts += 1;
            let drifts = self.drifts;
            self.reset();
            self.drifts = drifts;
            DriftSignal::Drift
        } else if ratio < self.warning_ratio {
            DriftSignal::Warning
        } else {
            DriftSignal::Stable
        }
    }

    fn observed(&self) -> u64 {
        self.n
    }

    fn drifts(&self) -> u64 {
        self.drifts
    }

    fn reset(&mut self) {
        let drifts = self.drifts;
        *self = Eddm::new();
        self.drifts = drifts;
    }

    fn name(&self) -> &'static str {
        "eddm"
    }
}

// ---------------------------------------------------------------------
// ADWIN — adaptive window over the error indicator.
// ---------------------------------------------------------------------

/// One exponential-histogram bucket: `count` observations (a power of
/// two) summarised by their `sum`.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    sum: f64,
    count: u64,
}

/// ADWIN-style adaptive window: keeps an exponential histogram of the
/// error indicator (1.0 = wrong) and, after each insertion, drops the
/// oldest buckets while any split of the window into old|new halves
/// has means further apart than the Hoeffding-style cut threshold
/// `ε = sqrt(ln(4/δ′) / (2m))` with `m` the harmonic mean of the two
/// half sizes and `δ′ = δ / W`. A shrink is a drift; the surviving
/// window is exactly the post-change data, so no explicit reset is
/// needed.
#[derive(Debug, Clone)]
pub struct Adwin {
    delta: f64,
    buckets: VecDeque<Bucket>,
    max_per_size: usize,
    width: u64,
    total: f64,
    seen: u64,
    min_width: u64,
    drifts: u64,
    near_cut: bool,
}

impl Adwin {
    /// A fresh window with confidence `delta` (smaller = fewer false
    /// alarms; 0.002 is the customary default).
    pub fn new(delta: f64) -> Adwin {
        Adwin {
            delta: delta.clamp(1e-9, 0.5),
            buckets: VecDeque::new(),
            max_per_size: 5,
            width: 0,
            total: 0.0,
            seen: 0,
            min_width: 16,
            drifts: 0,
            near_cut: false,
        }
    }

    /// Current window width (observations retained).
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Mean of the error indicator over the current window.
    pub fn mean(&self) -> f64 {
        if self.width == 0 {
            0.0
        } else {
            self.total / self.width as f64
        }
    }

    /// Merge oldest same-capacity buckets once more than
    /// `max_per_size` of a capacity accumulate.
    fn compress(&mut self) {
        let mut capacity = 1u64;
        loop {
            let of_size: Vec<usize> = self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| b.count == capacity)
                .map(|(i, _)| i)
                .collect();
            if of_size.len() <= self.max_per_size {
                break;
            }
            // The deque is oldest-first: merge the two oldest of this
            // capacity into one of double capacity.
            let (a, b) = (of_size[0], of_size[1]);
            let merged = Bucket {
                sum: self.buckets[a].sum + self.buckets[b].sum,
                count: capacity * 2,
            };
            self.buckets[a] = merged;
            self.buckets.remove(b);
            capacity *= 2;
        }
    }

    /// Drops old buckets while any split is statistically significant.
    /// Returns `true` when the window shrank.
    fn shrink(&mut self) -> bool {
        self.near_cut = false;
        if self.width < self.min_width {
            return false;
        }
        let mut shrank = false;
        'outer: loop {
            let mut n0 = 0u64;
            let mut sum0 = 0.0;
            let delta_prime = self.delta / self.width.max(2) as f64;
            let ln_term = (4.0 / delta_prime).ln();
            for i in 0..self.buckets.len().saturating_sub(1) {
                n0 += self.buckets[i].count;
                sum0 += self.buckets[i].sum;
                let n1 = self.width - n0;
                if n0 < 4 || n1 < 4 {
                    continue;
                }
                let mu0 = sum0 / n0 as f64;
                let mu1 = (self.total - sum0) / n1 as f64;
                let m = 1.0 / (1.0 / n0 as f64 + 1.0 / n1 as f64);
                let eps = (ln_term / (2.0 * m)).sqrt();
                let gap = (mu0 - mu1).abs();
                if gap > eps {
                    let dropped = self.buckets.pop_front().expect("split implies a bucket");
                    self.width -= dropped.count;
                    self.total -= dropped.sum;
                    shrank = true;
                    if self.width < self.min_width {
                        break 'outer;
                    }
                    continue 'outer;
                }
                if gap > 0.8 * eps {
                    self.near_cut = true;
                }
            }
            break;
        }
        shrank
    }
}

impl DriftDetector for Adwin {
    fn update(&mut self, correct: bool) -> DriftSignal {
        self.seen += 1;
        self.buckets.push_back(Bucket {
            sum: if correct { 0.0 } else { 1.0 },
            count: 1,
        });
        self.width += 1;
        if !correct {
            self.total += 1.0;
        }
        self.compress();
        if self.shrink() {
            self.drifts += 1;
            DriftSignal::Drift
        } else if self.near_cut {
            DriftSignal::Warning
        } else {
            DriftSignal::Stable
        }
    }

    fn observed(&self) -> u64 {
        self.seen
    }

    fn drifts(&self) -> u64 {
        self.drifts
    }

    fn reset(&mut self) {
        let drifts = self.drifts;
        *self = Adwin::new(self.delta);
        self.drifts = drifts;
    }

    fn name(&self) -> &'static str {
        "adwin"
    }
}

// ---------------------------------------------------------------------
// Aggregation: one global detector plus bounded per-key detectors.
// ---------------------------------------------------------------------

/// Aggregates drift detection across feedback sources: one *global*
/// detector sees every correctness bit (model-level drift), and up to
/// `max_keys` *per-key* detectors (keyed by connection / session
/// source) attribute a drift to where it is concentrated. The combined
/// signal is the stronger of the two.
pub struct DriftMonitor {
    kind: DetectorKind,
    global: Box<dyn DriftDetector>,
    per_key: HashMap<u64, Box<dyn DriftDetector>>,
    max_keys: usize,
    drifted_keys: u64,
}

impl DriftMonitor {
    /// A monitor whose detectors are all of family `kind`.
    pub fn new(kind: DetectorKind) -> DriftMonitor {
        DriftMonitor {
            kind,
            global: kind.build(),
            per_key: HashMap::new(),
            max_keys: 1024,
            drifted_keys: 0,
        }
    }

    /// Feeds one decision outcome from source `key`; returns the
    /// stronger of the global and per-key signals. Once `max_keys`
    /// sources are tracked, new keys fold into the global detector
    /// only (bounded memory under key churn).
    pub fn update(&mut self, key: u64, correct: bool) -> DriftSignal {
        let global = self.global.update(correct);
        let per_key = if self.per_key.len() < self.max_keys || self.per_key.contains_key(&key) {
            let kind = self.kind;
            let det = self.per_key.entry(key).or_insert_with(|| kind.build());
            let sig = det.update(correct);
            if sig == DriftSignal::Drift {
                self.drifted_keys += 1;
            }
            sig
        } else {
            DriftSignal::Stable
        };
        global.max(per_key)
    }

    /// The model-level detector.
    pub fn global(&self) -> &dyn DriftDetector {
        self.global.as_ref()
    }

    /// Total per-key drift signals (attribution counter).
    pub fn drifted_keys(&self) -> u64 {
        self.drifted_keys
    }

    /// Sources currently tracked.
    pub fn tracked_keys(&self) -> usize {
        self.per_key.len()
    }

    /// Forgets everything (called after a hot-swap: the new model's
    /// error process starts clean).
    pub fn reset(&mut self) {
        self.global = self.kind.build();
        self.per_key.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic Bernoulli stream: error with probability `p`.
    fn feed(det: &mut dyn DriftDetector, n: usize, p: f64, seed: &mut u64) -> Vec<DriftSignal> {
        (0..n)
            .map(|_| {
                *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = *seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let u = (z >> 11) as f64 / (1u64 << 53) as f64;
                det.update(u >= p)
            })
            .collect()
    }

    #[test]
    fn detectors_stay_stable_on_a_constant_error_rate() {
        for kind in [DetectorKind::Ddm, DetectorKind::Eddm, DetectorKind::Adwin] {
            let mut det = kind.build();
            let mut seed = 7;
            let signals = feed(det.as_mut(), 600, 0.1, &mut seed);
            let drifts = signals.iter().filter(|s| **s == DriftSignal::Drift).count();
            assert_eq!(
                drifts,
                0,
                "{} false-alarmed on a stable stream",
                kind.name()
            );
        }
    }

    #[test]
    fn detectors_fire_on_an_error_rate_step() {
        for kind in [DetectorKind::Ddm, DetectorKind::Eddm, DetectorKind::Adwin] {
            let mut det = kind.build();
            let mut seed = 11;
            feed(det.as_mut(), 300, 0.05, &mut seed);
            let after = feed(det.as_mut(), 300, 0.7, &mut seed);
            assert!(
                after.contains(&DriftSignal::Drift),
                "{} missed a 0.05 -> 0.7 error step",
                kind.name()
            );
            assert!(det.drifts() >= 1);
        }
    }

    #[test]
    fn adwin_window_tracks_the_post_change_regime() {
        let mut det = Adwin::new(0.002);
        let mut seed = 3;
        feed(&mut det, 400, 0.0, &mut seed);
        feed(&mut det, 400, 1.0, &mut seed);
        // After the change the surviving window should be dominated by
        // the new all-error regime.
        assert!(
            det.mean() > 0.8,
            "window mean {} kept stale data",
            det.mean()
        );
        assert!(det.width() < 800);
    }

    #[test]
    fn monitor_attributes_drift_to_the_drifting_key() {
        let mut mon = DriftMonitor::new(DetectorKind::Ddm);
        let mut drifted = false;
        // Key 1 stays accurate; key 2 degrades sharply.
        for round in 0..600 {
            mon.update(1, true);
            let p = if round < 200 { 0.05 } else { 0.8 };
            let correct = (round * 7919 % 100) as f64 / 100.0 >= p;
            if mon.update(2, correct) == DriftSignal::Drift {
                drifted = true;
            }
        }
        assert!(drifted, "monitor never signalled drift");
        assert!(mon.drifted_keys() >= 1);
        assert_eq!(mon.tracked_keys(), 2);
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in [DetectorKind::Ddm, DetectorKind::Eddm, DetectorKind::Adwin] {
            assert_eq!(DetectorKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(DetectorKind::parse("hoeffding"), None);
    }
}
