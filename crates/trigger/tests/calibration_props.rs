//! Property tests for the calibration maps: the published contracts —
//! isotonic regression is monotone non-decreasing and bounded in
//! [0, 1], Platt scaling is strictly monotone increasing — must hold
//! for *arbitrary* held-out (score, correctness) samples, not just the
//! friendly ones in the unit tests.

use proptest::prelude::*;

use etsc_trigger::{CalibrationKind, Calibrator, Isotonic, Platt};

/// Splits generated (score, correctness-bit) pairs into the two
/// parallel slices the calibrators fit on.
fn unzip(pairs: Vec<(f64, u8)>) -> (Vec<f64>, Vec<bool>) {
    pairs.into_iter().map(|(s, c)| (s, c == 1)).unzip()
}

proptest! {
    #[test]
    fn isotonic_is_monotone_and_bounded_on_any_sample(
        pairs in prop::collection::vec((0.0f64..=1.0, 0u8..2), 0..80),
        probes in prop::collection::vec(-0.5f64..=1.5, 1..50),
    ) {
        let (scores, correct) = unzip(pairs);
        let iso = Isotonic::fit(&scores, &correct);
        let mut sorted = probes;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for &p in &sorted {
            let v = iso.map(p);
            prop_assert!((0.0..=1.0).contains(&v), "map({p}) = {v} out of [0, 1]");
            prop_assert!(v >= last, "map({p}) = {v} < previous {last}");
            last = v;
        }
        // The fitted blocks themselves honour the same contract.
        prop_assert!(iso.thresholds.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(iso.values.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(iso.values.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn platt_is_strictly_monotone_on_any_sample(
        pairs in prop::collection::vec((0.0f64..=1.0, 0u8..2), 0..80),
    ) {
        let (scores, correct) = unzip(pairs);
        let platt = Platt::fit(&scores, &correct);
        prop_assert!(platt.a > 0.0, "slope {} not positive", platt.a);
        let mut last = -1.0f64;
        for i in 0..=100 {
            let v = platt.map(i as f64 / 100.0);
            prop_assert!((0.0..=1.0).contains(&v), "map = {v} out of [0, 1]");
            // Strict monotonicity is the published contract; at f64
            // precision it can only soften to non-strict inside the
            // saturated tails of the sigmoid.
            if (0.001..=0.999).contains(&v) && (0.001..=0.999).contains(&last) {
                prop_assert!(v > last, "not strictly monotone: {v} <= {last}");
            } else {
                prop_assert!(v >= last, "monotonicity violated: {v} < {last}");
            }
            last = v;
        }
    }

    #[test]
    fn every_calibrator_family_stays_inside_the_unit_interval(
        pairs in prop::collection::vec((0.0f64..=1.0, 0u8..2), 0..80),
        probe in 0.0f64..=1.0,
    ) {
        let (scores, correct) = unzip(pairs);
        for kind in [CalibrationKind::Platt, CalibrationKind::Isotonic] {
            let c = Calibrator::fit(kind, &scores, &correct);
            let v = c.map(probe);
            prop_assert!((0.0..=1.0).contains(&v), "{kind:?}.map({probe}) = {v}");
            prop_assert_eq!(c.kind(), kind);
        }
        // Identity passes unit-interval scores through untouched.
        let v = Calibrator::fit(CalibrationKind::None, &scores, &correct).map(probe);
        prop_assert_eq!(v.to_bits(), probe.to_bits());
    }
}
