//! From-scratch probability calibration: Platt scaling and isotonic
//! regression, fit on held-out (score, correctness) pairs.
//!
//! Both calibrators map a raw confidence score (typically the winning
//! class probability of a base classifier) to an estimate of the
//! probability that the prediction is *correct*. Triggers that halt on
//! "confidence ≥ threshold" become far better behaved when the
//! confidence actually means what the threshold assumes it means.

/// Which calibration map to fit, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationKind {
    /// Pass raw scores through unchanged.
    None,
    /// Platt scaling: a fitted sigmoid `p = σ(a·s + b)` with `a > 0`.
    Platt,
    /// Isotonic regression via pool-adjacent-violators: a monotone
    /// non-decreasing step function.
    Isotonic,
}

impl CalibrationKind {
    /// Canonical lowercase name (the CLI `--calibrate` spelling).
    pub fn name(self) -> &'static str {
        match self {
            CalibrationKind::None => "none",
            CalibrationKind::Platt => "platt",
            CalibrationKind::Isotonic => "isotonic",
        }
    }

    /// Parses a `--calibrate` value (case-insensitive).
    pub fn parse(name: &str) -> Option<CalibrationKind> {
        match name.to_ascii_lowercase().as_str() {
            "none" => Some(CalibrationKind::None),
            "platt" => Some(CalibrationKind::Platt),
            "isotonic" => Some(CalibrationKind::Isotonic),
            _ => None,
        }
    }
}

/// A fitted Platt scaler: `map(s) = 1 / (1 + exp(-(a·s + b)))`.
///
/// `a` is clamped positive at fit time, so the map is strictly
/// monotone increasing — a higher raw score never calibrates to a
/// lower probability.
#[derive(Debug, Clone, PartialEq)]
pub struct Platt {
    /// Slope of the fitted sigmoid (always `> 0`).
    pub a: f64,
    /// Intercept of the fitted sigmoid.
    pub b: f64,
}

impl Platt {
    /// Fits the sigmoid by gradient descent on the negative
    /// log-likelihood with Platt's smoothed targets
    /// `(n⁺ + 1)/(n⁺ + 2)` and `1/(n⁻ + 2)`, which regularise the
    /// degenerate perfectly-separated case.
    ///
    /// Returns an identity-like map when `scores` is empty or contains
    /// only one outcome class.
    pub fn fit(scores: &[f64], correct: &[bool]) -> Platt {
        let n = scores.len().min(correct.len());
        let pos = correct.iter().take(n).filter(|&&c| c).count();
        let neg = n - pos;
        if n == 0 || pos == 0 || neg == 0 {
            // Degenerate held-out sample: fall back to a steep sigmoid
            // centred at 0.5, close to the identity on [0, 1].
            return Platt { a: 8.0, b: -4.0 };
        }
        let t_pos = (pos as f64 + 1.0) / (pos as f64 + 2.0);
        let t_neg = 1.0 / (neg as f64 + 2.0);
        let (mut a, mut b) = (1.0_f64, 0.0_f64);
        let mut lr = 0.5;
        let mut last_nll = f64::INFINITY;
        for _ in 0..500 {
            let (mut ga, mut gb, mut nll) = (0.0, 0.0, 0.0);
            for i in 0..n {
                let t = if correct[i] { t_pos } else { t_neg };
                let z = a * scores[i] + b;
                let p = sigmoid(z);
                let d = p - t;
                ga += d * scores[i];
                gb += d;
                // Numerically safe NLL.
                let p = p.clamp(1e-12, 1.0 - 1e-12);
                nll -= t * p.ln() + (1.0 - t) * (1.0 - p).ln();
            }
            if nll > last_nll {
                lr *= 0.5;
                if lr < 1e-6 {
                    break;
                }
            }
            last_nll = nll;
            a -= lr * ga / n as f64;
            b -= lr * gb / n as f64;
            // Strict monotonicity is a published contract of this map.
            if a < 1e-6 {
                a = 1e-6;
            }
        }
        Platt { a, b }
    }

    /// Applies the fitted sigmoid to one raw score.
    pub fn map(&self, score: f64) -> f64 {
        sigmoid(self.a * score + self.b)
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// A fitted isotonic regression: a monotone non-decreasing step
/// function over score thresholds, produced by pool-adjacent-violators
/// on (score, correctness) pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Isotonic {
    /// Block boundaries (ascending scores); `map` returns the value of
    /// the last boundary ≤ the query score.
    pub thresholds: Vec<f64>,
    /// Calibrated value per block, non-decreasing and inside `[0, 1]`.
    pub values: Vec<f64>,
}

impl Isotonic {
    /// Fits by pool-adjacent-violators: sort by score, then repeatedly
    /// merge adjacent blocks that violate monotonicity into their
    /// weighted mean.
    ///
    /// Returns an identity-like single block when `scores` is empty.
    pub fn fit(scores: &[f64], correct: &[bool]) -> Isotonic {
        let n = scores.len().min(correct.len());
        if n == 0 {
            return Isotonic {
                thresholds: vec![0.0],
                values: vec![0.5],
            };
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            scores[i]
                .partial_cmp(&scores[j])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Each block: (first score, mean value, weight).
        let mut blocks: Vec<(f64, f64, f64)> = Vec::with_capacity(n);
        for &i in &order {
            let y = if correct[i] { 1.0 } else { 0.0 };
            blocks.push((scores[i], y, 1.0));
            // Pool adjacent violators.
            while blocks.len() >= 2 {
                let (_, v2, w2) = blocks[blocks.len() - 1];
                let (s1, v1, w1) = blocks[blocks.len() - 2];
                if v1 <= v2 {
                    break;
                }
                let merged = (s1, (v1 * w1 + v2 * w2) / (w1 + w2), w1 + w2);
                blocks.pop();
                blocks.pop();
                blocks.push(merged);
            }
        }
        Isotonic {
            thresholds: blocks.iter().map(|b| b.0).collect(),
            values: blocks.iter().map(|b| b.1.clamp(0.0, 1.0)).collect(),
        }
    }

    /// Applies the fitted step function: the value of the last block
    /// whose threshold is ≤ `score` (the first block's value below the
    /// smallest threshold). The output is always inside `[0, 1]` and
    /// non-decreasing in `score`.
    pub fn map(&self, score: f64) -> f64 {
        if self.values.is_empty() {
            return score.clamp(0.0, 1.0);
        }
        // partition_point: first index whose threshold exceeds `score`.
        let idx = self.thresholds.partition_point(|&t| t <= score);
        if idx == 0 {
            self.values[0]
        } else {
            self.values[idx - 1]
        }
    }
}

/// A fitted calibration map of either family, or the identity.
#[derive(Debug, Clone, PartialEq)]
pub enum Calibrator {
    /// Raw scores pass through unchanged.
    Identity,
    /// Fitted Platt sigmoid.
    Platt(Platt),
    /// Fitted isotonic step function.
    Isotonic(Isotonic),
}

impl Calibrator {
    /// Fits the requested calibration family on held-out
    /// (score, correctness) pairs.
    pub fn fit(kind: CalibrationKind, scores: &[f64], correct: &[bool]) -> Calibrator {
        match kind {
            CalibrationKind::None => Calibrator::Identity,
            CalibrationKind::Platt => Calibrator::Platt(Platt::fit(scores, correct)),
            CalibrationKind::Isotonic => Calibrator::Isotonic(Isotonic::fit(scores, correct)),
        }
    }

    /// The family this map was fit with.
    pub fn kind(&self) -> CalibrationKind {
        match self {
            Calibrator::Identity => CalibrationKind::None,
            Calibrator::Platt(_) => CalibrationKind::Platt,
            Calibrator::Isotonic(_) => CalibrationKind::Isotonic,
        }
    }

    /// Calibrates one raw score.
    pub fn map(&self, score: f64) -> f64 {
        match self {
            Calibrator::Identity => score,
            Calibrator::Platt(p) => p.map(score),
            Calibrator::Isotonic(i) => i.map(score),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn held_out() -> (Vec<f64>, Vec<bool>) {
        // Higher scores are more often correct, with noise.
        let scores: Vec<f64> = (0..60).map(|i| i as f64 / 59.0).collect();
        let correct: Vec<bool> = (0..60)
            .map(|i| {
                let flip = (i * 7) % 10 == 0;
                (i >= 25) ^ flip
            })
            .collect();
        (scores, correct)
    }

    #[test]
    fn platt_is_strictly_monotone_and_bounded() {
        let (s, c) = held_out();
        let p = Platt::fit(&s, &c);
        assert!(p.a > 0.0);
        let mut last = -1.0;
        for i in 0..=100 {
            let v = p.map(i as f64 / 100.0);
            assert!(v > last, "not strictly monotone at {i}");
            assert!((0.0..=1.0).contains(&v));
            last = v;
        }
    }

    #[test]
    fn platt_separates_correct_from_incorrect() {
        let (s, c) = held_out();
        let p = Platt::fit(&s, &c);
        assert!(
            p.map(0.9) > p.map(0.1) + 0.2,
            "{} vs {}",
            p.map(0.9),
            p.map(0.1)
        );
    }

    #[test]
    fn isotonic_is_monotone_and_bounded() {
        let (s, c) = held_out();
        let iso = Isotonic::fit(&s, &c);
        let mut last = f64::NEG_INFINITY;
        for i in -10..=110 {
            let v = iso.map(i as f64 / 100.0);
            assert!(v >= last, "violation at {i}: {v} < {last}");
            assert!((0.0..=1.0).contains(&v));
            last = v;
        }
    }

    #[test]
    fn isotonic_blocks_are_sorted_and_nondecreasing() {
        let (s, c) = held_out();
        let iso = Isotonic::fit(&s, &c);
        assert!(iso.thresholds.windows(2).all(|w| w[0] <= w[1]));
        assert!(iso.values.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let p = Platt::fit(&[], &[]);
        assert!(p.map(0.5) > 0.0);
        let p = Platt::fit(&[0.5, 0.6], &[true, true]);
        assert!(p.a > 0.0);
        let iso = Isotonic::fit(&[], &[]);
        assert!((0.0..=1.0).contains(&iso.map(0.3)));
    }

    #[test]
    fn kinds_roundtrip_by_name() {
        for k in [
            CalibrationKind::None,
            CalibrationKind::Platt,
            CalibrationKind::Isotonic,
        ] {
            assert_eq!(CalibrationKind::parse(k.name()), Some(k));
        }
        assert_eq!(
            CalibrationKind::parse("PLATT"),
            Some(CalibrationKind::Platt)
        );
        assert!(CalibrationKind::parse("bogus").is_none());
    }

    #[test]
    fn calibrator_dispatch_matches_families() {
        let (s, c) = held_out();
        let ident = Calibrator::fit(CalibrationKind::None, &s, &c);
        assert_eq!(ident.map(0.37), 0.37);
        let platt = Calibrator::fit(CalibrationKind::Platt, &s, &c);
        assert_eq!(platt.kind(), CalibrationKind::Platt);
        let iso = Calibrator::fit(CalibrationKind::Isotonic, &s, &c);
        assert_eq!(iso.kind(), CalibrationKind::Isotonic);
    }
}
