//! `etsc-trigger` — pluggable decision triggers and calibrated
//! confidence for early time-series classification.
//!
//! The paper's algorithms each hard-wire their own stopping rule; this
//! crate decouples *when to decide* from *what to predict* (ROADMAP
//! item 4, following the Renault et al. taxonomy). A [`Trigger`]
//! watches the class-probability stream a base classifier emits for
//! growing prefixes and decides when to halt; four families ship:
//!
//! * [`FixedThreshold`] — myopic confidence threshold;
//! * [`Patience`] — k consecutive agreeing predictions;
//! * [`ExpectedCost`] — the non-myopic Dachraoui-2015 rule trading
//!   misclassification cost against delay cost over every remaining
//!   timestamp;
//! * [`CalibratedThreshold`] — a confidence threshold over scores
//!   recalibrated with from-scratch [Platt scaling](Platt) or
//!   [isotonic regression](Isotonic) fit on held-out training scores.
//!
//! The crate is dependency-free on purpose: triggers consume plain
//! `&[f64]` probability vectors, so the same rule runs inside the
//! evaluation matrix, the streaming server, and the benchmarks without
//! dragging any of those layers in here.

mod calibrate;
mod triggers;

pub use calibrate::{CalibrationKind, Calibrator, Isotonic, Platt};
pub use triggers::{
    CalibratedThreshold, Decision, ExpectedCost, FittedTrigger, FixedThreshold, Patience, Trigger,
};

/// The trigger families, as selectable on the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TriggerKind {
    /// Myopic fixed-threshold confidence.
    Threshold,
    /// Stability/patience (k consecutive agreeing predictions).
    Patience,
    /// Non-myopic Dachraoui-2015 expected cost.
    ExpectedCost,
    /// Calibrated-confidence threshold (Platt or isotonic).
    Calibrated,
}

impl TriggerKind {
    /// Every family, in reporting order.
    pub const ALL: [TriggerKind; 4] = [
        TriggerKind::Threshold,
        TriggerKind::Patience,
        TriggerKind::ExpectedCost,
        TriggerKind::Calibrated,
    ];

    /// Canonical lowercase name (the CLI `--trigger` spelling).
    pub fn name(self) -> &'static str {
        match self {
            TriggerKind::Threshold => "threshold",
            TriggerKind::Patience => "patience",
            TriggerKind::ExpectedCost => "cost",
            TriggerKind::Calibrated => "calibrated",
        }
    }
}

/// Static documentation for one trigger family — what `etsc
/// list-triggers` prints.
#[derive(Debug, Clone)]
pub struct TriggerInfo {
    /// Family.
    pub kind: TriggerKind,
    /// Canonical name.
    pub name: &'static str,
    /// Parameter spellings accepted after `name:`.
    pub params: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Myopic (decides from the present only) vs non-myopic
    /// (estimates future decision costs).
    pub myopic: bool,
}

/// Documentation rows for every trigger family.
pub fn all_triggers() -> Vec<TriggerInfo> {
    vec![
        TriggerInfo {
            kind: TriggerKind::Threshold,
            name: "threshold",
            params: "threshold=P (shorthand: threshold:P; default 0.8)",
            summary: "halt when the winning class probability reaches P",
            myopic: true,
        },
        TriggerInfo {
            kind: TriggerKind::Patience,
            name: "patience",
            params: "k=N,threshold=P (shorthand: patience:N; defaults k=2, threshold=0)",
            summary: "halt after N consecutive agreeing predictions above P",
            myopic: true,
        },
        TriggerInfo {
            kind: TriggerKind::ExpectedCost,
            name: "cost",
            params: "delay=C (shorthand: cost:C; default 0.05)",
            summary: "Dachraoui-2015: halt when deciding now beats every estimated future cost",
            myopic: false,
        },
        TriggerInfo {
            kind: TriggerKind::Calibrated,
            name: "calibrated",
            params: "platt|isotonic,threshold=P (shorthand: calibrated:platt; default platt, 0.8)",
            summary: "halt when the Platt/isotonic-calibrated confidence reaches P",
            myopic: true,
        },
    ]
}

/// A parsed, not-yet-fitted trigger configuration: the family plus its
/// parameters plus the calibration layer to fit. Parses from and
/// prints to the CLI `NAME[:PARAMS]` syntax, round-tripping exactly
/// (f64 parameters use Rust's shortest-exact formatting).
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerSpec {
    /// Trigger family.
    pub kind: TriggerKind,
    /// Confidence threshold (threshold/patience/calibrated families).
    pub threshold: f64,
    /// Patience streak length (patience family).
    pub patience: usize,
    /// Delay-cost coefficient (expected-cost family).
    pub delay_cost: f64,
    /// Calibration layer to fit (mandatory for the calibrated family,
    /// optional confidence transform for expected-cost).
    pub calibration: CalibrationKind,
}

impl TriggerSpec {
    /// The fixed-threshold baseline at 0.8 — the reference point the
    /// benchmark's earliness deltas are computed against.
    pub fn baseline() -> TriggerSpec {
        TriggerSpec::of(TriggerKind::Threshold)
    }

    /// A spec of `kind` with that family's default parameters.
    pub fn of(kind: TriggerKind) -> TriggerSpec {
        TriggerSpec {
            kind,
            threshold: match kind {
                TriggerKind::Patience => 0.0,
                _ => 0.8,
            },
            patience: 2,
            delay_cost: 0.05,
            calibration: match kind {
                TriggerKind::Calibrated => CalibrationKind::Platt,
                _ => CalibrationKind::None,
            },
        }
    }

    /// Parses the CLI syntax `NAME[:PARAMS]`, where `PARAMS` is a
    /// comma-separated list of `key=value` pairs, or a single bare
    /// value for the family's primary parameter (`threshold:0.9`,
    /// `patience:3`, `cost:0.1`, `calibrated:isotonic`).
    ///
    /// # Errors
    /// A human-readable message naming the unknown family or parameter.
    pub fn parse(s: &str) -> Result<TriggerSpec, String> {
        let (name, params) = match s.split_once(':') {
            Some((n, p)) => (n.trim(), Some(p.trim())),
            None => (s.trim(), None),
        };
        let kind = TriggerKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| {
                format!(
                    "unknown trigger {name:?} (expected one of: {})",
                    TriggerKind::ALL.map(TriggerKind::name).join(", ")
                )
            })?;
        let mut spec = TriggerSpec::of(kind);
        let Some(params) = params else {
            return Ok(spec);
        };
        for part in params.split(',').filter(|p| !p.trim().is_empty()) {
            let part = part.trim();
            let (key, value) = match part.split_once('=') {
                Some((k, v)) => (k.trim(), v.trim()),
                // Bare value: the family's primary parameter.
                None => match kind {
                    TriggerKind::Threshold => ("threshold", part),
                    TriggerKind::Patience => ("k", part),
                    TriggerKind::ExpectedCost => ("delay", part),
                    TriggerKind::Calibrated => {
                        if part.parse::<f64>().is_ok() {
                            ("threshold", part)
                        } else {
                            ("calibration", part)
                        }
                    }
                },
            };
            match key {
                "threshold" => {
                    spec.threshold = parse_f64(key, value)?;
                    if !(0.0..=1.0).contains(&spec.threshold) {
                        return Err(format!("trigger threshold {value} is outside [0, 1]"));
                    }
                }
                "k" | "patience" => {
                    spec.patience = value
                        .parse()
                        .map_err(|_| format!("invalid trigger patience {value:?}"))?;
                    if spec.patience == 0 {
                        return Err("trigger patience must be at least 1".into());
                    }
                }
                "delay" | "delay_cost" => {
                    spec.delay_cost = parse_f64(key, value)?;
                    if !spec.delay_cost.is_finite() || spec.delay_cost < 0.0 {
                        return Err(format!("trigger delay cost {value} must be ≥ 0"));
                    }
                }
                "calibration" | "cal" => {
                    spec.calibration = CalibrationKind::parse(value)
                        .ok_or_else(|| format!("unknown calibration {value:?}"))?;
                }
                other => return Err(format!("unknown trigger parameter {other:?} in {s:?}")),
            }
        }
        if kind == TriggerKind::Calibrated && spec.calibration == CalibrationKind::None {
            return Err("the calibrated trigger requires platt or isotonic calibration".into());
        }
        Ok(spec)
    }

    /// Overrides the calibration layer (the CLI `--calibrate` flag).
    /// For the calibrated family, `none` is ignored — that family is
    /// defined by its calibration map.
    #[must_use]
    pub fn with_calibration(mut self, kind: CalibrationKind) -> TriggerSpec {
        if !(self.kind == TriggerKind::Calibrated && kind == CalibrationKind::None) {
            self.calibration = kind;
        }
        self
    }

    /// The canonical `NAME:PARAMS` form; `TriggerSpec::parse` of this
    /// string reproduces the spec exactly.
    pub fn canonical(&self) -> String {
        match self.kind {
            TriggerKind::Threshold => format!("threshold:threshold={}", self.threshold),
            TriggerKind::Patience => {
                format!("patience:k={},threshold={}", self.patience, self.threshold)
            }
            TriggerKind::ExpectedCost => format!(
                "cost:delay={},cal={}",
                self.delay_cost,
                self.calibration.name()
            ),
            TriggerKind::Calibrated => format!(
                "calibrated:cal={},threshold={}",
                self.calibration.name(),
                self.threshold
            ),
        }
    }

    /// Fits this spec on held-out score data, producing the runnable
    /// [`FittedTrigger`]. Families without fitted state (threshold,
    /// patience) ignore `data`.
    pub fn fit(&self, data: &TriggerFitData<'_>) -> FittedTrigger {
        match self.kind {
            TriggerKind::Threshold => FittedTrigger::Threshold(FixedThreshold {
                threshold: self.threshold,
            }),
            TriggerKind::Patience => {
                FittedTrigger::Patience(Patience::new(self.patience, self.threshold))
            }
            TriggerKind::ExpectedCost => {
                let calibrator = self.fit_calibrator(data);
                FittedTrigger::ExpectedCost(ExpectedCost::fit(
                    self.delay_cost,
                    data.fractions,
                    data.trajectories,
                    calibrator,
                ))
            }
            TriggerKind::Calibrated => FittedTrigger::Calibrated(CalibratedThreshold {
                threshold: self.threshold,
                calibrator: self.fit_calibrator(data),
            }),
        }
    }

    /// Re-parameterizes an already-fitted trigger under this spec
    /// *without* fitting data — the serve-time `--trigger` override on
    /// a loaded model. Threshold and patience rebuild freely;
    /// calibrated reuses `prior`'s calibration map (and requires it to
    /// match the requested kind); expected-cost reuses `prior`'s fitted
    /// confidence-gain curve with the new delay cost.
    ///
    /// # Errors
    /// A human-readable message when `prior` lacks the fitted state the
    /// family needs.
    pub fn refit_from(&self, prior: &FittedTrigger) -> Result<FittedTrigger, String> {
        match self.kind {
            TriggerKind::Threshold => Ok(FittedTrigger::Threshold(FixedThreshold {
                threshold: self.threshold,
            })),
            TriggerKind::Patience => Ok(FittedTrigger::Patience(Patience::new(
                self.patience,
                self.threshold,
            ))),
            TriggerKind::ExpectedCost => match prior {
                FittedTrigger::ExpectedCost(c) => Ok(FittedTrigger::ExpectedCost(ExpectedCost {
                    delay_cost: self.delay_cost,
                    fractions: c.fractions.clone(),
                    confidence_curve: c.confidence_curve.clone(),
                    calibrator: c.calibrator.clone(),
                })),
                _ => Err(
                    "the cost trigger needs a confidence-gain curve fitted at training time \
                     (retrain with --trigger cost)"
                        .into(),
                ),
            },
            TriggerKind::Calibrated => {
                let calibrator = prior
                    .calibrator()
                    .filter(|c| c.kind() != CalibrationKind::None)
                    .ok_or_else(|| {
                        "the calibrated trigger needs a calibration map fitted at training \
                         time (retrain with --calibrate platt|isotonic)"
                            .to_string()
                    })?;
                if calibrator.kind() != self.calibration {
                    return Err(format!(
                        "the stored model carries a {} calibration map, not {}",
                        calibrator.kind().name(),
                        self.calibration.name()
                    ));
                }
                Ok(FittedTrigger::Calibrated(CalibratedThreshold {
                    threshold: self.threshold,
                    calibrator: calibrator.clone(),
                }))
            }
        }
    }

    /// Fits the spec's calibration layer on the pooled
    /// (score, correctness) pairs of every trajectory point.
    fn fit_calibrator(&self, data: &TriggerFitData<'_>) -> Calibrator {
        let mut scores = Vec::new();
        let mut correct = Vec::new();
        for (traj, ok) in data.trajectories.iter().zip(data.correct) {
            for (s, c) in traj.iter().zip(ok) {
                scores.push(*s);
                correct.push(*c);
            }
        }
        Calibrator::fit(self.calibration, &scores, &correct)
    }
}

impl std::fmt::Display for TriggerSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical())
    }
}

fn parse_f64(key: &str, value: &str) -> Result<f64, String> {
    value
        .parse()
        .map_err(|_| format!("invalid trigger {key} {value:?}"))
}

/// Held-out material a trigger family may fit on: for each held-out
/// instance, the winning-class score trajectory across the evaluation
/// fractions, and whether the winning class was correct at each point.
#[derive(Debug, Clone, Copy)]
pub struct TriggerFitData<'a> {
    /// Evaluation-point fractions of the series length (ascending).
    pub fractions: &'a [f64],
    /// `trajectories[i][j]`: winning-class score of instance `i` at
    /// fraction `fractions[j]`.
    pub trajectories: &'a [Vec<f64>],
    /// `correct[i][j]`: whether instance `i`'s winning class at
    /// fraction `fractions[j]` matched its true label.
    pub correct: &'a [Vec<bool>],
}

impl TriggerFitData<'_> {
    /// An empty fitting set (for families without fitted state).
    pub const EMPTY: TriggerFitData<'static> = TriggerFitData {
        fractions: &[],
        trajectories: &[],
        correct: &[],
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refit_from_reuses_fitted_state() {
        let prior = FittedTrigger::ExpectedCost(ExpectedCost {
            delay_cost: 0.05,
            fractions: vec![0.2, 1.0],
            confidence_curve: vec![0.6, 0.9],
            calibrator: Calibrator::Platt(Platt { a: 2.0, b: -1.0 }),
        });
        // Same family: new delay cost, everything fitted carried over.
        let re = TriggerSpec::parse("cost:0.2")
            .unwrap()
            .refit_from(&prior)
            .unwrap();
        match re {
            FittedTrigger::ExpectedCost(c) => {
                assert!((c.delay_cost - 0.2).abs() < 1e-12);
                assert_eq!(c.confidence_curve, vec![0.6, 0.9]);
            }
            other => panic!("{other:?}"),
        }
        // Calibrated: reuses the map when kinds agree, rejects otherwise.
        let ok = TriggerSpec::parse("calibrated:cal=platt,threshold=0.9")
            .unwrap()
            .refit_from(&prior)
            .unwrap();
        assert!(matches!(ok, FittedTrigger::Calibrated(_)));
        assert!(TriggerSpec::parse("calibrated:cal=isotonic")
            .unwrap()
            .refit_from(&prior)
            .is_err());
        // Data-free families rebuild from any prior.
        let plain = FittedTrigger::Threshold(FixedThreshold { threshold: 0.8 });
        assert!(TriggerSpec::parse("patience:3")
            .unwrap()
            .refit_from(&plain)
            .is_ok());
        // Fitted families cannot be conjured from a data-free prior.
        assert!(TriggerSpec::parse("cost")
            .unwrap()
            .refit_from(&plain)
            .is_err());
        assert!(TriggerSpec::parse("calibrated")
            .unwrap()
            .refit_from(&plain)
            .is_err());
    }

    #[test]
    fn parse_shorthands_and_defaults() {
        let t = TriggerSpec::parse("threshold").unwrap();
        assert_eq!(t.kind, TriggerKind::Threshold);
        assert!((t.threshold - 0.8).abs() < 1e-12);
        let t = TriggerSpec::parse("threshold:0.9").unwrap();
        assert!((t.threshold - 0.9).abs() < 1e-12);
        let t = TriggerSpec::parse("patience:3").unwrap();
        assert_eq!(t.patience, 3);
        let t = TriggerSpec::parse("cost:0.1").unwrap();
        assert!((t.delay_cost - 0.1).abs() < 1e-12);
        let t = TriggerSpec::parse("calibrated:isotonic").unwrap();
        assert_eq!(t.calibration, CalibrationKind::Isotonic);
        let t = TriggerSpec::parse("patience:k=4,threshold=0.6").unwrap();
        assert_eq!(t.patience, 4);
        assert!((t.threshold - 0.6).abs() < 1e-12);
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!(TriggerSpec::parse("wat").is_err());
        assert!(TriggerSpec::parse("threshold:1.5").is_err());
        assert!(TriggerSpec::parse("patience:k=0").is_err());
        assert!(TriggerSpec::parse("cost:delay=-1").is_err());
        assert!(TriggerSpec::parse("threshold:wat=1").is_err());
        assert!(TriggerSpec::parse("calibrated:cal=none").is_err());
    }

    #[test]
    fn canonical_roundtrips_exactly() {
        for s in [
            "threshold:0.8375",
            "patience:k=3,threshold=0.65",
            "cost:delay=0.017",
            "calibrated:cal=isotonic,threshold=0.9",
            "cost:delay=0.1,cal=platt",
        ] {
            let spec = TriggerSpec::parse(s).unwrap();
            let back = TriggerSpec::parse(&spec.canonical()).unwrap();
            assert_eq!(spec, back, "{s}");
        }
    }

    #[test]
    fn calibrate_flag_layers_on() {
        let spec = TriggerSpec::parse("threshold:0.8")
            .unwrap()
            .with_calibration(CalibrationKind::Isotonic);
        assert_eq!(spec.calibration, CalibrationKind::Isotonic);
        // `none` never strips the calibrated family's map.
        let spec = TriggerSpec::parse("calibrated:platt")
            .unwrap()
            .with_calibration(CalibrationKind::None);
        assert_eq!(spec.calibration, CalibrationKind::Platt);
    }

    #[test]
    fn fit_produces_each_family() {
        let fractions = [0.25, 0.5, 0.75, 1.0];
        let trajectories = vec![vec![0.5, 0.6, 0.8, 0.9]; 6];
        let correct = vec![vec![false, true, true, true]; 6];
        let data = TriggerFitData {
            fractions: &fractions,
            trajectories: &trajectories,
            correct: &correct,
        };
        for kind in TriggerKind::ALL {
            let mut fitted = TriggerSpec::of(kind).fit(&data);
            assert!(!fitted.name().is_empty());
            // Every family halts at the final timestamp.
            assert_eq!(fitted.observe(&[0.5, 0.5], 8, 8), Decision::Halt);
        }
    }

    #[test]
    fn all_triggers_covers_every_kind() {
        let infos = all_triggers();
        assert_eq!(infos.len(), TriggerKind::ALL.len());
        for kind in TriggerKind::ALL {
            let info = infos.iter().find(|i| i.kind == kind).unwrap();
            assert_eq!(info.name, kind.name());
            assert!(!info.params.is_empty());
            assert!(!info.summary.is_empty());
        }
        assert!(
            !infos
                .iter()
                .find(|i| i.kind == TriggerKind::ExpectedCost)
                .unwrap()
                .myopic
        );
    }
}
