//! The trigger families: when to stop watching a stream and commit.
//!
//! Every trigger consumes the *class-probability vector* a base
//! classifier emitted for the prefix seen so far, plus where in the
//! series that prefix ends, and answers one question: halt now or wait
//! for more data. Triggers are deliberately decoupled from the
//! classifiers that feed them (the Renault et al. taxonomy): the same
//! base model can run under a myopic confidence rule, a stability
//! rule, or the non-myopic expected-cost rule of Dachraoui et al. 2015
//! without retraining.

use crate::calibrate::Calibrator;

/// A trigger's verdict for the prefix observed so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Commit to the current prediction now.
    Halt,
    /// Keep streaming.
    Wait,
}

/// A halting rule over a stream of class-probability vectors.
///
/// `observe` is called once per evaluation point with the probabilities
/// for the prefix ending at time `t` (1-based, `t ≤ series_len`).
/// Implementations must halt at `t == series_len` — a stream that ends
/// must produce a decision.
pub trait Trigger: Send {
    /// Display name of the fitted rule (e.g. `"threshold(0.80)"`).
    fn name(&self) -> String;

    /// Decides whether to halt given the class probabilities at time
    /// `t` of a series of length `series_len`.
    fn observe(&mut self, probs: &[f64], t: usize, series_len: usize) -> Decision;

    /// Clears any per-stream state (e.g. a patience streak) so the
    /// trigger can be reused for the next stream.
    fn reset(&mut self) {}
}

/// Index and value of the winning class.
fn top(probs: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, &p) in probs.iter().enumerate() {
        if p > best.1 {
            best = (i, p);
        }
    }
    if best.1.is_finite() {
        best
    } else {
        (0, 0.0)
    }
}

/// Myopic fixed-threshold confidence: halt as soon as the winning
/// class probability reaches `threshold`.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedThreshold {
    /// Minimum winning-class probability to halt on.
    pub threshold: f64,
}

impl Trigger for FixedThreshold {
    fn name(&self) -> String {
        format!("threshold({:.2})", self.threshold)
    }

    fn observe(&mut self, probs: &[f64], t: usize, series_len: usize) -> Decision {
        if t >= series_len || top(probs).1 >= self.threshold {
            Decision::Halt
        } else {
            Decision::Wait
        }
    }
}

/// Stability/patience: halt once the predicted class has stayed the
/// same for `patience` consecutive evaluation points and its
/// probability clears `threshold` (0 disables the confidence floor).
#[derive(Debug, Clone, PartialEq)]
pub struct Patience {
    /// Consecutive agreeing evaluation points required.
    pub patience: usize,
    /// Confidence floor the winning class must also clear (0 = none).
    pub threshold: f64,
    streak: usize,
    last_label: Option<usize>,
}

impl Patience {
    /// A fresh patience rule.
    pub fn new(patience: usize, threshold: f64) -> Patience {
        Patience {
            patience: patience.max(1),
            threshold,
            streak: 0,
            last_label: None,
        }
    }
}

impl Trigger for Patience {
    fn name(&self) -> String {
        format!("patience(k={},{:.2})", self.patience, self.threshold)
    }

    fn observe(&mut self, probs: &[f64], t: usize, series_len: usize) -> Decision {
        let (label, p) = top(probs);
        if self.last_label == Some(label) {
            self.streak += 1;
        } else {
            self.streak = 1;
            self.last_label = Some(label);
        }
        if t >= series_len || (self.streak >= self.patience && p >= self.threshold) {
            Decision::Halt
        } else {
            Decision::Wait
        }
    }

    fn reset(&mut self) {
        self.streak = 0;
        self.last_label = None;
    }
}

/// Non-myopic expected-cost trigger after Dachraoui et al. 2015: halt
/// when the expected cost of deciding *now* is no worse than the
/// estimated expected cost of deciding at any *future* evaluation
/// point.
///
/// The cost of deciding at fraction `τ` of the series is
/// `P(error | τ) + delay_cost · τ`, where the error probability now is
/// `1 − p_top` and the error probability at a future point is
/// extrapolated from the fitted confidence-gain curve: the mean
/// (calibrated) winning-class probability the base classifier achieved
/// at each evaluation fraction on held-out training data. This is the
/// non-myopic part — the rule looks ahead over every remaining
/// timestamp instead of comparing against a static threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedCost {
    /// Cost per unit of delay, in the same units as one
    /// misclassification (Dachraoui's time-cost parameter).
    pub delay_cost: f64,
    /// Evaluation-point fractions the curve was fitted on (ascending).
    pub fractions: Vec<f64>,
    /// Mean held-out winning-class probability at each fraction.
    pub confidence_curve: Vec<f64>,
    /// Calibration applied to raw winning-class scores before costing.
    pub calibrator: Calibrator,
}

impl ExpectedCost {
    /// Fits the confidence-gain curve from held-out score trajectories:
    /// `trajectories[i][j]` is the winning-class score of held-out
    /// instance `i` at fraction `fractions[j]`.
    pub fn fit(
        delay_cost: f64,
        fractions: &[f64],
        trajectories: &[Vec<f64>],
        calibrator: Calibrator,
    ) -> ExpectedCost {
        let mut curve = vec![0.0; fractions.len()];
        if !trajectories.is_empty() {
            for traj in trajectories {
                for (j, &s) in traj.iter().take(curve.len()).enumerate() {
                    curve[j] += calibrator.map(s);
                }
            }
            for c in &mut curve {
                *c /= trajectories.len() as f64;
            }
        }
        ExpectedCost {
            delay_cost,
            fractions: fractions.to_vec(),
            confidence_curve: curve,
            calibrator,
        }
    }

    /// Expected confidence at curve index `j`, for extrapolating from
    /// the currently observed confidence `p` at curve index `now`.
    fn projected(&self, p: f64, now: usize, j: usize) -> f64 {
        let gain = self.confidence_curve[j] - self.confidence_curve[now];
        (p + gain).clamp(0.0, 1.0)
    }
}

impl Trigger for ExpectedCost {
    fn name(&self) -> String {
        format!("cost(delay={})", self.delay_cost)
    }

    fn observe(&mut self, probs: &[f64], t: usize, series_len: usize) -> Decision {
        if t >= series_len || self.fractions.is_empty() {
            return Decision::Halt;
        }
        let frac = t as f64 / series_len as f64;
        let p = self.calibrator.map(top(probs).1);
        // Current position on the fitted grid: last fraction ≤ frac.
        let now = self
            .fractions
            .partition_point(|&f| f <= frac + 1e-12)
            .saturating_sub(1);
        let cost_now = (1.0 - p) + self.delay_cost * frac;
        for j in (now + 1)..self.fractions.len() {
            let future = (1.0 - self.projected(p, now, j)) + self.delay_cost * self.fractions[j];
            if future < cost_now - 1e-12 {
                return Decision::Wait;
            }
        }
        Decision::Halt
    }
}

/// Calibrated-confidence trigger: the winning-class score is passed
/// through a fitted Platt or isotonic map before the threshold
/// comparison, so "0.8 confident" means an estimated 80% chance of
/// being right rather than whatever the base model's raw scores mean.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedThreshold {
    /// Minimum *calibrated* winning-class probability to halt on.
    pub threshold: f64,
    /// The fitted calibration map.
    pub calibrator: Calibrator,
}

impl Trigger for CalibratedThreshold {
    fn name(&self) -> String {
        format!(
            "calibrated({},{:.2})",
            self.calibrator.kind().name(),
            self.threshold
        )
    }

    fn observe(&mut self, probs: &[f64], t: usize, series_len: usize) -> Decision {
        if t >= series_len || self.calibrator.map(top(probs).1) >= self.threshold {
            Decision::Halt
        } else {
            Decision::Wait
        }
    }
}

/// A fitted trigger of any family — the owned, persistable form the
/// rest of the stack threads through streams and the model store.
#[derive(Debug, Clone, PartialEq)]
pub enum FittedTrigger {
    /// Myopic fixed-threshold confidence.
    Threshold(FixedThreshold),
    /// Stability/patience rule.
    Patience(Patience),
    /// Non-myopic Dachraoui-2015 expected cost.
    ExpectedCost(ExpectedCost),
    /// Calibrated-confidence threshold.
    Calibrated(CalibratedThreshold),
}

impl Trigger for FittedTrigger {
    fn name(&self) -> String {
        match self {
            FittedTrigger::Threshold(x) => x.name(),
            FittedTrigger::Patience(x) => x.name(),
            FittedTrigger::ExpectedCost(x) => x.name(),
            FittedTrigger::Calibrated(x) => x.name(),
        }
    }

    fn observe(&mut self, probs: &[f64], t: usize, series_len: usize) -> Decision {
        match self {
            FittedTrigger::Threshold(x) => x.observe(probs, t, series_len),
            FittedTrigger::Patience(x) => x.observe(probs, t, series_len),
            FittedTrigger::ExpectedCost(x) => x.observe(probs, t, series_len),
            FittedTrigger::Calibrated(x) => x.observe(probs, t, series_len),
        }
    }

    fn reset(&mut self) {
        match self {
            FittedTrigger::Threshold(x) => x.reset(),
            FittedTrigger::Patience(x) => x.reset(),
            FittedTrigger::ExpectedCost(x) => x.reset(),
            FittedTrigger::Calibrated(x) => x.reset(),
        }
    }
}

impl FittedTrigger {
    /// The calibration map the rule carries, if any.
    pub fn calibrator(&self) -> Option<&Calibrator> {
        match self {
            FittedTrigger::Threshold(_) | FittedTrigger::Patience(_) => None,
            FittedTrigger::ExpectedCost(x) => Some(&x.calibrator),
            FittedTrigger::Calibrated(x) => Some(&x.calibrator),
        }
    }

    /// Applies the rule's calibration map to a raw winning-class
    /// score (identity for uncalibrated rules).
    pub fn calibrate(&self, score: f64) -> f64 {
        self.calibrator().map_or(score, |c| c.map(score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::Platt;

    #[test]
    fn threshold_halts_on_confidence_and_at_end() {
        let mut t = FixedThreshold { threshold: 0.8 };
        assert_eq!(t.observe(&[0.5, 0.5], 1, 10), Decision::Wait);
        assert_eq!(t.observe(&[0.85, 0.15], 2, 10), Decision::Halt);
        assert_eq!(t.observe(&[0.5, 0.5], 10, 10), Decision::Halt);
    }

    #[test]
    fn patience_requires_consecutive_agreement() {
        let mut t = Patience::new(3, 0.0);
        assert_eq!(t.observe(&[0.9, 0.1], 1, 10), Decision::Wait);
        assert_eq!(t.observe(&[0.2, 0.8], 2, 10), Decision::Wait);
        assert_eq!(t.observe(&[0.3, 0.7], 3, 10), Decision::Wait);
        // A flip back to class 0 resets the streak.
        assert_eq!(t.observe(&[0.9, 0.1], 4, 10), Decision::Wait);
        assert_eq!(t.observe(&[0.1, 0.9], 5, 10), Decision::Wait);
        assert_eq!(t.observe(&[0.2, 0.8], 6, 10), Decision::Wait);
        assert_eq!(t.observe(&[0.2, 0.8], 7, 10), Decision::Halt);
        t.reset();
        assert_eq!(t.observe(&[0.2, 0.8], 1, 10), Decision::Wait);
    }

    #[test]
    fn patience_confidence_floor_applies() {
        let mut t = Patience::new(2, 0.75);
        assert_eq!(t.observe(&[0.4, 0.6], 1, 10), Decision::Wait);
        assert_eq!(t.observe(&[0.4, 0.6], 2, 10), Decision::Wait, "floor");
        assert_eq!(t.observe(&[0.2, 0.8], 3, 10), Decision::Halt);
    }

    #[test]
    fn expected_cost_waits_while_big_gains_remain() {
        // Confidence climbs steeply from 0.5 to 0.95 across the series;
        // a tiny delay cost makes waiting worthwhile early on.
        let fractions = vec![0.2, 0.4, 0.6, 0.8, 1.0];
        let trajectories = vec![vec![0.5, 0.7, 0.9, 0.95, 0.95]; 8];
        let mut t = ExpectedCost::fit(0.01, &fractions, &trajectories, Calibrator::Identity);
        assert_eq!(t.observe(&[0.5, 0.5], 2, 10), Decision::Wait);
        assert_eq!(t.observe(&[0.95, 0.05], 8, 10), Decision::Halt);
    }

    #[test]
    fn expected_cost_halts_early_when_delay_is_expensive() {
        let fractions = vec![0.2, 0.4, 0.6, 0.8, 1.0];
        let trajectories = vec![vec![0.5, 0.55, 0.6, 0.62, 0.63]; 8];
        // Delay dominates the modest confidence gains.
        let mut t = ExpectedCost::fit(1.0, &fractions, &trajectories, Calibrator::Identity);
        assert_eq!(t.observe(&[0.55, 0.45], 2, 10), Decision::Halt);
    }

    #[test]
    fn expected_cost_halts_at_end_even_with_empty_curve() {
        let mut t = ExpectedCost::fit(0.1, &[], &[], Calibrator::Identity);
        assert_eq!(t.observe(&[0.5, 0.5], 3, 10), Decision::Halt);
    }

    #[test]
    fn calibrated_threshold_uses_the_map() {
        // A sigmoid that pushes raw 0.6 well above 0.8.
        let cal = Calibrator::Platt(Platt { a: 20.0, b: -8.0 });
        let mut t = CalibratedThreshold {
            threshold: 0.8,
            calibrator: cal,
        };
        assert_eq!(t.observe(&[0.6, 0.4], 1, 10), Decision::Halt);
        let mut raw = FixedThreshold { threshold: 0.8 };
        assert_eq!(raw.observe(&[0.6, 0.4], 1, 10), Decision::Wait);
    }

    #[test]
    fn fitted_enum_dispatches_and_names() {
        let mut f = FittedTrigger::Threshold(FixedThreshold { threshold: 0.7 });
        assert!(f.name().starts_with("threshold"));
        assert_eq!(f.observe(&[0.9, 0.1], 1, 10), Decision::Halt);
        assert!(f.calibrator().is_none());
        let c = FittedTrigger::Calibrated(CalibratedThreshold {
            threshold: 0.5,
            calibrator: Calibrator::Identity,
        });
        assert!(c.calibrator().is_some());
        assert_eq!(c.calibrate(0.4), 0.4);
    }

    #[test]
    fn empty_probs_do_not_panic() {
        let mut t = FixedThreshold { threshold: 0.5 };
        assert_eq!(t.observe(&[], 1, 10), Decision::Wait);
        assert_eq!(t.observe(&[], 10, 10), Decision::Halt);
    }
}
