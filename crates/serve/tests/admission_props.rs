//! Property tests for the overload-admission primitives: the token
//! bucket's refill arithmetic, the CoDel controller's convergence to
//! its sojourn target, and the brownout ladder's hysteresis.

use std::time::{Duration, Instant};

use proptest::prelude::*;

use etsc_serve::admission::{
    BrownoutConfig, BrownoutController, BrownoutLevel, CodelConfig, CodelController, TokenBucket,
};

proptest! {
    #[test]
    fn token_bucket_refill_is_monotone_and_capped(
        rate in 0.5f64..500.0,
        burst in 1.0f64..64.0,
        gaps_ms in prop::collection::vec(0u64..200, 1..40),
    ) {
        // Between acquisitions, available tokens never decrease as
        // time advances and never exceed the burst capacity; and over
        // any window the bucket admits at most burst + rate·window
        // units of work.
        let start = Instant::now();
        let mut bucket = TokenBucket::new(rate, burst);
        let mut now = start;
        let mut admitted = 0u64;
        let mut last_available = bucket.available();
        for &gap in &gaps_ms {
            now += Duration::from_millis(gap);
            let took = bucket.try_acquire(now);
            let available = bucket.available();
            prop_assert!(available <= burst + 1e-9, "overfilled: {available} > {burst}");
            if took {
                admitted += 1;
            } else {
                // A refusal consumed nothing, so the fill level can
                // only have grown since the last look.
                prop_assert!(
                    available + 1e-9 >= last_available.min(burst),
                    "refill went backwards: {last_available} -> {available}"
                );
                prop_assert!(bucket.retry_after() > Duration::ZERO);
            }
            last_available = available;
        }
        let window = now.duration_since(start).as_secs_f64();
        let ceiling = burst + rate * window + 1.0;
        prop_assert!(
            (admitted as f64) <= ceiling,
            "admitted {admitted} > ceiling {ceiling}"
        );
    }

    #[test]
    fn codel_converges_to_target_under_any_sustained_overload(
        overload in 2u64..6,
        target_ms in 2u64..12,
    ) {
        // Closed loop: service clears 1 item/ms, arrivals offer
        // `overload`×that. Whatever the overload factor and target,
        // admission must hold the steady-state sojourn near the
        // target instead of letting the queue diverge.
        let cfg = CodelConfig {
            target: Duration::from_millis(target_ms),
            interval: Duration::from_millis(20),
        };
        let mut c = CodelController::new(cfg);
        let start = Instant::now();
        let mut queue: u64 = 0;
        let mut tail_peak = Duration::ZERO;
        let horizon = 5000u64;
        for ms in 0..horizon {
            let now = start + Duration::from_millis(ms);
            let spread = 1000 / overload.max(1);
            for j in 0..overload {
                // Arrivals spread inside the tick, as on a real wire.
                if c.admit(now + Duration::from_micros(j * spread)) {
                    queue += 1;
                }
            }
            if queue > 0 {
                queue -= 1;
                let sojourn = Duration::from_millis(queue);
                c.record_sojourn(sojourn, now);
                if ms >= horizon - 1000 {
                    tail_peak = tail_peak.max(sojourn);
                }
            }
        }
        // Unbounded growth would reach ~overload×horizon ms; converged
        // operation oscillates around the target with amplitude
        // bounded by the control interval (the re-entry window), not
        // by the offered load.
        prop_assert!(
            tail_peak <= cfg.target + cfg.interval * 2,
            "tail sojourn {tail_peak:?} diverged from target {:?} at {overload}x",
            cfg.target
        );
        prop_assert!(c.shed_count() > 0, "overload shed nothing");
    }

    #[test]
    fn brownout_hysteresis_never_oscillates_per_step(
        up_after in 1u32..5,
        down_after in 1u32..8,
        samples in prop::collection::vec(0u64..60, 1..300),
    ) {
        // Three invariants under arbitrary pressure signals: the level
        // moves at most one rung per sample; a direction reversal
        // needs a full opposite streak (so no up-then-down inside one
        // hysteresis window); and pressure inside the dead band never
        // moves the ladder at all.
        let cfg = BrownoutConfig {
            high_water: Duration::from_millis(20),
            low_water: Duration::from_millis(5),
            up_after,
            down_after,
        };
        let mut b = BrownoutController::new(cfg);
        let mut last_dir: i32 = 0;
        let mut samples_since_move = u32::MAX;
        for &ms in &samples {
            samples_since_move = samples_since_move.saturating_add(1);
            let before = b.level().as_u8() as i32;
            let moved = b.observe(Duration::from_millis(ms));
            let after = b.level().as_u8() as i32;
            let delta = after - before;
            prop_assert!(delta.abs() <= 1, "moved {delta} rungs in one step");
            prop_assert_eq!(moved.is_some(), delta != 0);
            if let Some((from, to)) = moved {
                prop_assert_eq!(from.as_u8() as i32, before);
                prop_assert_eq!(to.as_u8() as i32, after);
                // A reversal must have waited out the opposite streak.
                if last_dir != 0 && delta != last_dir {
                    let needed = if delta > 0 { up_after } else { down_after };
                    prop_assert!(
                        samples_since_move >= needed,
                        "reversed direction after {samples_since_move} < {needed} samples"
                    );
                }
                last_dir = delta;
                samples_since_move = 0;
            }
            // Dead-band samples reset streaks: holding there forever
            // must never move the ladder.
            if (6..20).contains(&ms) {
                prop_assert!(delta == 0, "dead-band sample moved the ladder");
            }
        }
        prop_assert!(b.level() <= BrownoutLevel::ShedLowPriority);
    }
}
