//! Property tests for the model-store trigger codec: a fitted
//! calibration map — and the whole fitted trigger around it — must
//! round-trip through the store's binary codec *exactly*, bit for bit,
//! so a model served after save/load emits the same calibrated
//! probabilities as the one that was trained.

use proptest::prelude::*;

use etsc_core::{decode_calibrator, decode_trigger, encode_calibrator, encode_trigger};
use etsc_data::codec::{Decoder, Encoder};
use etsc_trigger::{CalibrationKind, Calibrator, TriggerFitData, TriggerSpec};

/// Reshapes flat generated material into the (fractions, trajectories,
/// correctness) triple a trigger fits on: `instances` trajectories over
/// an ascending `points`-long fraction grid.
fn shape(
    grid: Vec<f64>,
    instances: usize,
    flat_scores: &[f64],
    flat_correct: &[u8],
) -> (Vec<f64>, Vec<Vec<f64>>, Vec<Vec<bool>>) {
    let mut fractions = grid;
    fractions.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let points = fractions.len();
    let trajectories: Vec<Vec<f64>> = (0..instances)
        .map(|i| (0..points).map(|j| flat_scores[i * points + j]).collect())
        .collect();
    let correct: Vec<Vec<bool>> = (0..instances)
        .map(|i| {
            (0..points)
                .map(|j| flat_correct[i * points + j] == 1)
                .collect()
        })
        .collect();
    (fractions, trajectories, correct)
}

/// The spec corpus the round-trip sweeps: every trigger family, both
/// calibration families where they apply.
const SPECS: [&str; 6] = [
    "threshold:0.7",
    "patience:k=3,threshold=0.6",
    "cost:0.08",
    "cost:cal=isotonic,delay=0.12",
    "calibrated:cal=platt,threshold=0.75",
    "calibrated:cal=isotonic,threshold=0.65",
];

proptest! {
    #[test]
    fn calibrators_roundtrip_exactly(
        pairs in prop::collection::vec((0.0f64..=1.0, 0u8..2), 0..60),
        probes in prop::collection::vec(0.0f64..=1.0, 1..20),
    ) {
        let (scores, ok): (Vec<f64>, Vec<bool>) =
            pairs.into_iter().map(|(s, c)| (s, c == 1)).unzip();
        for kind in [CalibrationKind::None, CalibrationKind::Platt, CalibrationKind::Isotonic] {
            let fitted = Calibrator::fit(kind, &scores, &ok);
            let mut e = Encoder::new();
            encode_calibrator(&mut e, &fitted);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            let back = decode_calibrator(&mut d).unwrap();
            prop_assert!(d.is_exhausted(), "codec left trailing bytes");
            prop_assert_eq!(&back, &fitted);
            // Exactness down to the bit pattern of every probability.
            for &p in &probes {
                prop_assert_eq!(back.map(p).to_bits(), fitted.map(p).to_bits());
            }
        }
    }

    #[test]
    fn fitted_triggers_roundtrip_exactly(
        grid in prop::collection::vec(0.01f64..=1.0, 2..6),
        instances in 1usize..12,
        flat_scores in prop::collection::vec(0.0f64..=1.0, 72),
        flat_correct in prop::collection::vec(0u8..2, 72),
        spec_idx in 0usize..6,
    ) {
        let (fractions, trajectories, correct) =
            shape(grid, instances, &flat_scores, &flat_correct);
        let spec = TriggerSpec::parse(SPECS[spec_idx]).unwrap();
        let fitted = spec.fit(&TriggerFitData {
            fractions: &fractions,
            trajectories: &trajectories,
            correct: &correct,
        });
        let mut e = Encoder::new();
        encode_trigger(&mut e, &fitted);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = decode_trigger(&mut d).unwrap();
        prop_assert!(d.is_exhausted(), "codec left trailing bytes");
        prop_assert_eq!(&back, &fitted);
        // A second encode of the decoded value is byte-identical —
        // the codec is canonical, not merely value-preserving.
        let mut e2 = Encoder::new();
        encode_trigger(&mut e2, &back);
        prop_assert_eq!(e2.into_bytes(), bytes);
    }
}
