//! Concurrent session scheduler: a fixed worker pool multiplexing many
//! streaming sessions.
//!
//! Sessions are partitioned across workers by session id, so each
//! session lives entirely on one thread (its [`StreamSession`] never
//! crosses threads). Observations flow through one bounded ingress
//! queue per worker; when a queue is full the configured
//! [`Backpressure`] policy decides whether the producer blocks
//! (lossless) or sheds the observation (lossy, counted). The pool
//! reuses the supervisor's pattern — `crossbeam::thread::scope` plus
//! shared slots — with a condvar-based queue in place of the job
//! counter, since streaming work arrives over time instead of being
//! enumerable up front.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use etsc_core::{EarlyClassifier, EarlyPrediction, EtscError};
use etsc_data::MultiSeries;
use etsc_eval::histogram::LatencyHistogram;

use crate::session::StreamSession;

/// What to do with an observation when its worker's ingress queue is
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the producer until the worker catches up: lossless, the
    /// replay's decisions exactly match the offline ones.
    Block,
    /// Drop the observation and count it: the stream keeps its pace at
    /// the cost of the session seeing a subsampled series (a session
    /// whose final point is shed may never commit — reported as a
    /// dropped decision).
    Shed,
}

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Bounded capacity of each worker's ingress queue, in observations.
    pub queue_capacity: usize,
    /// Policy when a queue is full.
    pub backpressure: Backpressure,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            workers: 4,
            queue_capacity: 1024,
            backpressure: Backpressure::Block,
        }
    }
}

/// What a replay produced, per session and in aggregate.
#[derive(Debug)]
pub struct ServeReport {
    /// Final prediction per session; `None` when the session never
    /// committed (only possible under [`Backpressure::Shed`]).
    pub decisions: Vec<Option<EarlyPrediction>>,
    /// Observations shed under backpressure.
    pub shed_observations: usize,
    /// Sessions that ended without a decision.
    pub dropped_decisions: usize,
    /// Total re-evaluations across all sessions.
    pub evals: usize,
    /// Wall-clock latency of each re-evaluation (seconds).
    pub eval_latency: LatencyHistogram,
    /// Per-decision lag from the triggering observation's enqueue to the
    /// committed prediction (seconds) — includes queueing delay, unlike
    /// [`ServeReport::eval_latency`].
    pub decision_lag: LatencyHistogram,
    /// Wall-clock duration of the whole replay (seconds).
    pub wall_secs: f64,
    /// Errors raised by sessions (first message kept).
    pub errors: usize,
    /// First session error, if any.
    pub first_error: Option<String>,
}

impl ServeReport {
    /// Committed decisions.
    pub fn committed(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_some()).count()
    }

    /// Decision throughput over the replay wall-clock.
    pub fn decisions_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.committed() as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// One observation in flight to a worker. Finality is derived by the
/// session from its expected length, so only the payload and timing
/// travel.
struct Item {
    session: usize,
    row: Vec<f64>,
    enqueued: Instant,
}

/// Bounded MPSC ingress queue (std mutex + condvars; the vendored
/// crossbeam stub has no channels).
struct Ingress {
    state: Mutex<IngressState>,
    space: Condvar,
    ready: Condvar,
    capacity: usize,
}

struct IngressState {
    items: VecDeque<Item>,
    closed: bool,
}

impl Ingress {
    fn new(capacity: usize) -> Ingress {
        Ingress {
            state: Mutex::new(IngressState {
                items: VecDeque::new(),
                closed: false,
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`; with `Block` waits for space, with `Shed`
    /// returns `false` when full without enqueueing.
    fn push(&self, item: Item, policy: Backpressure) -> bool {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while state.items.len() >= self.capacity {
            match policy {
                Backpressure::Shed => return false,
                Backpressure::Block => {
                    state = self
                        .space
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        true
    }

    /// Dequeues the next item, blocking; `None` once closed and drained.
    fn pop(&self) -> Option<Item> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.space.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .closed = true;
        self.ready.notify_all();
    }
}

/// Replays `instances` as concurrent streaming sessions against one
/// shared fitted model and reports decisions plus measured latencies.
///
/// `batch` is the re-evaluation granularity in points (the algorithm's
/// `decision_batch`). Feeding is time-major: observation `t` of every
/// session is enqueued before observation `t + 1` of any session, the
/// interleaving a real multiplexed ingress would produce.
///
/// # Errors
/// Infrastructure failures only (a worker panic escaping the pool).
/// Per-session model errors are reported in the [`ServeReport`].
pub fn serve_sessions(
    model: &(dyn EarlyClassifier + Sync),
    instances: &[MultiSeries],
    batch: usize,
    config: &SchedulerConfig,
) -> Result<ServeReport, EtscError> {
    let n = instances.len();
    let workers = config.workers.max(1).min(n.max(1));
    let queues: Vec<Ingress> = (0..workers)
        .map(|_| Ingress::new(config.queue_capacity))
        .collect();
    let slots: Vec<Mutex<Option<EarlyPrediction>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let shed = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let first_error: Mutex<Option<String>> = Mutex::new(None);
    let started = Instant::now();

    let per_worker = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for queue in &queues {
            let slots = &slots;
            let done = &done;
            let errors = &errors;
            let first_error = &first_error;
            handles.push(scope.spawn(move |_| {
                let mut sessions: HashMap<usize, StreamSession<'_>> = HashMap::new();
                let mut eval_latency = LatencyHistogram::new();
                let mut decision_lag = LatencyHistogram::new();
                let mut evals = 0usize;
                while let Some(item) = queue.pop() {
                    let s = item.session;
                    if done[s].load(Ordering::Acquire) {
                        continue;
                    }
                    let session = match sessions.entry(s) {
                        std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
                        std::collections::hash_map::Entry::Vacant(v) => {
                            let inst = &instances[s];
                            match StreamSession::new(model, inst.vars(), inst.len(), batch) {
                                Ok(session) => v.insert(session),
                                Err(e) => {
                                    record_error(errors, first_error, &e);
                                    done[s].store(true, Ordering::Release);
                                    continue;
                                }
                            }
                        }
                    };
                    let before = session.evals();
                    match session.push(&item.row) {
                        Ok(Some(prediction)) => {
                            *slots[s]
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner) =
                                Some(prediction);
                            done[s].store(true, Ordering::Release);
                            decision_lag.record(item.enqueued.elapsed().as_secs_f64());
                        }
                        Ok(None) => {}
                        Err(e) => {
                            record_error(errors, first_error, &e);
                            done[s].store(true, Ordering::Release);
                        }
                    }
                    evals += session.evals() - before;
                    if done[s].load(Ordering::Acquire) {
                        let finished = sessions.remove(&s).expect("session exists");
                        eval_latency.merge(finished.latency());
                    }
                }
                // Sessions still open when the stream closes (shed tail):
                // collect their latencies too.
                for (_, session) in sessions {
                    eval_latency.merge(session.latency());
                }
                (eval_latency, decision_lag, evals)
            }));
        }

        // Feed time-major from the calling thread.
        let horizon = instances.iter().map(MultiSeries::len).max().unwrap_or(0);
        for t in 0..horizon {
            for (s, inst) in instances.iter().enumerate() {
                if t >= inst.len() || done[s].load(Ordering::Acquire) {
                    continue;
                }
                let row: Vec<f64> = (0..inst.vars()).map(|v| inst.at(v, t)).collect();
                let item = Item {
                    session: s,
                    row,
                    enqueued: Instant::now(),
                };
                if !queues[s % workers].push(item, config.backpressure) {
                    shed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        for queue in &queues {
            queue.close();
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("scheduler worker panicked"))
            .collect::<Vec<_>>()
    })
    .map_err(|p| EtscError::Panicked {
        message: etsc_core::panic_message(&p),
    })?;

    let wall_secs = started.elapsed().as_secs_f64();
    let mut eval_latency = LatencyHistogram::new();
    let mut decision_lag = LatencyHistogram::new();
    let mut evals = 0;
    for (el, dl, n_evals) in per_worker {
        eval_latency.merge(&el);
        decision_lag.merge(&dl);
        evals += n_evals;
    }
    let decisions: Vec<Option<EarlyPrediction>> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        })
        .collect();
    let dropped_decisions = decisions.iter().filter(|d| d.is_none()).count();
    Ok(ServeReport {
        decisions,
        shed_observations: shed.into_inner(),
        dropped_decisions,
        evals,
        eval_latency,
        decision_lag,
        wall_secs,
        errors: errors.into_inner(),
        first_error: first_error
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    })
}

fn record_error(errors: &AtomicUsize, first_error: &Mutex<Option<String>>, e: &EtscError) {
    errors.fetch_add(1, Ordering::Relaxed);
    first_error
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get_or_insert_with(|| e.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_core::{Ects, EctsConfig};
    use etsc_data::{Dataset, DatasetBuilder, Series};

    fn synthetic(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new("synthetic");
        for i in 0..n {
            let (class, base) = if i % 2 == 0 {
                ("up", 1.0)
            } else {
                ("down", -1.0)
            };
            let values: Vec<f64> = (0..16)
                .map(|t| base * (t as f64 + i as f64 * 0.1))
                .collect();
            b.push_named(MultiSeries::univariate(Series::new(values)), class);
        }
        b.build().unwrap()
    }

    fn fitted(data: &Dataset) -> Ects {
        let mut model = Ects::new(EctsConfig { support: 0 });
        model.fit(data).unwrap();
        model
    }

    #[test]
    fn block_mode_matches_offline_predictions() {
        let data = synthetic(24);
        let model = fitted(&data);
        let report = serve_sessions(
            &model,
            data.instances(),
            1,
            &SchedulerConfig {
                workers: 3,
                queue_capacity: 8,
                backpressure: Backpressure::Block,
            },
        )
        .unwrap();
        assert_eq!(report.shed_observations, 0);
        assert_eq!(report.dropped_decisions, 0);
        assert_eq!(report.errors, 0, "{:?}", report.first_error);
        assert!(report.evals > 0);
        assert_eq!(report.eval_latency.len(), report.evals);
        for (i, decision) in report.decisions.iter().enumerate() {
            let offline = model.predict_early(data.instance(i)).unwrap();
            assert_eq!(*decision, Some(offline), "session {i}");
        }
    }

    #[test]
    fn tiny_queue_with_shed_counts_drops() {
        let data = synthetic(30);
        let model = fitted(&data);
        let report = serve_sessions(
            &model,
            data.instances(),
            1,
            &SchedulerConfig {
                workers: 1,
                queue_capacity: 1,
                backpressure: Backpressure::Shed,
            },
        )
        .unwrap();
        // With a single one-slot queue and 30 interleaved streams, the
        // producer may outrun the worker; whatever happens, the books
        // must balance.
        assert_eq!(
            report.decisions.iter().filter(|d| d.is_none()).count(),
            report.dropped_decisions
        );
        assert_eq!(report.committed() + report.dropped_decisions, 30);
    }

    #[test]
    fn single_worker_is_deterministic_and_lossless() {
        let data = synthetic(10);
        let model = fitted(&data);
        let config = SchedulerConfig {
            workers: 1,
            queue_capacity: 4,
            backpressure: Backpressure::Block,
        };
        let a = serve_sessions(&model, data.instances(), 2, &config).unwrap();
        let b = serve_sessions(&model, data.instances(), 2, &config).unwrap();
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.evals, b.evals);
    }
}
