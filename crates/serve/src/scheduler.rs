//! Concurrent session scheduler: a fixed worker pool multiplexing many
//! streaming sessions.
//!
//! Sessions are partitioned across workers by session id, so each
//! session lives entirely on one thread (its [`StreamSession`] never
//! crosses threads). Observations flow through one bounded ingress
//! queue per worker; when a queue is full the configured
//! [`Backpressure`] policy decides whether the producer blocks
//! (lossless) or sheds the observation (lossy, counted). The pool
//! reuses the supervisor's pattern — `crossbeam::thread::scope` plus
//! shared slots — with a condvar-based queue in place of the job
//! counter, since streaming work arrives over time instead of being
//! enumerable up front.

use std::cell::Cell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use etsc_core::{EarlyClassifier, EarlyPrediction, EtscError};
use etsc_data::MultiSeries;
use etsc_eval::{FaultPlan, FaultSchedule};
use etsc_obs::{Histogram as LatencyHistogram, Obs};

use crate::admission::{CodelConfig, CodelController};
use crate::session::{DeadlineConfig, FallbackKind, StreamSession};

/// What to do with an observation when a worker's ingress queue holds
/// more work than the service is clearing. `Block` and `Shed` are the
/// original static policies; [`Backpressure::Adaptive`] replaces that
/// binary with sojourn-keyed admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the producer until the worker catches up: lossless, the
    /// replay's decisions exactly match the offline ones.
    Block,
    /// Drop the observation and count it: the stream keeps its pace at
    /// the cost of the session seeing a subsampled series (a session
    /// whose final point is shed may never commit — reported as a
    /// dropped decision).
    Shed,
    /// CoDel-style adaptive admission: dequeues feed measured queue
    /// sojourn into a [`CodelController`]; enqueues are refused at an
    /// accelerating cadence while sojourn stays above target, and a
    /// full queue still sheds (the capacity is the hard backstop).
    /// Lossy like `Shed`, but it only becomes lossy when latency —
    /// not an arbitrary queue depth — says the service is behind.
    Adaptive(CodelConfig),
}

/// Bounds on how hard the pool fights to keep a worker alive after a
/// panic.
#[derive(Debug, Clone, Copy)]
pub struct SupervisionConfig {
    /// Restarts granted to each worker before it gives up and fails its
    /// remaining sessions.
    pub max_restarts: usize,
    /// Backoff slept before the first restart; doubles per restart.
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff.
    pub backoff_cap: Duration,
}

impl Default for SupervisionConfig {
    fn default() -> SupervisionConfig {
        SupervisionConfig {
            max_restarts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(100),
        }
    }
}

impl SupervisionConfig {
    /// Backoff before restart number `restart` (1-based): base doubled
    /// per prior restart, capped.
    pub fn backoff(&self, restart: usize) -> Duration {
        let shift = restart.saturating_sub(1).min(16) as u32;
        self.backoff_base
            .saturating_mul(1u32 << shift)
            .min(self.backoff_cap)
    }
}

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Bounded capacity of each worker's ingress queue, in observations.
    pub queue_capacity: usize,
    /// Policy when a queue is full.
    pub backpressure: Backpressure,
    /// Per-evaluation decision deadline; `None` serves without one.
    pub deadline: Option<DeadlineConfig>,
    /// Worker restart budget and backoff.
    pub supervision: SupervisionConfig,
    /// Deterministic fault injection for chaos testing; `None` in
    /// production.
    pub faults: Option<FaultPlan>,
    /// Observability context: session-lifecycle events (enqueue,
    /// deadline breach, fallback, worker restart) and `serve_*`
    /// metrics are recorded here. Disabled by default.
    pub obs: Obs,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            workers: 4,
            queue_capacity: 1024,
            backpressure: Backpressure::Block,
            deadline: None,
            supervision: SupervisionConfig::default(),
            faults: None,
            obs: Obs::disabled(),
        }
    }
}

/// How one session ended — every session gets exactly one outcome, so
/// faults are attributable instead of silently folded into a count.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOutcome {
    /// The model committed a genuine early decision.
    Decided(EarlyPrediction),
    /// A deadline breach degraded the session to a fallback verdict.
    Fallback {
        /// The committed fallback prediction.
        prediction: EarlyPrediction,
        /// Which degraded path produced it.
        kind: FallbackKind,
    },
    /// The session died (model error, or its worker panicked mid-step).
    Failed(String),
    /// The session ended with no decision and no error (a shed final
    /// point, or a worker that gave up before its stream finished).
    Starved,
}

impl SessionOutcome {
    /// The committed prediction, genuine or fallback.
    pub fn prediction(&self) -> Option<EarlyPrediction> {
        match self {
            SessionOutcome::Decided(p) | SessionOutcome::Fallback { prediction: p, .. } => Some(*p),
            SessionOutcome::Failed(_) | SessionOutcome::Starved => None,
        }
    }
}

/// What a replay produced, per session and in aggregate.
#[derive(Debug)]
pub struct ServeReport {
    /// Final prediction per session; `None` when the session never
    /// committed (shed final point, session failure, or a worker that
    /// gave up).
    pub decisions: Vec<Option<EarlyPrediction>>,
    /// How each session ended, parallel to
    /// [`ServeReport::decisions`].
    pub outcomes: Vec<SessionOutcome>,
    /// Observations shed under backpressure.
    pub shed_observations: usize,
    /// Sessions that ended without a decision.
    pub dropped_decisions: usize,
    /// Total re-evaluations across all sessions.
    pub evals: usize,
    /// Wall-clock latency of each re-evaluation (seconds).
    pub eval_latency: LatencyHistogram,
    /// Per-decision lag from the triggering observation's enqueue to the
    /// committed prediction (seconds) — includes queueing delay, unlike
    /// [`ServeReport::eval_latency`].
    pub decision_lag: LatencyHistogram,
    /// Wall-clock duration of the whole replay (seconds).
    pub wall_secs: f64,
    /// Errors raised by sessions (first message kept).
    pub errors: usize,
    /// First session error, if any.
    pub first_error: Option<String>,
    /// Worker panics caught by the supervisor (injected or organic).
    pub worker_panics: usize,
    /// Worker loop restarts performed after those panics.
    pub worker_restarts: usize,
    /// Evaluations that exceeded the armed deadline (0 without one).
    pub deadline_breaches: usize,
    /// Sessions answered by a fallback verdict instead of a genuine
    /// decision.
    pub fallbacks: usize,
    /// The exact fault coordinates injected, when a [`FaultPlan`] was
    /// armed — lets callers attribute every degraded cell.
    pub fault_schedule: Option<FaultSchedule>,
}

impl ServeReport {
    /// Committed decisions (genuine or fallback).
    pub fn committed(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_some()).count()
    }

    /// Sessions that ended [`SessionOutcome::Starved`] — no decision
    /// and no attributable error.
    pub fn starved(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, SessionOutcome::Starved))
            .count()
    }

    /// Decision throughput over the replay wall-clock.
    pub fn decisions_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.committed() as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// One observation in flight to a worker. Finality is derived by the
/// session from its expected length, so only the payload and timing
/// travel.
struct Item {
    session: usize,
    row: Vec<f64>,
    enqueued: Instant,
}

/// Bounded MPSC ingress queue (std mutex + condvars; the vendored
/// crossbeam stub has no channels).
struct Ingress {
    state: Mutex<IngressState>,
    space: Condvar,
    ready: Condvar,
    capacity: usize,
}

struct IngressState {
    items: VecDeque<Item>,
    closed: bool,
    /// Lazily armed by the first [`Backpressure::Adaptive`] push;
    /// dequeues feed it sojourn, enqueues consult it.
    codel: Option<CodelController>,
}

impl Ingress {
    fn new(capacity: usize) -> Ingress {
        Ingress {
            state: Mutex::new(IngressState {
                items: VecDeque::new(),
                closed: false,
                codel: None,
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`; with `Block` waits for space, with `Shed`
    /// returns `false` when full without enqueueing, and with
    /// `Adaptive` additionally sheds whenever the CoDel controller —
    /// fed by measured dequeue sojourns — says the queue is standing.
    fn push(&self, item: Item, policy: Backpressure) -> bool {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Backpressure::Adaptive(cfg) = policy {
            let codel = state.codel.get_or_insert_with(|| CodelController::new(cfg));
            if !codel.admit(Instant::now()) {
                return false;
            }
        }
        while state.items.len() >= self.capacity {
            match policy {
                Backpressure::Shed | Backpressure::Adaptive(_) => return false,
                Backpressure::Block => {
                    state = self
                        .space
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        true
    }

    /// Dequeues the next item, blocking; `None` once closed and drained.
    fn pop(&self) -> Option<Item> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(item) = state.items.pop_front() {
                if let Some(codel) = state.codel.as_mut() {
                    let now = Instant::now();
                    codel.record_sojourn(now.saturating_duration_since(item.enqueued), now);
                }
                drop(state);
                self.space.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .closed = true;
        self.ready.notify_all();
    }
}

/// A session's result slot while the replay runs; resolved into a
/// [`SessionOutcome`] once the pool drains.
enum SlotState {
    Pending,
    Decided(EarlyPrediction, Option<FallbackKind>),
    Failed(String),
}

/// Per-worker tallies returned through the scope join.
struct WorkerStats {
    eval_latency: LatencyHistogram,
    decision_lag: LatencyHistogram,
    evals: usize,
    panics: usize,
    restarts: usize,
}

fn set_slot(slot: &Mutex<SlotState>, state: SlotState) {
    *slot
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = state;
}

/// Replays `instances` as concurrent streaming sessions against one
/// shared fitted model and reports decisions plus measured latencies.
///
/// `batch` is the re-evaluation granularity in points (the algorithm's
/// `decision_batch`). Feeding is time-major: observation `t` of every
/// session is enqueued before observation `t + 1` of any session, the
/// interleaving a real multiplexed ingress would produce.
///
/// Workers are supervised: a panic (injected or organic) fails only the
/// session whose step was in flight; the worker loop restarts — with
/// exponential backoff, up to the configured restart budget — and the
/// sibling sessions it hosts continue from their accumulated state.
/// A worker out of restarts drains its queue, failing its remaining
/// sessions, so a [`Backpressure::Block`] producer can never deadlock
/// against a dead consumer.
///
/// # Errors
/// Infrastructure failures only. Per-session model errors, panics, and
/// degraded decisions are reported in the [`ServeReport`].
pub fn serve_sessions(
    model: &(dyn EarlyClassifier + Sync),
    instances: &[MultiSeries],
    batch: usize,
    config: &SchedulerConfig,
) -> Result<ServeReport, EtscError> {
    let n = instances.len();
    let workers = config.workers.max(1).min(n.max(1));
    let obs = &config.obs;
    let mut serve_span = obs.tracer.span("serve");
    serve_span.attr("sessions", &n.to_string());
    serve_span.attr("workers", &workers.to_string());
    let serve_id = serve_span.id();
    obs.metrics.gauge("serve_workers").set(workers as f64);
    obs.metrics.counter("serve_sessions_total").add(n as u64);
    let enqueued_counter = obs.metrics.counter("serve_enqueued_total");
    let shed_counter = obs.metrics.counter("serve_shed_total");
    // Per-decision counters are resolved once here: a registry lookup
    // (lock + name clone) per decision would dominate tracer overhead.
    let fallbacks_counter = obs.metrics.counter("serve_fallbacks_total");
    let decisions_counter = obs.metrics.counter("serve_decisions_total");
    let breaches_counter = obs.metrics.counter("serve_deadline_breaches_total");
    let lens: Vec<usize> = instances.iter().map(MultiSeries::len).collect();
    let schedule = config.faults.as_ref().map(|plan| plan.schedule(&lens));
    let queues: Vec<Ingress> = (0..workers)
        .map(|_| Ingress::new(config.queue_capacity))
        .collect();
    let slots: Vec<Mutex<SlotState>> = (0..n).map(|_| Mutex::new(SlotState::Pending)).collect();
    let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let shed = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let first_error: Mutex<Option<String>> = Mutex::new(None);
    let started = Instant::now();

    let per_worker = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for queue in &queues {
            let slots = &slots;
            let done = &done;
            let errors = &errors;
            let first_error = &first_error;
            let schedule = schedule.as_ref();
            let deadline = config.deadline;
            let supervision = config.supervision;
            let fallbacks_counter = fallbacks_counter.clone();
            let decisions_counter = decisions_counter.clone();
            let breaches_counter = breaches_counter.clone();
            handles.push(scope.spawn(move |_| {
                // Session state lives OUTSIDE the unwind boundary: a
                // panic poisons only the in-flight session, and the
                // restarted loop resumes the siblings where they were.
                let mut sessions: HashMap<usize, StreamSession<'_>> = HashMap::new();
                let mut stats = WorkerStats {
                    eval_latency: LatencyHistogram::new(),
                    decision_lag: LatencyHistogram::new(),
                    evals: 0,
                    panics: 0,
                    restarts: 0,
                };
                let in_flight = Cell::new(None::<usize>);
                loop {
                    let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        while let Some(item) = queue.pop() {
                            let s = item.session;
                            if done[s].load(Ordering::Acquire) {
                                continue;
                            }
                            in_flight.set(Some(s));
                            let session = match sessions.entry(s) {
                                std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
                                std::collections::hash_map::Entry::Vacant(v) => {
                                    let inst = &instances[s];
                                    match StreamSession::new(model, inst.vars(), inst.len(), batch)
                                    {
                                        Ok(mut session) => {
                                            session.set_deadline(deadline);
                                            v.insert(session)
                                        }
                                        Err(e) => {
                                            record_error(errors, first_error, &e);
                                            set_slot(&slots[s], SlotState::Failed(e.to_string()));
                                            done[s].store(true, Ordering::Release);
                                            in_flight.set(None);
                                            continue;
                                        }
                                    }
                                }
                            };
                            let step = session.observed() + 1;
                            if let Some(sch) = schedule {
                                if sch.panics_at(s, step) {
                                    panic!(
                                        "injected fault: worker panic serving session {s} at step {step}"
                                    );
                                }
                            }
                            let delay = schedule.and_then(|sch| sch.delay_at(s, step));
                            let before = session.evals();
                            let breaches_before = session.latency().over_deadline();
                            match session.push_with_delay(&item.row, delay) {
                                Ok(Some(prediction)) => {
                                    if let Some(kind) = session.fallback() {
                                        fallbacks_counter.inc();
                                        obs.tracer.event_under(
                                            "session.fallback",
                                            serve_id,
                                            &[
                                                ("session", &s.to_string()),
                                                ("kind", &format!("{kind:?}")),
                                            ],
                                        );
                                    }
                                    decisions_counter.inc();
                                    set_slot(
                                        &slots[s],
                                        SlotState::Decided(prediction, session.fallback()),
                                    );
                                    done[s].store(true, Ordering::Release);
                                    stats
                                        .decision_lag
                                        .record(item.enqueued.elapsed().as_secs_f64());
                                }
                                Ok(None) => {}
                                Err(e) => {
                                    record_error(errors, first_error, &e);
                                    set_slot(&slots[s], SlotState::Failed(e.to_string()));
                                    done[s].store(true, Ordering::Release);
                                }
                            }
                            stats.evals += session.evals() - before;
                            if session.latency().over_deadline() > breaches_before {
                                breaches_counter.inc();
                                obs.tracer.event_under(
                                    "session.deadline_breach",
                                    serve_id,
                                    &[("session", &s.to_string())],
                                );
                            }
                            if done[s].load(Ordering::Acquire) {
                                if let Some(finished) = sessions.remove(&s) {
                                    stats.eval_latency.merge(finished.latency());
                                }
                            }
                            in_flight.set(None);
                        }
                    }));
                    match run {
                        Ok(()) => break,
                        Err(payload) => {
                            stats.panics += 1;
                            obs.metrics.counter("serve_worker_panics_total").inc();
                            let message = etsc_core::panic_message(&payload);
                            obs.tracer.event_under(
                                "worker.panic",
                                serve_id,
                                &[("message", &message)],
                            );
                            if let Some(s) = in_flight.take() {
                                let e = EtscError::Panicked {
                                    message: format!("session {s}: {message}"),
                                };
                                record_error(errors, first_error, &e);
                                set_slot(&slots[s], SlotState::Failed(e.to_string()));
                                done[s].store(true, Ordering::Release);
                                if let Some(poisoned) = sessions.remove(&s) {
                                    stats.eval_latency.merge(poisoned.latency());
                                }
                            }
                            if stats.restarts >= supervision.max_restarts {
                                // Out of budget: fail this worker's open
                                // sessions and keep draining the queue so
                                // a blocked producer can finish feeding.
                                let reason = format!(
                                    "worker gave up after {} restarts: {message}",
                                    stats.restarts
                                );
                                for (s, session) in sessions.drain() {
                                    set_slot(&slots[s], SlotState::Failed(reason.clone()));
                                    done[s].store(true, Ordering::Release);
                                    stats.eval_latency.merge(session.latency());
                                }
                                while let Some(item) = queue.pop() {
                                    let s = item.session;
                                    if !done[s].swap(true, Ordering::AcqRel) {
                                        set_slot(&slots[s], SlotState::Failed(reason.clone()));
                                    }
                                }
                                break;
                            }
                            stats.restarts += 1;
                            obs.metrics.counter("serve_worker_restarts_total").inc();
                            obs.tracer.event_under(
                                "worker.restart",
                                serve_id,
                                &[("restart", &stats.restarts.to_string())],
                            );
                            std::thread::sleep(supervision.backoff(stats.restarts));
                        }
                    }
                }
                // Sessions still open when the stream closes (shed tail):
                // collect their latencies too.
                for (_, session) in sessions {
                    stats.eval_latency.merge(session.latency());
                }
                stats
            }));
        }

        // Feed time-major from the calling thread. Every session's
        // first observation goes out at t = 0, so admission is one
        // summary event, not one per session: a per-session event
        // (allocations + ring lock) measurably slows the producer,
        // which paces the whole replay. Per-session volume lives in
        // the serve_* counters instead.
        obs.tracer.event_under(
            "sessions.enqueue",
            serve_id,
            &[("sessions", &n.to_string())],
        );
        let horizon = lens.iter().copied().max().unwrap_or(0);
        // The feed loop runs on this one thread, so the stream counters
        // accumulate locally and flush once after the loop: an atomic
        // inc per observation (tens of thousands per replay) is the
        // single largest tracer cost otherwise.
        let mut enqueued_n = 0u64;
        let mut shed_n = 0u64;
        for t in 0..horizon {
            for (s, inst) in instances.iter().enumerate() {
                if t >= inst.len() || done[s].load(Ordering::Acquire) {
                    continue;
                }
                let mut row: Vec<f64> = (0..inst.vars()).map(|v| inst.at(v, t)).collect();
                if let Some(sch) = schedule.as_ref() {
                    if sch.nan_at(s, t + 1) {
                        // A poisoned sensor reading: every variable NaN.
                        row.fill(f64::NAN);
                    }
                }
                let item = Item {
                    session: s,
                    row,
                    enqueued: Instant::now(),
                };
                if queues[s % workers].push(item, config.backpressure) {
                    enqueued_n += 1;
                } else {
                    shed.fetch_add(1, Ordering::Relaxed);
                    shed_n += 1;
                }
            }
        }
        enqueued_counter.add(enqueued_n);
        shed_counter.add(shed_n);
        for queue in &queues {
            queue.close();
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(stats) => stats,
                // The supervisor catches worker panics in-loop; reaching
                // here means the panic escaped between loop iterations
                // (e.g. inside the supervisor itself). Surface it as a
                // dead worker instead of aborting the pool.
                Err(payload) => {
                    let e = EtscError::Panicked {
                        message: format!(
                            "scheduler worker died: {}",
                            etsc_core::panic_message(&payload)
                        ),
                    };
                    record_error(&errors, &first_error, &e);
                    WorkerStats {
                        eval_latency: LatencyHistogram::new(),
                        decision_lag: LatencyHistogram::new(),
                        evals: 0,
                        panics: 1,
                        restarts: 0,
                    }
                }
            })
            .collect::<Vec<_>>()
    })
    .map_err(|p| EtscError::Panicked {
        message: etsc_core::panic_message(&p),
    })?;

    let wall_secs = started.elapsed().as_secs_f64();
    let mut eval_latency = LatencyHistogram::new();
    let mut decision_lag = LatencyHistogram::new();
    let mut evals = 0;
    let mut worker_panics = 0;
    let mut worker_restarts = 0;
    for stats in per_worker {
        eval_latency.merge(&stats.eval_latency);
        decision_lag.merge(&stats.decision_lag);
        evals += stats.evals;
        worker_panics += stats.panics;
        worker_restarts += stats.restarts;
    }
    obs.metrics
        .histogram("serve_eval_latency_secs")
        .merge_from(&eval_latency);
    obs.metrics
        .histogram("serve_decision_lag_secs")
        .merge_from(&decision_lag);
    obs.metrics.counter("serve_evals_total").add(evals as u64);
    let outcomes: Vec<SessionOutcome> = slots
        .into_iter()
        .map(|slot| {
            match slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
            {
                SlotState::Pending => SessionOutcome::Starved,
                SlotState::Decided(prediction, None) => SessionOutcome::Decided(prediction),
                SlotState::Decided(prediction, Some(kind)) => {
                    SessionOutcome::Fallback { prediction, kind }
                }
                SlotState::Failed(message) => SessionOutcome::Failed(message),
            }
        })
        .collect();
    let decisions: Vec<Option<EarlyPrediction>> =
        outcomes.iter().map(SessionOutcome::prediction).collect();
    let dropped_decisions = decisions.iter().filter(|d| d.is_none()).count();
    let fallbacks = outcomes
        .iter()
        .filter(|o| matches!(o, SessionOutcome::Fallback { .. }))
        .count();
    Ok(ServeReport {
        decisions,
        outcomes,
        shed_observations: shed.into_inner(),
        dropped_decisions,
        evals,
        deadline_breaches: eval_latency.over_deadline(),
        eval_latency,
        decision_lag,
        wall_secs,
        errors: errors.into_inner(),
        first_error: first_error
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
        worker_panics,
        worker_restarts,
        fallbacks,
        fault_schedule: schedule,
    })
}

fn record_error(errors: &AtomicUsize, first_error: &Mutex<Option<String>>, e: &EtscError) {
    errors.fetch_add(1, Ordering::Relaxed);
    first_error
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get_or_insert_with(|| e.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_core::{Ects, EctsConfig};
    use etsc_data::{Dataset, DatasetBuilder, Series};

    fn synthetic(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new("synthetic");
        for i in 0..n {
            let (class, base) = if i % 2 == 0 {
                ("up", 1.0)
            } else {
                ("down", -1.0)
            };
            let values: Vec<f64> = (0..16)
                .map(|t| base * (t as f64 + i as f64 * 0.1))
                .collect();
            b.push_named(MultiSeries::univariate(Series::new(values)), class);
        }
        b.build().unwrap()
    }

    fn fitted(data: &Dataset) -> Ects {
        let mut model = Ects::new(EctsConfig { support: 0 });
        model.fit(data).unwrap();
        model
    }

    #[test]
    fn block_mode_matches_offline_predictions() {
        let data = synthetic(24);
        let model = fitted(&data);
        let report = serve_sessions(
            &model,
            data.instances(),
            1,
            &SchedulerConfig {
                workers: 3,
                queue_capacity: 8,
                backpressure: Backpressure::Block,
                ..SchedulerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.shed_observations, 0);
        assert_eq!(report.dropped_decisions, 0);
        assert_eq!(report.errors, 0, "{:?}", report.first_error);
        assert_eq!(report.worker_panics, 0);
        assert_eq!(report.fallbacks, 0);
        assert!(report.evals > 0);
        assert_eq!(report.eval_latency.len(), report.evals);
        for (i, decision) in report.decisions.iter().enumerate() {
            let offline = model.predict_early(data.instance(i)).unwrap();
            assert_eq!(*decision, Some(offline), "session {i}");
        }
    }

    #[test]
    fn tiny_queue_with_shed_counts_drops() {
        let data = synthetic(30);
        let model = fitted(&data);
        let report = serve_sessions(
            &model,
            data.instances(),
            1,
            &SchedulerConfig {
                workers: 1,
                queue_capacity: 1,
                backpressure: Backpressure::Shed,
                ..SchedulerConfig::default()
            },
        )
        .unwrap();
        // With a single one-slot queue and 30 interleaved streams, the
        // producer may outrun the worker; whatever happens, the books
        // must balance.
        assert_eq!(
            report.decisions.iter().filter(|d| d.is_none()).count(),
            report.dropped_decisions
        );
        assert_eq!(report.committed() + report.dropped_decisions, 30);
    }

    #[test]
    fn adaptive_admission_sheds_under_pressure_and_stays_quiet_without() {
        let data = synthetic(24);
        let model = fitted(&data);
        let adaptive = Backpressure::Adaptive(CodelConfig {
            target: Duration::from_millis(2),
            interval: Duration::from_millis(10),
        });
        // Unloaded: a fast model with ample workers keeps sojourn
        // under target, so adaptive admission behaves like Block that
        // never has to block — lossless.
        let calm = serve_sessions(
            &model,
            data.instances(),
            1,
            &SchedulerConfig {
                workers: 3,
                queue_capacity: 1024,
                backpressure: adaptive,
                ..SchedulerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(calm.errors, 0, "{:?}", calm.first_error);
        assert_eq!(calm.committed() + calm.dropped_decisions, 24);
        // Overloaded: a 5ms injected delay per evaluation on a single
        // worker makes sojourn stand far above the 2ms target, so the
        // controller must start refusing enqueues — and the books
        // still balance exactly.
        let plan = FaultPlan::parse("seed=9,delay-rate=1.0,delay-ms=5").unwrap();
        let hot = serve_sessions(
            &model,
            data.instances(),
            1,
            &SchedulerConfig {
                workers: 1,
                queue_capacity: 64,
                backpressure: adaptive,
                faults: Some(plan),
                ..SchedulerConfig::default()
            },
        )
        .unwrap();
        assert!(
            hot.shed_observations > 0,
            "sustained overload must trigger adaptive shedding"
        );
        assert_eq!(hot.committed() + hot.dropped_decisions, 24);
    }

    #[test]
    fn single_worker_is_deterministic_and_lossless() {
        let data = synthetic(10);
        let model = fitted(&data);
        let config = SchedulerConfig {
            workers: 1,
            queue_capacity: 4,
            backpressure: Backpressure::Block,
            ..SchedulerConfig::default()
        };
        let a = serve_sessions(&model, data.instances(), 2, &config).unwrap();
        let b = serve_sessions(&model, data.instances(), 2, &config).unwrap();
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.evals, b.evals);
    }

    #[test]
    fn injected_panic_fails_one_session_and_spares_siblings() {
        let data = synthetic(12);
        let model = fitted(&data);
        let plan = FaultPlan::parse("seed=7,panics=1").unwrap();
        let report = serve_sessions(
            &model,
            data.instances(),
            1,
            &SchedulerConfig {
                workers: 2,
                queue_capacity: 32,
                faults: Some(plan),
                ..SchedulerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.worker_panics, 1);
        assert_eq!(report.worker_restarts, 1);
        assert_eq!(report.starved(), 0);
        let failed: Vec<usize> = report
            .outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, SessionOutcome::Failed(_)))
            .map(|(s, _)| s)
            .collect();
        assert_eq!(failed.len(), 1, "exactly the poisoned session fails");
        let schedule = report.fault_schedule.as_ref().unwrap();
        assert!(schedule.touches(failed[0]), "failure is attributable");
        // Every untouched session still matches the offline prediction.
        for (s, outcome) in report.outcomes.iter().enumerate() {
            if schedule.touches(s) {
                continue;
            }
            let offline = model.predict_early(data.instance(s)).unwrap();
            assert_eq!(*outcome, SessionOutcome::Decided(offline), "session {s}");
        }
    }

    #[test]
    fn worker_out_of_restarts_fails_its_sessions_without_deadlock() {
        let data = synthetic(8);
        let model = fitted(&data);
        // Four injected panics against a zero-restart budget on a
        // single worker: it must give up, drain, and never deadlock the
        // blocking producer.
        let plan = FaultPlan::parse("seed=3,panics=4").unwrap();
        let report = serve_sessions(
            &model,
            data.instances(),
            1,
            &SchedulerConfig {
                workers: 1,
                queue_capacity: 2,
                supervision: SupervisionConfig {
                    max_restarts: 0,
                    ..SupervisionConfig::default()
                },
                faults: Some(plan),
                ..SchedulerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.worker_panics, 1, "gave up after the first panic");
        assert_eq!(report.worker_restarts, 0);
        assert_eq!(report.starved(), 0, "every session has an outcome");
        assert_eq!(report.decisions.len(), 8);
        assert!(report
            .outcomes
            .iter()
            .any(|o| matches!(o, SessionOutcome::Failed(_))));
    }

    #[test]
    fn deadline_with_injected_delay_degrades_to_prior_class() {
        let data = synthetic(10);
        let model = fitted(&data);
        // Delay every step by 20ms against a 1ms deadline: every
        // session that evaluates before its natural trigger degrades.
        let plan = FaultPlan::parse("seed=5,delay-rate=1.0,delay-ms=20").unwrap();
        let report = serve_sessions(
            &model,
            data.instances(),
            1,
            &SchedulerConfig {
                workers: 2,
                queue_capacity: 32,
                deadline: Some(DeadlineConfig {
                    deadline: Duration::from_millis(1),
                    policy: crate::session::FallbackPolicy::PriorClass,
                    prior_label: 0,
                }),
                faults: Some(plan),
                ..SchedulerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.starved(), 0);
        assert!(report.deadline_breaches > 0);
        assert!(report.fallbacks > 0);
        for outcome in &report.outcomes {
            if let SessionOutcome::Fallback { prediction, kind } = outcome {
                assert_eq!(*kind, FallbackKind::DeadlinePrior);
                assert_eq!(prediction.label, 0);
            }
        }
    }

    #[test]
    fn scheduler_records_lifecycle_events_and_metrics() {
        let data = synthetic(12);
        let model = fitted(&data);
        let plan = FaultPlan::parse("seed=7,panics=1").unwrap();
        let obs = Obs::enabled();
        let report = serve_sessions(
            &model,
            data.instances(),
            1,
            &SchedulerConfig {
                workers: 2,
                queue_capacity: 32,
                faults: Some(plan),
                obs: obs.clone(),
                ..SchedulerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.worker_panics, 1);
        let tree = etsc_obs::TraceTree::build(&obs.tracer.records()).unwrap();
        let roots = tree.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(tree.span(roots[0]).unwrap().name, "serve");
        let enqueue = tree.events_named("sessions.enqueue");
        assert_eq!(enqueue.len(), 1);
        assert_eq!(
            enqueue[0].attrs,
            [("sessions".to_string(), "12".to_string())]
        );
        assert_eq!(tree.events_named("worker.panic").len(), 1);
        assert_eq!(tree.events_named("worker.restart").len(), 1);
        for event in tree.events() {
            assert_eq!(event.span, Some(roots[0]), "events join the serve span");
        }
        let counters = obs.metrics.snapshot_counters();
        assert_eq!(counters["serve_sessions_total"], 12);
        assert_eq!(counters["serve_worker_panics_total"], 1);
        assert_eq!(counters["serve_worker_restarts_total"], 1);
        assert_eq!(
            counters["serve_decisions_total"] as usize,
            report.committed()
        );
        assert_eq!(counters["serve_evals_total"] as usize, report.evals);
        assert_eq!(
            obs.metrics
                .histogram("serve_eval_latency_secs")
                .snapshot()
                .len(),
            report.eval_latency.len()
        );
        let rendered = obs.metrics.render_prometheus();
        etsc_obs::validate_prometheus(&rendered).unwrap();
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let s = SupervisionConfig {
            max_restarts: 10,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(8),
        };
        assert_eq!(s.backoff(1), Duration::from_millis(1));
        assert_eq!(s.backoff(2), Duration::from_millis(2));
        assert_eq!(s.backoff(3), Duration::from_millis(4));
        assert_eq!(s.backoff(4), Duration::from_millis(8));
        assert_eq!(s.backoff(9), Duration::from_millis(8));
    }
}
