//! Per-series streaming sessions.
//!
//! A [`StreamSession`] owns the server-side state of one incoming time
//! series: the observations buffered so far, the algorithm's
//! [`StreamState`], and the latency of every re-evaluation. Observations
//! arrive one multivariate row at a time; the session re-evaluates the
//! growing prefix either per point or per prefix batch — ECEC and
//! TEASER only re-evaluate once a whole `L/N` batch has arrived, the
//! same batch credit [`etsc_eval::online`] grants them in Figure 13.

use std::time::Instant;

use etsc_core::{EarlyClassifier, EarlyPrediction, EtscError, StreamState};
use etsc_data::MultiSeries;
use etsc_eval::histogram::LatencyHistogram;

/// Streaming state for one time series being classified early.
pub struct StreamSession<'m> {
    stream: Box<dyn StreamState + 'm>,
    /// Buffered observations, one inner vector per variable.
    values: Vec<Vec<f64>>,
    expected_len: usize,
    batch: usize,
    decided: Option<EarlyPrediction>,
    evals: usize,
    latency: LatencyHistogram,
}

impl<'m> StreamSession<'m> {
    /// Opens a session against a fitted model.
    ///
    /// `vars` is the number of variables per observation, `expected_len`
    /// the full series length (so the final observation can force a
    /// decision), and `batch` the re-evaluation granularity in points
    /// (1 = per point; [`crate::store::ModelMeta::algo`]'s
    /// `decision_batch` for ECEC/TEASER).
    ///
    /// # Errors
    /// [`EtscError::NotFitted`] when the model has not been trained.
    pub fn new(
        model: &'m dyn EarlyClassifier,
        vars: usize,
        expected_len: usize,
        batch: usize,
    ) -> Result<StreamSession<'m>, EtscError> {
        Ok(StreamSession {
            stream: model.start_stream()?,
            values: vec![Vec::with_capacity(expected_len); vars.max(1)],
            expected_len: expected_len.max(1),
            batch: batch.max(1),
            decided: None,
            evals: 0,
            latency: LatencyHistogram::new(),
        })
    }

    /// Points observed so far.
    pub fn observed(&self) -> usize {
        self.values[0].len()
    }

    /// The committed prediction, once the trigger has fired.
    pub fn decision(&self) -> Option<EarlyPrediction> {
        self.decided
    }

    /// `true` once a prediction has been committed; later observations
    /// are ignored.
    pub fn is_done(&self) -> bool {
        self.decided.is_some()
    }

    /// Number of re-evaluations performed.
    pub fn evals(&self) -> usize {
        self.evals
    }

    /// Per-re-evaluation decision latencies (seconds).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Feeds one observation (one value per variable) and re-evaluates
    /// when the batch boundary — or the final point — is reached.
    ///
    /// Returns the prediction when this observation triggered the
    /// commit; afterwards the session is done and further observations
    /// are no-ops.
    ///
    /// # Errors
    /// [`EtscError::IncompatibleInstance`] on a wrong-arity observation;
    /// otherwise whatever the algorithm's `observe` propagates.
    pub fn push(&mut self, observation: &[f64]) -> Result<Option<EarlyPrediction>, EtscError> {
        if self.decided.is_some() {
            return Ok(None);
        }
        if observation.len() != self.values.len() {
            return Err(EtscError::IncompatibleInstance(format!(
                "observation has {} variables, session expects {}",
                observation.len(),
                self.values.len()
            )));
        }
        for (var, &x) in self.values.iter_mut().zip(observation) {
            var.push(x);
        }
        let t = self.values[0].len();
        let is_final = t >= self.expected_len;
        if !t.is_multiple_of(self.batch) && !is_final {
            return Ok(None);
        }
        let prefix = MultiSeries::from_rows(self.values.clone()).map_err(EtscError::Data)?;
        let started = Instant::now();
        let label = self.stream.observe(&prefix, is_final)?;
        self.latency.record(started.elapsed().as_secs_f64());
        self.evals += 1;
        if let Some(label) = label {
            let prediction = EarlyPrediction {
                label,
                prefix_len: t,
            };
            self.decided = Some(prediction);
            return Ok(Some(prediction));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{Dataset, DatasetBuilder, Series};
    use etsc_eval::experiment::{AlgoSpec, RunConfig};

    fn synthetic() -> Dataset {
        let mut b = DatasetBuilder::new("synthetic");
        for i in 0..12 {
            let (class, base) = if i % 2 == 0 {
                ("up", 1.0)
            } else {
                ("down", -1.0)
            };
            let values: Vec<f64> = (0..20)
                .map(|t| base * (t as f64 + i as f64 * 0.1))
                .collect();
            b.push_named(MultiSeries::univariate(Series::new(values)), class);
        }
        b.build().unwrap()
    }

    #[test]
    fn session_matches_predict_early() {
        let data = synthetic();
        let mut model = AlgoSpec::Ects.build(&data, &RunConfig::fast());
        model.fit(&data).unwrap();
        for inst in data.instances() {
            let offline = model.predict_early(inst).unwrap();
            let mut session = StreamSession::new(&*model, inst.vars(), inst.len(), 1).unwrap();
            let mut live = None;
            for t in 0..inst.len() {
                let row: Vec<f64> = (0..inst.vars()).map(|v| inst.at(v, t)).collect();
                if let Some(p) = session.push(&row).unwrap() {
                    live = Some(p);
                    break;
                }
            }
            assert_eq!(live, Some(offline));
            assert!(session.is_done());
            assert!(session.evals() > 0);
            assert_eq!(session.latency().len(), session.evals());
        }
    }

    #[test]
    fn batched_session_evaluates_fewer_times() {
        let data = synthetic();
        let mut model = AlgoSpec::Ects.build(&data, &RunConfig::fast());
        model.fit(&data).unwrap();
        let inst = data.instance(0);
        let run = |batch: usize| {
            let mut s = StreamSession::new(&*model, 1, inst.len(), batch).unwrap();
            for t in 0..inst.len() {
                if s.push(&[inst.at(0, t)]).unwrap().is_some() {
                    break;
                }
            }
            (s.evals(), s.decision())
        };
        let (evals_per_point, d1) = run(1);
        let (evals_batched, d2) = run(5);
        assert!(evals_batched <= evals_per_point);
        assert!(d1.is_some() && d2.is_some());
        // A batched session can only commit on batch boundaries (or the
        // final point).
        let p = d2.unwrap().prefix_len;
        assert!(p % 5 == 0 || p == inst.len(), "prefix_len {p}");
    }

    #[test]
    fn wrong_arity_is_rejected_and_done_sessions_ignore_input() {
        let data = synthetic();
        let mut model = AlgoSpec::Ects.build(&data, &RunConfig::fast());
        model.fit(&data).unwrap();
        let inst = data.instance(0);
        let mut s = StreamSession::new(&*model, 1, inst.len(), 1).unwrap();
        assert!(s.push(&[1.0, 2.0]).is_err());
        for t in 0..inst.len() {
            s.push(&[inst.at(0, t)]).unwrap();
        }
        assert!(s.is_done());
        let evals = s.evals();
        assert_eq!(s.push(&[0.0]).unwrap(), None);
        assert_eq!(s.evals(), evals);
    }
}
