//! Per-series streaming sessions.
//!
//! A [`StreamSession`] owns the server-side state of one incoming time
//! series: the observations buffered so far, the algorithm's
//! [`StreamState`], and the latency of every re-evaluation. Observations
//! arrive one multivariate row at a time; the session re-evaluates the
//! growing prefix either per point or per prefix batch — ECEC and
//! TEASER only re-evaluate once a whole `L/N` batch has arrived, the
//! same batch credit [`etsc_eval::online`] grants them in Figure 13.

use std::time::{Duration, Instant};

use etsc_core::{EarlyClassifier, EarlyPrediction, EtscError, StreamState};
use etsc_data::MultiSeries;
use etsc_obs::Histogram as LatencyHistogram;

/// What a session does when a re-evaluation misses its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Count the breach but keep waiting for the algorithm's own
    /// trigger — latency-tolerant consumers accept a late result.
    Wait,
    /// Commit the training prior class immediately: the cheapest
    /// always-available baseline verdict. A genuine label the breaching
    /// evaluation produces late is discarded — the consumer was already
    /// answered when the budget expired.
    PriorClass,
    /// Force the algorithm to decide on the data seen so far (its
    /// current best — the "last confident prediction" it would commit
    /// if the stream ended now); falls back to the prior class when
    /// even a forced evaluation yields nothing.
    DecideNow,
}

/// Per-evaluation decision deadline and the degraded-mode behaviour
/// applied on a breach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineConfig {
    /// Budget for one re-evaluation.
    pub deadline: Duration,
    /// What to do when the budget is exceeded.
    pub policy: FallbackPolicy,
    /// Dense label committed by [`FallbackPolicy::PriorClass`] (and by
    /// [`FallbackPolicy::DecideNow`] when the forced evaluation stays
    /// undecided). [`crate::replay_dataset`] fills this with the stored
    /// model's training prior.
    pub prior_label: usize,
}

/// Why a committed decision was a degraded-mode fallback rather than
/// the algorithm's own trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackKind {
    /// Deadline breach answered with the training prior class.
    DeadlinePrior,
    /// Deadline breach answered by forcing the algorithm to decide on
    /// the observed prefix.
    DeadlineForced,
    /// Graceful drain answered with the training prior class because
    /// the forced evaluation yielded nothing (or nothing was observed).
    DrainPrior,
    /// Graceful drain answered by forcing the algorithm to decide on
    /// the observed prefix.
    DrainForced,
}

/// Streaming state for one time series being classified early.
pub struct StreamSession<'m> {
    stream: Box<dyn StreamState + 'm>,
    /// Buffered observations, one inner vector per variable.
    values: Vec<Vec<f64>>,
    expected_len: usize,
    batch: usize,
    decided: Option<EarlyPrediction>,
    evals: usize,
    latency: LatencyHistogram,
    deadline: Option<DeadlineConfig>,
    fallback: Option<FallbackKind>,
    deadline_breaches: usize,
    truth: Option<usize>,
}

impl<'m> StreamSession<'m> {
    /// Opens a session against a fitted model.
    ///
    /// `vars` is the number of variables per observation, `expected_len`
    /// the full series length (so the final observation can force a
    /// decision), and `batch` the re-evaluation granularity in points
    /// (1 = per point; [`crate::store::ModelMeta::algo`]'s
    /// `decision_batch` for ECEC/TEASER).
    ///
    /// # Errors
    /// [`EtscError::NotFitted`] when the model has not been trained.
    pub fn new(
        model: &'m dyn EarlyClassifier,
        vars: usize,
        expected_len: usize,
        batch: usize,
    ) -> Result<StreamSession<'m>, EtscError> {
        Ok(StreamSession {
            stream: model.start_stream()?,
            values: vec![Vec::with_capacity(expected_len); vars.max(1)],
            expected_len: expected_len.max(1),
            batch: batch.max(1),
            decided: None,
            evals: 0,
            latency: LatencyHistogram::new(),
            deadline: None,
            fallback: None,
            deadline_breaches: 0,
            truth: None,
        })
    }

    /// Arms (or disarms) the per-evaluation decision deadline. Breaches
    /// are counted in the session's latency histogram and answered
    /// according to the configured [`FallbackPolicy`].
    pub fn set_deadline(&mut self, deadline: Option<DeadlineConfig>) {
        self.deadline = deadline;
    }

    /// Why the committed decision was a fallback, when it was one.
    pub fn fallback(&self) -> Option<FallbackKind> {
        self.fallback
    }

    /// Evaluations that exceeded the armed deadline.
    pub fn deadline_breaches(&self) -> usize {
        self.deadline_breaches
    }

    /// Points observed so far.
    pub fn observed(&self) -> usize {
        self.values[0].len()
    }

    /// The committed prediction, once the trigger has fired.
    pub fn decision(&self) -> Option<EarlyPrediction> {
        self.decided
    }

    /// `true` once a prediction has been committed; later observations
    /// are ignored.
    pub fn is_done(&self) -> bool {
        self.decided.is_some()
    }

    /// Number of re-evaluations performed.
    pub fn evals(&self) -> usize {
        self.evals
    }

    /// Per-re-evaluation decision latencies (seconds).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// The buffered observations, one inner slice per variable — what
    /// an adaptation layer captures as a labeled refit example once
    /// ground truth arrives.
    pub fn series(&self) -> &[Vec<f64>] {
        &self.values
    }

    /// Reports the ground-truth label after the fact (label feedback:
    /// the true class became known once the stream completed). Returns
    /// whether the committed decision was correct, or `None` while the
    /// session is still undecided — feedback only grades a decision
    /// that was actually made.
    pub fn feedback(&mut self, truth: usize) -> Option<bool> {
        let decided = self.decided?;
        self.truth = Some(truth);
        Some(decided.label == truth)
    }

    /// The fed-back ground truth, once reported.
    pub fn truth(&self) -> Option<usize> {
        self.truth
    }

    /// Whether the committed decision matched the fed-back truth;
    /// `None` until both exist.
    pub fn correct(&self) -> Option<bool> {
        let decided = self.decided?;
        Some(decided.label == self.truth?)
    }

    /// Feeds one observation (one value per variable) and re-evaluates
    /// when the batch boundary — or the final point — is reached.
    ///
    /// Returns the prediction when this observation triggered the
    /// commit; afterwards the session is done and further observations
    /// are no-ops.
    ///
    /// # Errors
    /// [`EtscError::IncompatibleInstance`] on a wrong-arity observation;
    /// otherwise whatever the algorithm's `observe` propagates.
    pub fn push(&mut self, observation: &[f64]) -> Result<Option<EarlyPrediction>, EtscError> {
        self.push_with_delay(observation, None)
    }

    /// [`StreamSession::push`] with an artificial evaluation delay
    /// injected *inside* the timed region — the fault-injection hook
    /// used by chaos testing to make a fast algorithm miss its
    /// deadline on demand.
    ///
    /// # Errors
    /// See [`StreamSession::push`].
    pub fn push_with_delay(
        &mut self,
        observation: &[f64],
        injected_delay: Option<Duration>,
    ) -> Result<Option<EarlyPrediction>, EtscError> {
        if self.decided.is_some() {
            return Ok(None);
        }
        if observation.len() != self.values.len() {
            return Err(EtscError::IncompatibleInstance(format!(
                "observation has {} variables, session expects {}",
                observation.len(),
                self.values.len()
            )));
        }
        for (var, &x) in self.values.iter_mut().zip(observation) {
            var.push(x);
        }
        let t = self.values[0].len();
        let is_final = t >= self.expected_len;
        if !t.is_multiple_of(self.batch) && !is_final {
            return Ok(None);
        }
        let prefix = MultiSeries::from_rows(self.values.clone()).map_err(EtscError::Data)?;
        let started = Instant::now();
        if let Some(delay) = injected_delay {
            std::thread::sleep(delay);
        }
        let label = self.stream.observe(&prefix, is_final)?;
        let breached = self.record_eval(started.elapsed().as_secs_f64());
        // Deadline breach: the consumer was answered per policy at the
        // moment the budget expired, so a genuine label arriving late
        // cannot un-send that verdict — it is discarded (`PriorClass`)
        // or adopted as the forced current-best (`DecideNow`). Only
        // `Wait` accepts the late result. The final observation never
        // falls back — `observe(_, true)` was already the forced
        // evaluation and the stream is over.
        if let (true, false, Some(cfg)) = (breached, is_final, self.deadline) {
            match cfg.policy {
                FallbackPolicy::Wait => {}
                FallbackPolicy::PriorClass => {
                    return Ok(Some(self.commit(
                        cfg.prior_label,
                        t,
                        Some(FallbackKind::DeadlinePrior),
                    )));
                }
                FallbackPolicy::DecideNow => {
                    let forced = match label {
                        // The breaching evaluation itself produced the
                        // algorithm's current best.
                        Some(label) => Some(label),
                        None => {
                            let started = Instant::now();
                            let forced = self.stream.observe(&prefix, true)?;
                            self.record_eval(started.elapsed().as_secs_f64());
                            forced
                        }
                    };
                    let (label, kind) = match forced {
                        Some(label) => (label, FallbackKind::DeadlineForced),
                        None => (cfg.prior_label, FallbackKind::DeadlinePrior),
                    };
                    return Ok(Some(self.commit(label, t, Some(kind))));
                }
            }
        }
        if let Some(label) = label {
            return Ok(Some(self.commit(label, t, None)));
        }
        Ok(None)
    }

    /// Forces a decision on the prefix observed so far — the graceful-
    /// drain path: the stream is shutting down before the series
    /// completed, so the algorithm is asked for its current best,
    /// falling back to `prior_label` when the forced evaluation yields
    /// nothing (or nothing was observed at all). Idempotent: an
    /// already-decided session returns its committed prediction.
    ///
    /// # Errors
    /// Whatever the algorithm's forced `observe` propagates.
    pub fn force_decide(&mut self, prior_label: usize) -> Result<EarlyPrediction, EtscError> {
        if let Some(p) = self.decided {
            return Ok(p);
        }
        let t = self.values[0].len();
        if t == 0 {
            return Ok(self.commit(prior_label, 0, Some(FallbackKind::DrainPrior)));
        }
        let prefix = MultiSeries::from_rows(self.values.clone()).map_err(EtscError::Data)?;
        let started = Instant::now();
        let label = self.stream.observe(&prefix, true)?;
        self.record_eval(started.elapsed().as_secs_f64());
        let (label, kind) = match label {
            Some(label) => (label, FallbackKind::DrainForced),
            None => (prior_label, FallbackKind::DrainPrior),
        };
        Ok(self.commit(label, t, Some(kind)))
    }

    /// Records one evaluation latency (against the armed deadline, if
    /// any) and reports whether it breached.
    fn record_eval(&mut self, secs: f64) -> bool {
        self.evals += 1;
        match self.deadline {
            Some(cfg) => {
                let breached = self
                    .latency
                    .record_with_deadline(secs, cfg.deadline.as_secs_f64());
                if breached {
                    self.deadline_breaches += 1;
                }
                breached
            }
            None => {
                self.latency.record(secs);
                false
            }
        }
    }

    fn commit(
        &mut self,
        label: usize,
        prefix_len: usize,
        fallback: Option<FallbackKind>,
    ) -> EarlyPrediction {
        let prediction = EarlyPrediction { label, prefix_len };
        self.decided = Some(prediction);
        self.fallback = fallback;
        prediction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_data::{Dataset, DatasetBuilder, Series};
    use etsc_eval::experiment::{AlgoSpec, RunConfig};

    fn synthetic() -> Dataset {
        let mut b = DatasetBuilder::new("synthetic");
        for i in 0..12 {
            let (class, base) = if i % 2 == 0 {
                ("up", 1.0)
            } else {
                ("down", -1.0)
            };
            let values: Vec<f64> = (0..20)
                .map(|t| base * (t as f64 + i as f64 * 0.1))
                .collect();
            b.push_named(MultiSeries::univariate(Series::new(values)), class);
        }
        b.build().unwrap()
    }

    #[test]
    fn session_matches_predict_early() {
        let data = synthetic();
        let mut model = AlgoSpec::Ects.build(&data, &RunConfig::fast());
        model.fit(&data).unwrap();
        for inst in data.instances() {
            let offline = model.predict_early(inst).unwrap();
            let mut session = StreamSession::new(&*model, inst.vars(), inst.len(), 1).unwrap();
            let mut live = None;
            for t in 0..inst.len() {
                let row: Vec<f64> = (0..inst.vars()).map(|v| inst.at(v, t)).collect();
                if let Some(p) = session.push(&row).unwrap() {
                    live = Some(p);
                    break;
                }
            }
            assert_eq!(live, Some(offline));
            assert!(session.is_done());
            assert!(session.evals() > 0);
            assert_eq!(session.latency().len(), session.evals());
        }
    }

    #[test]
    fn batched_session_evaluates_fewer_times() {
        let data = synthetic();
        let mut model = AlgoSpec::Ects.build(&data, &RunConfig::fast());
        model.fit(&data).unwrap();
        let inst = data.instance(0);
        let run = |batch: usize| {
            let mut s = StreamSession::new(&*model, 1, inst.len(), batch).unwrap();
            for t in 0..inst.len() {
                if s.push(&[inst.at(0, t)]).unwrap().is_some() {
                    break;
                }
            }
            (s.evals(), s.decision())
        };
        let (evals_per_point, d1) = run(1);
        let (evals_batched, d2) = run(5);
        assert!(evals_batched <= evals_per_point);
        assert!(d1.is_some() && d2.is_some());
        // A batched session can only commit on batch boundaries (or the
        // final point).
        let p = d2.unwrap().prefix_len;
        assert!(p % 5 == 0 || p == inst.len(), "prefix_len {p}");
    }

    #[test]
    fn injected_delay_breaches_deadline_and_prior_fallback_commits() {
        let data = synthetic();
        let mut model = AlgoSpec::Ects.build(&data, &RunConfig::fast());
        model.fit(&data).unwrap();
        let inst = data.instance(0);
        let mut s = StreamSession::new(&*model, 1, inst.len(), 1).unwrap();
        s.set_deadline(Some(DeadlineConfig {
            deadline: Duration::from_micros(1),
            policy: FallbackPolicy::PriorClass,
            prior_label: 1,
        }));
        // A 20ms injected delay against a 1µs deadline must breach.
        let p = s
            .push_with_delay(&[inst.at(0, 0)], Some(Duration::from_millis(20)))
            .unwrap()
            .expect("prior-class fallback commits immediately");
        assert_eq!(p.label, 1);
        assert_eq!(p.prefix_len, 1);
        assert_eq!(s.fallback(), Some(FallbackKind::DeadlinePrior));
        assert_eq!(s.deadline_breaches(), 1);
        assert_eq!(s.latency().over_deadline(), 1);
        assert!(s.is_done());
    }

    #[test]
    fn decide_now_fallback_forces_the_algorithms_current_best() {
        let data = synthetic();
        let mut model = AlgoSpec::Ects.build(&data, &RunConfig::fast());
        model.fit(&data).unwrap();
        let inst = data.instance(0);
        // The offline decision on the full series = the forced verdict
        // ceiling; forcing early must still yield a valid label.
        let mut s = StreamSession::new(&*model, 1, inst.len(), 1).unwrap();
        s.set_deadline(Some(DeadlineConfig {
            deadline: Duration::from_micros(1),
            policy: FallbackPolicy::DecideNow,
            prior_label: 0,
        }));
        let p = s
            .push_with_delay(&[inst.at(0, 0)], Some(Duration::from_millis(20)))
            .unwrap()
            .expect("decide-now fallback commits");
        assert!(matches!(
            s.fallback(),
            Some(FallbackKind::DeadlineForced | FallbackKind::DeadlinePrior)
        ));
        assert_eq!(p.prefix_len, 1);
        assert!(s.is_done());
    }

    #[test]
    fn wait_policy_only_counts_breaches() {
        let data = synthetic();
        let mut model = AlgoSpec::Ects.build(&data, &RunConfig::fast());
        model.fit(&data).unwrap();
        let inst = data.instance(0);
        let mut s = StreamSession::new(&*model, 1, inst.len(), 1).unwrap();
        s.set_deadline(Some(DeadlineConfig {
            deadline: Duration::from_micros(1),
            policy: FallbackPolicy::Wait,
            prior_label: 0,
        }));
        let p = s
            .push_with_delay(&[inst.at(0, 0)], Some(Duration::from_millis(5)))
            .unwrap();
        // ECTS does not commit on a single point of this series; Wait
        // keeps the session open despite the breach.
        if p.is_none() {
            assert!(!s.is_done());
        }
        assert!(s.deadline_breaches() >= 1);
        // Wait never commits a fallback verdict.
        assert_eq!(s.fallback(), None);
    }

    #[test]
    fn force_decide_commits_on_drain_and_is_idempotent() {
        let data = synthetic();
        let mut model = AlgoSpec::Ects.build(&data, &RunConfig::fast());
        model.fit(&data).unwrap();
        let inst = data.instance(0);
        // Nothing observed yet: the drain answers with the prior class.
        let mut empty = StreamSession::new(&*model, 1, inst.len(), 1).unwrap();
        let p = empty.force_decide(1).unwrap();
        assert_eq!((p.label, p.prefix_len), (1, 0));
        assert_eq!(empty.fallback(), Some(FallbackKind::DrainPrior));
        assert!(empty.is_done());
        // A partially-observed session is forced on its prefix.
        let mut s = StreamSession::new(&*model, 1, inst.len(), 1).unwrap();
        for t in 0..3 {
            if s.push(&[inst.at(0, t)]).unwrap().is_some() {
                break;
            }
        }
        let observed = s.observed();
        let p = s.force_decide(0).unwrap();
        assert!(s.is_done());
        assert_eq!(p.prefix_len, observed);
        // Idempotent: a second drain returns the committed prediction.
        assert_eq!(s.force_decide(0).unwrap(), p);
    }

    #[test]
    fn wrong_arity_is_rejected_and_done_sessions_ignore_input() {
        let data = synthetic();
        let mut model = AlgoSpec::Ects.build(&data, &RunConfig::fast());
        model.fit(&data).unwrap();
        let inst = data.instance(0);
        let mut s = StreamSession::new(&*model, 1, inst.len(), 1).unwrap();
        assert!(s.push(&[1.0, 2.0]).is_err());
        for t in 0..inst.len() {
            s.push(&[inst.at(0, t)]).unwrap();
        }
        assert!(s.is_done());
        let evals = s.evals();
        assert_eq!(s.push(&[0.0]).unwrap(), None);
        assert_eq!(s.evals(), evals);
    }
}
