//! Overload-admission primitives: token buckets, CoDel-style sojourn
//! control, and the brownout degradation ladder.
//!
//! The scheduler's original backpressure was a static binary — block
//! the producer or shed the observation. Neither answers the question
//! production serving actually asks under sustained over-capacity
//! load: *how much* work should be refused, and *how gracefully* can
//! the rest degrade before anything is refused at all. This module
//! supplies the three controllers that replace the binary:
//!
//! * [`TokenBucket`] — per-client rate limiting, so one aggressive
//!   client cannot starve the rest before global controls engage;
//! * [`CodelController`] — adaptive admission keyed on measured queue
//!   *sojourn time* (the CoDel insight: queue length lies, time spent
//!   waiting does not). While the minimum sojourn over a control
//!   interval stays above target, admission sheds at an accelerating
//!   `interval/√count` cadence until the queue drains back under
//!   target;
//! * [`BrownoutController`] — a hysteresis ladder over degradation
//!   modes: full evaluation → tightened per-decision deadline →
//!   decide-now/prior fallback → shed lowest-priority sessions. The
//!   ETSC cost model makes the middle rungs natural: an early-decided
//!   verdict is cheaper *and still an answer*, so the ladder trades
//!   earliness/accuracy for survival before it trades availability.
//!
//! All three are deterministic given an explicit clock — every method
//! takes `now: Instant` — so their invariants (refill monotonicity,
//! sojourn-target convergence, no per-step oscillation) are pinned by
//! property tests rather than wall-clock luck.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A token bucket: `rate` tokens per second refill up to `burst`
/// capacity; each admitted unit of work takes one token.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Option<Instant>,
}

impl TokenBucket {
    /// A bucket refilling `rate` tokens/sec with `burst` capacity
    /// (both clamped to be at least a trickle, so a mis-configured
    /// zero rate refuses work instead of dividing by zero).
    pub fn new(rate: f64, burst: f64) -> TokenBucket {
        let rate = if rate.is_finite() && rate > 0.0 {
            rate
        } else {
            f64::MIN_POSITIVE
        };
        let burst = if burst.is_finite() && burst >= 1.0 {
            burst
        } else {
            1.0
        };
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: None,
        }
    }

    fn refill(&mut self, now: Instant) {
        if let Some(last) = self.last {
            let dt = now.saturating_duration_since(last).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        }
        self.last = Some(now);
    }

    /// Tokens currently available (after the last refill).
    pub fn available(&self) -> f64 {
        self.tokens
    }

    /// Takes one token if available; refills first.
    pub fn try_acquire(&mut self, now: Instant) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// How long until one token will be available at the current fill
    /// level — the `retry_after` hint a refusal should carry.
    pub fn retry_after(&self) -> Duration {
        if self.tokens >= 1.0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(((1.0 - self.tokens) / self.rate).min(60.0))
        }
    }
}

/// Tuning for [`CodelController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodelConfig {
    /// Acceptable standing queue sojourn. Sojourns persistently above
    /// this mean the queue holds more work than the service can clear.
    pub target: Duration,
    /// How long sojourn must stay above target before shedding starts,
    /// and the base period of the shedding control law.
    pub interval: Duration,
}

impl Default for CodelConfig {
    fn default() -> CodelConfig {
        CodelConfig {
            target: Duration::from_millis(5),
            interval: Duration::from_millis(100),
        }
    }
}

/// CoDel-style adaptive admission: dequeues report sojourn via
/// [`CodelController::record_sojourn`]; enqueues ask
/// [`CodelController::admit`]. While sojourn has stayed above
/// `target` for a full `interval`, the controller enters its shedding
/// state and refuses one enqueue every `interval/count`, shedding
/// faster the longer the overload persists — and stops the moment a
/// dequeue observes sojourn back under target.
#[derive(Debug, Clone)]
pub struct CodelController {
    config: CodelConfig,
    first_above: Option<Instant>,
    dropping: bool,
    shed_next: Option<Instant>,
    count: u32,
}

impl CodelController {
    /// A controller in the admitting state.
    pub fn new(config: CodelConfig) -> CodelController {
        CodelController {
            config,
            first_above: None,
            dropping: false,
            shed_next: None,
            count: 0,
        }
    }

    /// `true` while the controller is in its shedding state.
    pub fn is_shedding(&self) -> bool {
        self.dropping
    }

    /// Total enqueues refused so far.
    pub fn shed_count(&self) -> u32 {
        self.count
    }

    /// Reports the queue sojourn of one dequeued item.
    pub fn record_sojourn(&mut self, sojourn: Duration, now: Instant) {
        if sojourn < self.config.target {
            // Back under target: leave the shedding state, but decay
            // rather than reset the count so a quick relapse resumes
            // near the old shedding cadence (the CoDel re-entry rule).
            self.first_above = None;
            if self.dropping {
                self.dropping = false;
                self.shed_next = None;
                self.count /= 2;
            }
            return;
        }
        if self.dropping {
            return;
        }
        match self.first_above {
            None if self.count > 0 => {
                // Recent shedding memory: a relapse re-engages at once
                // instead of tolerating another full interval of
                // standing queue.
                self.dropping = true;
                self.shed_next = Some(now);
            }
            None => self.first_above = Some(now + self.config.interval),
            Some(t) if now >= t => {
                self.dropping = true;
                self.count = self.count.max(1);
                self.shed_next = Some(now);
            }
            Some(_) => {}
        }
    }

    /// Whether to admit one unit of work arriving now. Refusals follow
    /// the control law: at most one per `interval/count`, with `count`
    /// growing while the overload lasts. (Canonical CoDel paces drops
    /// at `interval/√count` to nudge congestion-controlled senders;
    /// admission has no cooperating sender, so the cadence accelerates
    /// linearly until shedding matches the excess arrival rate.)
    pub fn admit(&mut self, now: Instant) -> bool {
        if !self.dropping {
            return true;
        }
        match self.shed_next {
            Some(t) if now >= t => {
                self.count += 1;
                let gap = self.config.interval.as_secs_f64() / f64::from(self.count);
                self.shed_next = Some(now + Duration::from_secs_f64(gap));
                false
            }
            _ => true,
        }
    }
}

/// The rungs of the brownout degradation ladder, cheapest service
/// first to be sacrificed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrownoutLevel {
    /// Full evaluation, client-configured deadlines only.
    Normal,
    /// Per-decision deadlines tightened: late evaluations commit the
    /// configured fallback instead of waiting.
    Tightened,
    /// Sessions are asked to decide *now* on the prefix observed so
    /// far — an early, cheaper verdict instead of continued
    /// evaluation.
    DecideNow,
    /// New lowest-priority sessions are shed outright (with a retry
    /// hint); existing work continues in decide-now mode.
    ShedLowPriority,
}

impl BrownoutLevel {
    /// All rungs, mildest first.
    pub const LADDER: [BrownoutLevel; 4] = [
        BrownoutLevel::Normal,
        BrownoutLevel::Tightened,
        BrownoutLevel::DecideNow,
        BrownoutLevel::ShedLowPriority,
    ];

    /// Stable kebab-case name for metrics and traces.
    pub fn name(self) -> &'static str {
        match self {
            BrownoutLevel::Normal => "normal",
            BrownoutLevel::Tightened => "tightened",
            BrownoutLevel::DecideNow => "decide-now",
            BrownoutLevel::ShedLowPriority => "shed-low-priority",
        }
    }

    /// Rung index (0 = normal), the value exported as a gauge.
    pub fn as_u8(self) -> u8 {
        match self {
            BrownoutLevel::Normal => 0,
            BrownoutLevel::Tightened => 1,
            BrownoutLevel::DecideNow => 2,
            BrownoutLevel::ShedLowPriority => 3,
        }
    }

    /// The rung for a gauge value (saturating: unknown values clamp
    /// to the deepest rung).
    pub fn from_u8(v: u8) -> BrownoutLevel {
        match v {
            0 => BrownoutLevel::Normal,
            1 => BrownoutLevel::Tightened,
            2 => BrownoutLevel::DecideNow,
            _ => BrownoutLevel::ShedLowPriority,
        }
    }
}

/// Tuning for [`BrownoutController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutConfig {
    /// Pressure (peak queue sojourn per sample tick) at or above which
    /// a sample votes to escalate.
    pub high_water: Duration,
    /// Pressure at or below which a sample votes to recover. Must sit
    /// below `high_water`; the dead band between the two is the
    /// hysteresis that stops flapping.
    pub low_water: Duration,
    /// Consecutive escalation votes required to climb one rung.
    pub up_after: u32,
    /// Consecutive recovery votes required to descend one rung —
    /// deliberately larger than `up_after`: degrade fast, recover
    /// cautiously.
    pub down_after: u32,
}

impl Default for BrownoutConfig {
    fn default() -> BrownoutConfig {
        BrownoutConfig {
            high_water: Duration::from_millis(20),
            low_water: Duration::from_millis(5),
            up_after: 2,
            down_after: 8,
        }
    }
}

/// Hysteresis controller walking the [`BrownoutLevel`] ladder one rung
/// at a time. Feed it one pressure sample per tick; it escalates after
/// `up_after` consecutive samples at or above `high_water`, recovers
/// after `down_after` consecutive samples at or below `low_water`, and
/// holds position otherwise. Every transition resets both streaks, so
/// a single sample can never move the level more than one rung and an
/// alternating pressure signal moves it not at all.
#[derive(Debug, Clone)]
pub struct BrownoutController {
    config: BrownoutConfig,
    level: BrownoutLevel,
    high_streak: u32,
    low_streak: u32,
}

impl BrownoutController {
    /// A controller at [`BrownoutLevel::Normal`].
    pub fn new(config: BrownoutConfig) -> BrownoutController {
        BrownoutController {
            config: BrownoutConfig {
                up_after: config.up_after.max(1),
                down_after: config.down_after.max(1),
                ..config
            },
            level: BrownoutLevel::Normal,
            high_streak: 0,
            low_streak: 0,
        }
    }

    /// The current rung.
    pub fn level(&self) -> BrownoutLevel {
        self.level
    }

    /// Feeds one pressure sample; returns `Some((from, to))` when the
    /// ladder moved this tick.
    pub fn observe(&mut self, pressure: Duration) -> Option<(BrownoutLevel, BrownoutLevel)> {
        if pressure >= self.config.high_water {
            self.high_streak += 1;
            self.low_streak = 0;
        } else if pressure <= self.config.low_water {
            self.low_streak += 1;
            self.high_streak = 0;
        } else {
            self.high_streak = 0;
            self.low_streak = 0;
        }
        let from = self.level;
        let idx = from.as_u8();
        if self.high_streak >= self.config.up_after && idx < 3 {
            self.level = BrownoutLevel::from_u8(idx + 1);
        } else if self.low_streak >= self.config.down_after && idx > 0 {
            self.level = BrownoutLevel::from_u8(idx - 1);
        } else {
            return None;
        }
        self.high_streak = 0;
        self.low_streak = 0;
        Some((from, self.level))
    }
}

/// Lock-free pressure sensor shared between the threads that *feel*
/// queueing delay (connection readers, scheduler workers) and the
/// brownout loop that samples it: records keep the peak sojourn since
/// the last [`PressureSensor::drain`].
#[derive(Debug, Default)]
pub struct PressureSensor {
    peak_ns: AtomicU64,
}

impl PressureSensor {
    /// A sensor reading zero pressure.
    pub fn new() -> PressureSensor {
        PressureSensor::default()
    }

    /// Records one observed queue sojourn.
    pub fn record(&self, sojourn: Duration) {
        let ns = u64::try_from(sojourn.as_nanos()).unwrap_or(u64::MAX);
        self.peak_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// The peak sojourn since the previous drain, resetting the peak.
    pub fn drain(&self) -> Duration {
        Duration::from_nanos(self.peak_ns.swap(0, Ordering::Relaxed))
    }

    /// The peak sojourn since the previous drain, without resetting.
    pub fn peek(&self) -> Duration {
        Duration::from_nanos(self.peak_ns.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn token_bucket_enforces_rate_and_burst() {
        let start = t0();
        let mut b = TokenBucket::new(10.0, 3.0);
        // Burst drains first...
        assert!(b.try_acquire(start));
        assert!(b.try_acquire(start));
        assert!(b.try_acquire(start));
        assert!(!b.try_acquire(start));
        assert!(b.retry_after() > Duration::ZERO);
        // ...then the refill rate governs: 100ms at 10/s buys one.
        assert!(b.try_acquire(start + Duration::from_millis(100)));
        assert!(!b.try_acquire(start + Duration::from_millis(101)));
        // A long idle period refills to burst, never beyond.
        let later = start + Duration::from_secs(60);
        for _ in 0..3 {
            assert!(b.try_acquire(later));
        }
        assert!(!b.try_acquire(later));
    }

    #[test]
    fn token_bucket_survives_degenerate_configs() {
        let start = t0();
        let mut zero = TokenBucket::new(0.0, 0.0);
        assert!(zero.try_acquire(start));
        assert!(!zero.try_acquire(start));
        assert!(zero.retry_after() <= Duration::from_secs(60));
        let mut nan = TokenBucket::new(f64::NAN, f64::NAN);
        assert!(nan.try_acquire(start));
    }

    #[test]
    fn codel_stays_quiet_under_target_and_sheds_above() {
        let cfg = CodelConfig::default();
        let mut c = CodelController::new(cfg);
        let start = t0();
        // Sojourns under target never shed, no matter how many.
        for i in 0..1000 {
            let now = start + Duration::from_millis(i);
            c.record_sojourn(Duration::from_millis(1), now);
            assert!(c.admit(now));
        }
        assert!(!c.is_shedding());
        // Sojourn above target must persist a full interval first...
        let now = start + Duration::from_secs(10);
        c.record_sojourn(Duration::from_millis(50), now);
        assert!(c.admit(now), "no shed before the interval elapses");
        // ...then shedding engages.
        let later = now + cfg.interval + Duration::from_millis(1);
        c.record_sojourn(Duration::from_millis(50), later);
        assert!(c.is_shedding());
        assert!(!c.admit(later));
        // And a sojourn back under target disengages immediately.
        c.record_sojourn(Duration::from_millis(1), later + Duration::from_millis(5));
        assert!(!c.is_shedding());
        assert!(c.admit(later + Duration::from_millis(5)));
    }

    #[test]
    fn codel_shed_cadence_accelerates_while_overloaded() {
        let cfg = CodelConfig::default();
        let mut c = CodelController::new(cfg);
        let start = t0();
        c.record_sojourn(Duration::from_millis(50), start);
        let engaged = start + cfg.interval + Duration::from_millis(1);
        c.record_sojourn(Duration::from_millis(50), engaged);
        assert!(c.is_shedding());
        // Walk forward 1ms at a time, recording every gap between
        // refusals; the control law says gaps never grow.
        let mut gaps = Vec::new();
        let mut last_shed: Option<u64> = None;
        for ms in 0..2000u64 {
            let now = engaged + Duration::from_millis(ms);
            c.record_sojourn(Duration::from_millis(50), now);
            if !c.admit(now) {
                if let Some(prev) = last_shed {
                    gaps.push(ms - prev);
                }
                last_shed = Some(ms);
            }
        }
        assert!(gaps.len() >= 3, "expected several sheds, got {gaps:?}");
        for pair in gaps.windows(2) {
            assert!(pair[1] <= pair[0] + 1, "cadence slowed: {gaps:?}");
        }
    }

    #[test]
    fn codel_converges_to_the_sojourn_target() {
        // Closed-loop simulation: a queue served at 1 item/ms receives
        // 3 offered items/ms. Without admission the queue (and its
        // sojourn) grows without bound; with the controller in the
        // loop the sojourn must converge to the neighbourhood of the
        // target instead of diverging.
        let cfg = CodelConfig {
            target: Duration::from_millis(5),
            interval: Duration::from_millis(20),
        };
        let mut c = CodelController::new(cfg);
        let start = t0();
        let mut queue: u64 = 0;
        let mut peak_tail = Duration::ZERO;
        for ms in 0..4000u64 {
            let now = start + Duration::from_millis(ms);
            for j in 0..3u32 {
                // Arrivals spread inside the tick, as on a real wire.
                if c.admit(now + Duration::from_micros(u64::from(j) * 333)) {
                    queue += 1;
                }
            }
            if queue > 0 {
                queue -= 1;
                // Sojourn of the item leaving now ≈ queue length at
                // service rate 1/ms.
                let sojourn = Duration::from_millis(queue);
                c.record_sojourn(sojourn, now);
                if ms >= 3000 {
                    peak_tail = peak_tail.max(sojourn);
                }
            }
        }
        assert!(
            peak_tail <= cfg.target * 4,
            "sojourn failed to converge: tail peak {peak_tail:?} vs target {:?}",
            cfg.target
        );
        assert!(c.shed_count() > 0);
    }

    #[test]
    fn brownout_requires_a_full_streak_per_rung() {
        let cfg = BrownoutConfig {
            high_water: Duration::from_millis(20),
            low_water: Duration::from_millis(5),
            up_after: 3,
            down_after: 4,
        };
        let mut b = BrownoutController::new(cfg);
        let high = Duration::from_millis(50);
        let low = Duration::from_millis(1);
        assert_eq!(b.observe(high), None);
        assert_eq!(b.observe(high), None);
        assert_eq!(
            b.observe(high),
            Some((BrownoutLevel::Normal, BrownoutLevel::Tightened))
        );
        // The streak reset: two more highs are not enough again.
        assert_eq!(b.observe(high), None);
        assert_eq!(b.observe(high), None);
        assert_eq!(
            b.observe(high),
            Some((BrownoutLevel::Tightened, BrownoutLevel::DecideNow))
        );
        // Recovery needs its own full streak.
        for _ in 0..3 {
            assert_eq!(b.observe(low), None);
        }
        assert_eq!(
            b.observe(low),
            Some((BrownoutLevel::DecideNow, BrownoutLevel::Tightened))
        );
    }

    #[test]
    fn brownout_saturates_at_the_ladder_ends() {
        let mut b = BrownoutController::new(BrownoutConfig {
            up_after: 1,
            down_after: 1,
            ..BrownoutConfig::default()
        });
        let high = Duration::from_millis(500);
        let low = Duration::ZERO;
        for _ in 0..10 {
            b.observe(high);
        }
        assert_eq!(b.level(), BrownoutLevel::ShedLowPriority);
        for _ in 0..10 {
            b.observe(low);
        }
        assert_eq!(b.level(), BrownoutLevel::Normal);
        assert_eq!(b.observe(low), None);
    }

    #[test]
    fn pressure_sensor_keeps_the_peak_and_drains() {
        let s = PressureSensor::new();
        s.record(Duration::from_millis(3));
        s.record(Duration::from_millis(9));
        s.record(Duration::from_millis(1));
        assert_eq!(s.peek(), Duration::from_millis(9));
        assert_eq!(s.drain(), Duration::from_millis(9));
        assert_eq!(s.drain(), Duration::ZERO);
    }
}
