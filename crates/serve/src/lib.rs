//! # etsc-serve
//!
//! The streaming inference service on top of the framework's algorithms:
//! everything Figure 13 predicts *offline* about online feasibility,
//! made *measurable* on a live replay.
//!
//! * [`store`] — a versioned, hand-rolled binary model store so
//!   `etsc train` can persist a fitted model and `etsc serve` /
//!   `etsc predict` can load it without refitting. Floats travel as
//!   IEEE-754 bit patterns, so a loaded model predicts bit-identically
//!   to the in-memory one;
//! * [`session`] — one [`session::StreamSession`] per incoming time
//!   series, feeding observations incrementally through the existing
//!   [`etsc_core::StreamState`] machinery and re-evaluating per point or
//!   per prefix batch (ECEC/TEASER semantics);
//! * [`scheduler`] — a fixed worker pool multiplexing many sessions with
//!   bounded ingress queues and explicit backpressure (block or shed).
//!   Workers are supervised: a panic fails only the in-flight session
//!   and the worker restarts (bounded, with exponential backoff);
//! * [`admission`] — the overload controllers shared by the scheduler
//!   and the network edge: per-client token buckets, CoDel-style
//!   sojourn-keyed adaptive admission, and the brownout degradation
//!   ladder with hysteresis;
//! * [`replay`] — replays a whole dataset through the scheduler at a
//!   dataset's observation frequency and reports the *measured*
//!   Figure-13 ratio (`decision_latency / obs_interval`) next to the
//!   offline verdict of [`etsc_eval::online`].
//!
//! Robustness is first-class: sessions can carry decision deadlines
//! that degrade to a configurable fallback verdict, the model store is
//! crash-consistent (per-section CRC64, `.prev` last-good fallback,
//! quarantine on corruption), and a seeded [`etsc_eval::FaultPlan`] can
//! inject worker panics, decision latency, and poisoned stream points
//! deterministically for chaos testing.

pub mod admission;
pub mod replay;
pub mod scheduler;
pub mod session;
pub mod store;

pub use admission::{
    BrownoutConfig, BrownoutController, BrownoutLevel, CodelConfig, CodelController,
    PressureSensor, TokenBucket,
};
pub use replay::{replay_dataset, ReplayOptions, ReplayOutcome};
pub use scheduler::{
    serve_sessions, Backpressure, SchedulerConfig, ServeReport, SessionOutcome, SupervisionConfig,
};
pub use session::{DeadlineConfig, FallbackKind, FallbackPolicy, StreamSession};
pub use store::{
    fit_model, fit_triggered_model, load_resilient, replicate, LoadOutcome, ModelMeta, SavedModel,
    ServeError, StoredModel, TriggerDesc,
};
