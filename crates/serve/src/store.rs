//! Persistent model store: versioned, crash-consistent binary files
//! for fitted models.
//!
//! Layout (all scalars little-endian, via [`etsc_data::codec`]):
//!
//! ```text
//! magic   u64   "ETSCMODL"
//! version u64   bumped on any payload schema change
//! meta    section   algorithm name, dataset name, vars, train length,
//!                   class names, training prior label, trigger
//!                   descriptor (version ≥ 4), voting flag
//! payload section   the algorithm's own `encode_state` field sequence
//! trigger section   (version ≥ 4, trigger-wrapped models only) the
//!                   fitted decision trigger + calibration map, every
//!                   float as its exact IEEE-754 bit pattern
//! ```
//!
//! where each *section* is `len u64 · bytes · crc64 u64` — the CRC-64/XZ
//! checksum of the bytes. A flipped bit or torn write anywhere inside a
//! section is detected as [`ServeError::Checksum`] instead of being
//! decoded into garbage weights.
//!
//! Crash consistency: [`StoredModel::save`] writes a temp file, keeps
//! the previous file as `<name>.prev` (last-good), and renames into
//! place, so no crash can leave the primary path truncated.
//! [`load_resilient`] completes the story: a corrupt primary file is
//! quarantined as `<name>.quarantine` and serving transparently falls
//! back to the last-good `.prev` copy, with warnings describing what
//! happened.
//!
//! Every float is stored as its IEEE-754 bit pattern, so a loaded model
//! is *bit-identical* to the saved one: the round-trip property test in
//! the workspace root asserts equal predictions on held-out data for
//! every algorithm.

use std::path::{Path, PathBuf};

use etsc_core::full::{
    MiniRocketClassifier, MiniRocketClassifierConfig, MlstmClassifier, MlstmClassifierConfig,
    WeaselClassifier, WeaselClassifierConfig,
};
use etsc_core::{
    decode_trigger, encode_trigger, EarlyClassifier, Ecec, EcecConfig, EconomyK, EconomyKConfig,
    Ects, EctsConfig, Edsc, EdscConfig, EtscError, Strut, Teaser, TeaserConfig, TriggeredBase,
    TriggeredClassifier, TriggeredConfig, VotingAdapter, VotingScheme,
};
use etsc_data::codec::{crc64, CodecError, Decoder, Encoder};
use etsc_data::Dataset;
use etsc_eval::experiment::{AlgoSpec, RunConfig};
use etsc_trigger::{FittedTrigger, TriggerSpec};

/// File magic: `b"ETSCMODL"` as a little-endian `u64`.
const MAGIC: u64 = u64::from_le_bytes(*b"ETSCMODL");

/// Payload schema version; bump when any `encode_state` sequence
/// changes shape. Version 2 introduced per-section CRC64 checksums and
/// the training prior label; version 4 the trigger descriptor in the
/// metadata plus the CRC-guarded trigger section.
const FORMAT_VERSION: u64 = 4;

/// Oldest version this build still reads. Version-3 files (no trigger
/// machinery) load as plain models with `trigger: None`.
const MIN_FORMAT_VERSION: u64 = 3;

/// Failures of the model store.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem failure reading or writing a model file.
    Io(std::io::Error),
    /// The file's bytes do not decode as a model of this version.
    Codec(CodecError),
    /// The underlying algorithm failed (training, prediction, or an
    /// unsupported configuration for persistence).
    Model(EtscError),
    /// The file decoded but is not usable here (wrong magic, newer
    /// version, unknown algorithm name).
    Format(String),
    /// A section's CRC64 does not match its bytes: the file was
    /// corrupted after it was written (bit rot, torn write, tampering).
    Checksum {
        /// Which section failed verification.
        section: &'static str,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "model store I/O failed: {e}"),
            ServeError::Codec(e) => write!(f, "model file does not decode: {e}"),
            ServeError::Model(e) => write!(f, "model failure: {e}"),
            ServeError::Format(msg) => write!(f, "unusable model file: {msg}"),
            ServeError::Checksum { section } => write!(
                f,
                "model file is corrupt: CRC64 mismatch in the {section} section"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<CodecError> for ServeError {
    fn from(e: CodecError) -> Self {
        ServeError::Codec(e)
    }
}

impl From<EtscError> for ServeError {
    fn from(e: EtscError) -> Self {
        ServeError::Model(e)
    }
}

/// What the service needs to know about a model besides its weights:
/// which algorithm, what data shape it was trained on, and how to print
/// its predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelMeta {
    /// Trained algorithm.
    pub algo: AlgoSpec,
    /// Name of the training dataset.
    pub dataset: String,
    /// Variables per instance the model expects.
    pub vars: usize,
    /// Series length of the training data (the replay horizon).
    pub train_len: usize,
    /// Class display names, indexed by dense label.
    pub class_names: Vec<String>,
    /// Majority class of the training data — the baseline verdict
    /// committed by the prior-class deadline fallback.
    pub prior_label: usize,
    /// Monotonic model generation, starting at 1 for a fresh
    /// `fit_model` and bumped by each adaptive refit — the counter the
    /// fleet router's blue/green machinery keys swaps on.
    pub generation: u64,
    /// Present when the payload is a trigger-wrapped classifier: which
    /// base it wraps and the canonical trigger spec it was fitted with.
    /// For such models [`ModelMeta::algo`] holds the nearest STRUT slot
    /// (`S-MiniROCKET` for a triggered MiniROCKET, ...), kept only so
    /// version-agnostic consumers still have a valid [`AlgoSpec`];
    /// display paths should prefer [`ModelMeta::algo_label`].
    pub trigger: Option<TriggerDesc>,
}

/// How a trigger-wrapped model identifies itself in the metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerDesc {
    /// The wrapped base classifier.
    pub base: TriggeredBase,
    /// Canonical [`TriggerSpec`] string (round-trips through
    /// `TriggerSpec::parse`).
    pub spec: String,
}

impl ModelMeta {
    /// The prefix-batch size serving sessions should re-evaluate at.
    /// Trigger-wrapped models gate their own evaluation on internal
    /// checkpoints, so they observe per point; plain models defer to
    /// the algorithm's batch rule.
    pub fn decision_batch(&self, len: usize, config: &RunConfig) -> usize {
        if self.trigger.is_some() {
            1
        } else {
            self.algo.decision_batch(len, config)
        }
    }

    /// Human-facing algorithm label: the algorithm name for plain
    /// models, `BASE+family` (e.g. `MiniROCKET+cost`) for triggered
    /// ones.
    pub fn algo_label(&self) -> String {
        match &self.trigger {
            Some(t) => format!(
                "{}+{}",
                t.base.name(),
                t.spec.split(':').next().unwrap_or("trigger")
            ),
            None => self.algo.name().to_owned(),
        }
    }

    fn encode(&self, e: &mut Encoder) {
        e.str(self.algo.name());
        e.str(&self.dataset);
        e.usize(self.vars);
        e.usize(self.train_len);
        e.usize(self.class_names.len());
        for name in &self.class_names {
            e.str(name);
        }
        e.usize(self.prior_label);
        e.u64(self.generation);
        match &self.trigger {
            None => e.bool(false),
            Some(t) => {
                e.bool(true);
                e.str(t.base.name());
                e.str(&t.spec);
            }
        }
    }

    fn decode(d: &mut Decoder, version: u64) -> Result<ModelMeta, ServeError> {
        let algo_name = d.str()?;
        let algo = AlgoSpec::by_name(&algo_name)
            .ok_or_else(|| ServeError::Format(format!("unknown algorithm {algo_name:?}")))?;
        let dataset = d.str()?;
        let vars = d.usize()?;
        let train_len = d.usize()?;
        let n = d.usize()?;
        let mut class_names = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            class_names.push(d.str()?);
        }
        let prior_label = d.usize()?;
        if n > 0 && prior_label >= n {
            return Err(ServeError::Format(format!(
                "prior label {prior_label} out of range for {n} classes"
            )));
        }
        let generation = d.u64()?;
        if generation == 0 {
            return Err(ServeError::Format(
                "model generation 0 is reserved (generations start at 1)".into(),
            ));
        }
        // Version 3 predates the trigger machinery: no descriptor byte.
        let trigger = if version >= 4 && d.bool()? {
            let base_name = d.str()?;
            let base = TriggeredBase::parse(&base_name)
                .ok_or_else(|| ServeError::Format(format!("unknown trigger base {base_name:?}")))?;
            let spec = d.str()?;
            TriggerSpec::parse(&spec)
                .map_err(|e| ServeError::Format(format!("bad trigger spec {spec:?}: {e}")))?;
            Some(TriggerDesc { base, spec })
        } else {
            None
        };
        Ok(ModelMeta {
            algo,
            dataset,
            vars,
            train_len,
            class_names,
            prior_label,
            generation,
            trigger,
        })
    }
}

/// A fitted model in one of its sixteen persistable shapes: each of
/// the five univariate algorithms either plain or wrapped in the
/// multivariate voting adapter, the three natively-multivariate
/// STRUT variants, plus the three trigger-wrapped snapshot ensembles.
// One value exists per serving process, so the size spread between the
// MLSTM variant and the rest is irrelevant — not worth boxing.
#[allow(clippy::large_enum_variant)]
pub enum SavedModel {
    /// ECEC on univariate data.
    Ecec(Ecec),
    /// ECEC voting per variable.
    EcecVoting(VotingAdapter<Ecec>),
    /// ECONOMY-K on univariate data.
    EcoK(EconomyK),
    /// ECONOMY-K voting per variable.
    EcoKVoting(VotingAdapter<EconomyK>),
    /// ECTS on univariate data.
    Ects(Ects),
    /// ECTS voting per variable.
    EctsVoting(VotingAdapter<Ects>),
    /// EDSC on univariate data.
    Edsc(Edsc),
    /// EDSC voting per variable.
    EdscVoting(VotingAdapter<Edsc>),
    /// TEASER on univariate data.
    Teaser(Teaser),
    /// TEASER voting per variable.
    TeaserVoting(VotingAdapter<Teaser>),
    /// STRUT + MiniROCKET.
    SMini(Strut<MiniRocketClassifier>),
    /// STRUT + MLSTM-FCN.
    SMlstm(Strut<MlstmClassifier>),
    /// STRUT + WEASEL(+MUSE).
    SWeasel(Strut<WeaselClassifier>),
    /// Trigger-wrapped MiniROCKET snapshot ensemble.
    TrigMini(TriggeredClassifier<MiniRocketClassifier>),
    /// Trigger-wrapped WEASEL snapshot ensemble.
    TrigWeasel(TriggeredClassifier<WeaselClassifier>),
    /// Trigger-wrapped MLSTM-FCN snapshot ensemble.
    TrigMlstm(TriggeredClassifier<MlstmClassifier>),
}

impl SavedModel {
    /// The model as the trait object every downstream consumer
    /// (sessions, scheduler, CLI) works against. `Sync` so the
    /// scheduler's worker pool can share it.
    pub fn classifier(&self) -> &(dyn EarlyClassifier + Sync) {
        match self {
            SavedModel::Ecec(m) => m,
            SavedModel::EcecVoting(m) => m,
            SavedModel::EcoK(m) => m,
            SavedModel::EcoKVoting(m) => m,
            SavedModel::Ects(m) => m,
            SavedModel::EctsVoting(m) => m,
            SavedModel::Edsc(m) => m,
            SavedModel::EdscVoting(m) => m,
            SavedModel::Teaser(m) => m,
            SavedModel::TeaserVoting(m) => m,
            SavedModel::SMini(m) => m,
            SavedModel::SMlstm(m) => m,
            SavedModel::SWeasel(m) => m,
            SavedModel::TrigMini(m) => m,
            SavedModel::TrigWeasel(m) => m,
            SavedModel::TrigMlstm(m) => m,
        }
    }

    /// The fitted decision trigger, for the trigger-wrapped variants.
    pub fn fitted_trigger(&self) -> Option<&FittedTrigger> {
        match self {
            SavedModel::TrigMini(m) => m.trigger(),
            SavedModel::TrigWeasel(m) => m.trigger(),
            SavedModel::TrigMlstm(m) => m.trigger(),
            _ => None,
        }
    }

    /// Installs a trigger into a trigger-wrapped variant (the
    /// authoritative trigger-section load path and the serve-time
    /// override). No-op on plain models.
    pub fn install_trigger(&mut self, trigger: FittedTrigger) {
        match self {
            SavedModel::TrigMini(m) => m.set_trigger(trigger),
            SavedModel::TrigWeasel(m) => m.set_trigger(trigger),
            SavedModel::TrigMlstm(m) => m.set_trigger(trigger),
            _ => {}
        }
    }

    /// `true` when the payload is a voting adapter.
    fn is_voting(&self) -> bool {
        matches!(
            self,
            SavedModel::EcecVoting(_)
                | SavedModel::EcoKVoting(_)
                | SavedModel::EctsVoting(_)
                | SavedModel::EdscVoting(_)
                | SavedModel::TeaserVoting(_)
        )
    }

    fn encode(&self, e: &mut Encoder) -> Result<(), ServeError> {
        match self {
            SavedModel::Ecec(m) => m.encode_state(e),
            SavedModel::EcecVoting(a) => encode_voting(a, e, |m, e| {
                m.encode_state(e);
                Ok(())
            })?,
            SavedModel::EcoK(m) => m.encode_state(e)?,
            SavedModel::EcoKVoting(a) => encode_voting(a, e, |m, e| Ok(m.encode_state(e)?))?,
            SavedModel::Ects(m) => m.encode_state(e),
            SavedModel::EctsVoting(a) => encode_voting(a, e, |m, e| {
                m.encode_state(e);
                Ok(())
            })?,
            SavedModel::Edsc(m) => m.encode_state(e),
            SavedModel::EdscVoting(a) => encode_voting(a, e, |m, e| {
                m.encode_state(e);
                Ok(())
            })?,
            SavedModel::Teaser(m) => m.encode_state(e),
            SavedModel::TeaserVoting(a) => encode_voting(a, e, |m, e| {
                m.encode_state(e);
                Ok(())
            })?,
            SavedModel::SMini(m) => m.encode_state(e, |c, e| c.encode_state(e)),
            SavedModel::SMlstm(m) => m.encode_state(e, |c, e| c.encode_state(e)),
            SavedModel::SWeasel(m) => m.encode_state(e, |c, e| c.encode_state(e)),
            SavedModel::TrigMini(m) => m.encode_state(e, |c, e| c.encode_state(e)),
            SavedModel::TrigWeasel(m) => m.encode_state(e, |c, e| c.encode_state(e)),
            SavedModel::TrigMlstm(m) => m.encode_state(e, |c, e| c.encode_state(e)),
        }
        Ok(())
    }

    fn decode_triggered(base: TriggeredBase, d: &mut Decoder) -> Result<SavedModel, ServeError> {
        Ok(match base {
            TriggeredBase::MiniRocket => SavedModel::TrigMini(TriggeredClassifier::decode_state(
                d,
                MiniRocketClassifier::with_defaults,
                MiniRocketClassifier::decode_state,
            )?),
            TriggeredBase::Weasel => SavedModel::TrigWeasel(TriggeredClassifier::decode_state(
                d,
                WeaselClassifier::with_defaults,
                WeaselClassifier::decode_state,
            )?),
            TriggeredBase::Mlstm => SavedModel::TrigMlstm(TriggeredClassifier::decode_state(
                d,
                MlstmClassifier::with_defaults,
                MlstmClassifier::decode_state,
            )?),
        })
    }

    fn decode(algo: AlgoSpec, voting: bool, d: &mut Decoder) -> Result<SavedModel, ServeError> {
        // The `make` factories are only exercised on an explicit refit of
        // a loaded model; they use default configurations, while the
        // decoded voters/models carry the configuration they were trained
        // with.
        let model = match (algo, voting) {
            (AlgoSpec::Ecec, false) => SavedModel::Ecec(Ecec::decode_state(d)?),
            (AlgoSpec::Ecec, true) => SavedModel::EcecVoting(decode_voting(
                d,
                || Ecec::new(EcecConfig::default()),
                Ecec::decode_state,
            )?),
            (AlgoSpec::EcoK, false) => SavedModel::EcoK(EconomyK::decode_state(d)?),
            (AlgoSpec::EcoK, true) => SavedModel::EcoKVoting(decode_voting(
                d,
                || EconomyK::new(EconomyKConfig::default()),
                EconomyK::decode_state,
            )?),
            (AlgoSpec::Ects, false) => SavedModel::Ects(Ects::decode_state(d)?),
            (AlgoSpec::Ects, true) => SavedModel::EctsVoting(decode_voting(
                d,
                || Ects::new(EctsConfig { support: 0 }),
                Ects::decode_state,
            )?),
            (AlgoSpec::Edsc, false) => SavedModel::Edsc(Edsc::decode_state(d)?),
            (AlgoSpec::Edsc, true) => SavedModel::EdscVoting(decode_voting(
                d,
                || Edsc::new(EdscConfig::default()),
                Edsc::decode_state,
            )?),
            (AlgoSpec::Teaser, false) => SavedModel::Teaser(Teaser::decode_state(d)?),
            (AlgoSpec::Teaser, true) => SavedModel::TeaserVoting(decode_voting(
                d,
                || Teaser::new(TeaserConfig::default()),
                Teaser::decode_state,
            )?),
            (AlgoSpec::SMini, _) => SavedModel::SMini(Strut::decode_state(
                d,
                MiniRocketClassifier::with_defaults,
                MiniRocketClassifier::decode_state,
            )?),
            (AlgoSpec::SMlstm, _) => SavedModel::SMlstm(Strut::decode_state(
                d,
                MlstmClassifier::with_defaults,
                MlstmClassifier::decode_state,
            )?),
            (AlgoSpec::SWeasel, _) => SavedModel::SWeasel(Strut::decode_state(
                d,
                WeaselClassifier::with_defaults,
                WeaselClassifier::decode_state,
            )?),
        };
        Ok(model)
    }
}

fn scheme_tag(s: VotingScheme) -> u8 {
    match s {
        VotingScheme::Majority => 0,
        VotingScheme::Earliest => 1,
        VotingScheme::WeightedAccuracy => 2,
    }
}

fn scheme_from_tag(t: u8) -> Result<VotingScheme, CodecError> {
    match t {
        0 => Ok(VotingScheme::Majority),
        1 => Ok(VotingScheme::Earliest),
        2 => Ok(VotingScheme::WeightedAccuracy),
        other => Err(CodecError::Corrupt {
            detail: format!("unknown voting scheme tag {other}"),
        }),
    }
}

fn encode_voting<C: EarlyClassifier>(
    adapter: &VotingAdapter<C>,
    e: &mut Encoder,
    enc: impl Fn(&C, &mut Encoder) -> Result<(), ServeError>,
) -> Result<(), ServeError> {
    e.tag(scheme_tag(adapter.scheme()));
    e.usize(adapter.n_classes());
    e.f64s(adapter.weights());
    e.usize(adapter.voters().len());
    for voter in adapter.voters() {
        enc(voter, e)?;
    }
    Ok(())
}

fn decode_voting<C: EarlyClassifier>(
    d: &mut Decoder,
    make: impl Fn() -> C + Send + Sync + 'static,
    dec: impl Fn(&mut Decoder) -> Result<C, CodecError>,
) -> Result<VotingAdapter<C>, CodecError> {
    let scheme = scheme_from_tag(d.tag()?)?;
    let n_classes = d.usize()?;
    let weights = d.f64s()?;
    let n = d.usize()?;
    let mut voters = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        voters.push(dec(d)?);
    }
    Ok(VotingAdapter::from_fitted(
        make, scheme, voters, weights, n_classes,
    ))
}

/// A fitted model plus its serving metadata — the unit the store saves
/// and loads.
pub struct StoredModel {
    /// Serving metadata (algorithm, shape, class names).
    pub meta: ModelMeta,
    /// The fitted model.
    pub model: SavedModel,
}

impl StoredModel {
    /// The model as a trait object.
    pub fn classifier(&self) -> &(dyn EarlyClassifier + Sync) {
        self.model.classifier()
    }

    /// Serializes into the versioned container format: magic, version,
    /// then one CRC64-checksummed section each for the metadata and the
    /// model payload.
    ///
    /// # Errors
    /// [`ServeError::Model`] when the model's configuration cannot be
    /// persisted (e.g. an ECONOMY-K base other than naive Bayes).
    pub fn to_bytes(&self) -> Result<Vec<u8>, ServeError> {
        if self.meta.trigger.is_some() != self.model.fitted_trigger().is_some() {
            return Err(ServeError::Format(
                "metadata trigger descriptor and payload shape disagree".into(),
            ));
        }
        let mut e = Encoder::new();
        e.u64(MAGIC);
        e.u64(FORMAT_VERSION);
        let mut meta = Encoder::new();
        self.meta.encode(&mut meta);
        meta.bool(self.model.is_voting());
        write_section(&mut e, &meta.into_bytes());
        let mut payload = Encoder::new();
        self.model.encode(&mut payload)?;
        write_section(&mut e, &payload.into_bytes());
        // Trigger-wrapped models get a dedicated section for the fitted
        // trigger + calibration map, CRC-guarded independently of the
        // (much larger) snapshot payload. It is authoritative on load.
        if let Some(trigger) = self.model.fitted_trigger() {
            let mut t = Encoder::new();
            encode_trigger(&mut t, trigger);
            write_section(&mut e, &t.into_bytes());
        }
        Ok(e.into_bytes())
    }

    /// Writes the model file at `path` crash-consistently: the bytes go
    /// to a temp file first, the previous model (if any) is kept as
    /// `<name>.prev` — the last-good copy [`load_resilient`] falls back
    /// to — and the temp file is renamed into place.
    ///
    /// The primary file is never absent or partial at any point: the
    /// `.prev` copy is staged through its own temp file and both
    /// updates land via rename, so a concurrent [`load_resilient`]
    /// always reads either the old version or the new one — never a
    /// missing file or a torn write.
    ///
    /// # Errors
    /// Encoding or filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ServeError> {
        let path = path.as_ref();
        let bytes = self.to_bytes()?;
        let tmp = sibling(path, "tmp");
        std::fs::write(&tmp, &bytes)?;
        if path.exists() {
            // Demote the current model by *copy*, not by moving it:
            // renaming the primary away would leave a window where a
            // concurrent reader finds no file at all.
            let prev_tmp = sibling(path, "prev.tmp");
            std::fs::copy(path, &prev_tmp)?;
            std::fs::rename(&prev_tmp, sibling(path, "prev"))?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Decodes the container format, verifying each section's CRC64
    /// before touching its contents.
    ///
    /// # Errors
    /// Wrong magic/version, unknown algorithm, checksum mismatch, or
    /// payload corruption.
    pub fn from_bytes(bytes: &[u8]) -> Result<StoredModel, ServeError> {
        let mut d = Decoder::new(bytes);
        let magic = d.u64()?;
        if magic != MAGIC {
            return Err(ServeError::Format(
                "not an etsc model file (bad magic)".into(),
            ));
        }
        let version = d.u64()?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(ServeError::Format(format!(
                "model format version {version} is not supported (this build reads \
                 {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
            )));
        }
        let meta_bytes = read_section(&mut d, "meta")?;
        let mut md = Decoder::new(meta_bytes);
        let meta = ModelMeta::decode(&mut md, version)?;
        let voting = md.bool()?;
        if !md.is_exhausted() {
            return Err(ServeError::Format(format!(
                "{} trailing bytes after the model metadata",
                md.remaining()
            )));
        }
        if voting && !meta.algo.univariate_only() {
            return Err(ServeError::Format(format!(
                "{} is natively multivariate; a voting payload is inconsistent",
                meta.algo.name()
            )));
        }
        let payload = read_section(&mut d, "payload")?;
        let mut pd = Decoder::new(payload);
        let mut model = match &meta.trigger {
            Some(desc) => SavedModel::decode_triggered(desc.base, &mut pd)?,
            None => SavedModel::decode(meta.algo, voting, &mut pd)?,
        };
        if !pd.is_exhausted() {
            return Err(ServeError::Format(format!(
                "{} trailing bytes inside the model payload section",
                pd.remaining()
            )));
        }
        if meta.trigger.is_some() {
            // The dedicated trigger section is authoritative: decode it
            // under its own CRC and install it over whatever the payload
            // carried.
            let trigger_bytes = read_section(&mut d, "trigger")?;
            let mut td = Decoder::new(trigger_bytes);
            let trigger = decode_trigger(&mut td)?;
            if !td.is_exhausted() {
                return Err(ServeError::Format(format!(
                    "{} trailing bytes inside the trigger section",
                    td.remaining()
                )));
            }
            model.install_trigger(trigger);
        }
        if !d.is_exhausted() {
            return Err(ServeError::Format(format!(
                "{} trailing bytes after the model payload",
                d.remaining()
            )));
        }
        Ok(StoredModel { meta, model })
    }

    /// Reads a model file written by [`StoredModel::save`].
    ///
    /// # Errors
    /// Filesystem or decoding failures.
    pub fn load(path: impl AsRef<Path>) -> Result<StoredModel, ServeError> {
        let bytes = std::fs::read(path.as_ref())?;
        StoredModel::from_bytes(&bytes)
    }
}

/// `len · bytes · crc64` — one checksummed container section.
fn write_section(e: &mut Encoder, bytes: &[u8]) {
    e.usize(bytes.len());
    e.raw(bytes);
    e.u64(crc64(bytes));
}

/// Reads and CRC-verifies one container section, returning its bytes.
fn read_section<'a>(d: &mut Decoder<'a>, section: &'static str) -> Result<&'a [u8], ServeError> {
    let len = d.usize()?;
    if len > d.remaining() {
        return Err(ServeError::Format(format!(
            "{section} section claims {len} bytes but only {} remain",
            d.remaining()
        )));
    }
    let bytes = d.raw(len, "section bytes")?;
    let expected = d.u64()?;
    if crc64(bytes) != expected {
        return Err(ServeError::Checksum { section });
    }
    Ok(bytes)
}

/// `model.bin` → `model.bin.<suffix>` (the full file name is kept, so
/// `.prev`/`.quarantine`/`.tmp` siblings never collide with a real
/// model's extension).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("model"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".");
    name.push(suffix);
    path.with_file_name(name)
}

/// What [`load_resilient`] did to produce a servable model.
pub struct LoadOutcome {
    /// The loaded (or recovered) model.
    pub model: StoredModel,
    /// `true` when the primary file was corrupt and the `.prev`
    /// last-good copy is being served instead.
    pub recovered_from_prev: bool,
    /// Where the corrupt primary file was quarantined, if it was.
    pub quarantined: Option<PathBuf>,
    /// Human-readable descriptions of everything degraded about this
    /// load; empty on a clean load.
    pub warnings: Vec<String>,
}

/// Loads `path`, degrading gracefully on corruption: a file that fails
/// to decode (checksum mismatch, truncation, bad payload) is renamed to
/// `<name>.quarantine` — preserving the evidence while making room for
/// a healthy rewrite — and the `<name>.prev` last-good copy written by
/// [`StoredModel::save`] is served instead, with warnings describing
/// the degradation.
///
/// # Errors
/// Filesystem failures (including a missing primary file) are
/// propagated as-is; decode failures are propagated only when no
/// usable `.prev` fallback exists.
pub fn load_resilient(path: impl AsRef<Path>) -> Result<LoadOutcome, ServeError> {
    let path = path.as_ref();
    let primary = match StoredModel::load(path) {
        Ok(model) => {
            return Ok(LoadOutcome {
                model,
                recovered_from_prev: false,
                quarantined: None,
                warnings: Vec::new(),
            })
        }
        // A missing or unreadable file is an operator error, not
        // corruption — nothing to quarantine.
        Err(ServeError::Io(e)) => return Err(ServeError::Io(e)),
        Err(e) => e,
    };
    let mut warnings = vec![format!(
        "model {} failed to load: {primary}",
        path.display()
    )];
    let quarantine = sibling(path, "quarantine");
    let quarantined = match std::fs::rename(path, &quarantine) {
        Ok(()) => {
            warnings.push(format!(
                "quarantined the corrupt file as {}",
                quarantine.display()
            ));
            Some(quarantine)
        }
        Err(e) => {
            warnings.push(format!("could not quarantine {}: {e}", path.display()));
            None
        }
    };
    let prev = sibling(path, "prev");
    match StoredModel::load(&prev) {
        Ok(model) => {
            warnings.push(format!(
                "serving the last-good model from {}",
                prev.display()
            ));
            Ok(LoadOutcome {
                model,
                recovered_from_prev: true,
                quarantined,
                warnings,
            })
        }
        Err(_) => Err(primary),
    }
}

/// Replicates the model at `src` to every destination path, for
/// fanning one versioned store entry out to a shard fleet: the source
/// is read once, integrity-verified through a full decode (a corrupt
/// master must not be replicated), and each destination is written
/// with [`StoredModel::save`]'s crash-consistent discipline — so every
/// replica also gains a `.prev` last-good copy when it overwrites an
/// older version.
///
/// # Errors
/// Filesystem failures, or a source that fails integrity verification.
pub fn replicate(
    src: impl AsRef<Path>,
    dests: &[impl AsRef<Path>],
) -> Result<StoredModel, ServeError> {
    let src = src.as_ref();
    let model = StoredModel::load(src)?;
    for dest in dests {
        let dest = dest.as_ref();
        if dest == src {
            continue;
        }
        model.save(dest)?;
    }
    Ok(model)
}

/// Trains `algo` on `data` with the concrete types the store can
/// persist — the same construction rules as
/// [`AlgoSpec::build`] (voting adapter on multivariate data, TEASER's
/// dataset-dependent `S`, S-MLSTM's fixed truncation grid).
///
/// # Errors
/// Training failures, including budget DNFs.
pub fn fit_model(
    algo: AlgoSpec,
    data: &Dataset,
    config: &RunConfig,
) -> Result<StoredModel, ServeError> {
    let multivariate = data.vars() > 1;
    let teaser_s = if data.name() == "Biological" || data.name() == "Maritime" {
        config.teaser_prefixes_new
    } else {
        config.teaser_prefixes_ucr
    };
    let c = config.clone();
    let model = match algo {
        AlgoSpec::Ecec => fit_univariate(
            data,
            multivariate,
            move || Ecec::new(c.ecec_config()),
            SavedModel::Ecec,
            SavedModel::EcecVoting,
        )?,
        AlgoSpec::EcoK => fit_univariate(
            data,
            multivariate,
            move || EconomyK::new(c.economy_config()),
            SavedModel::EcoK,
            SavedModel::EcoKVoting,
        )?,
        AlgoSpec::Ects => fit_univariate(
            data,
            multivariate,
            || Ects::new(EctsConfig { support: 0 }),
            SavedModel::Ects,
            SavedModel::EctsVoting,
        )?,
        AlgoSpec::Edsc => fit_univariate(
            data,
            multivariate,
            move || Edsc::new(c.edsc_config()),
            SavedModel::Edsc,
            SavedModel::EdscVoting,
        )?,
        AlgoSpec::Teaser => fit_univariate(
            data,
            multivariate,
            move || Teaser::new(c.teaser_config(teaser_s)),
            SavedModel::Teaser,
            SavedModel::TeaserVoting,
        )?,
        AlgoSpec::SMini => {
            let mut m = Strut::s_mini_with(
                c.strut_config(),
                etsc_core::full::MiniRocketClassifierConfig {
                    transform: c.minirocket_config(),
                    ..etsc_core::full::MiniRocketClassifierConfig::default()
                },
            );
            m.fit(data)?;
            SavedModel::SMini(m)
        }
        AlgoSpec::SMlstm => {
            let mut m = Strut::s_mlstm_with(
                etsc_core::StrutConfig {
                    search: etsc_core::TruncationSearch::FixedGrid(vec![
                        0.05, 0.2, 0.4, 0.6, 0.8, 1.0,
                    ]),
                    ..c.strut_config()
                },
                etsc_core::full::MlstmClassifierConfig {
                    network: c.mlstm_config(),
                    lstm_grid: c.mlstm_lstm_grid.clone(),
                },
            );
            m.fit(data)?;
            SavedModel::SMlstm(m)
        }
        AlgoSpec::SWeasel => {
            let mut m = Strut::s_weasel_with(
                c.strut_config(),
                etsc_core::full::WeaselClassifierConfig {
                    weasel: c.weasel_config(),
                    logistic: c.logistic_config(),
                },
            );
            m.fit(data)?;
            SavedModel::SWeasel(m)
        }
    };
    Ok(StoredModel {
        meta: ModelMeta {
            algo,
            dataset: data.name().to_owned(),
            vars: data.vars(),
            train_len: data.max_len(),
            class_names: data.class_names().to_vec(),
            prior_label: majority_label(data),
            generation: 1,
            trigger: None,
        },
        model,
    })
}

/// The STRUT slot a trigger-wrapped model's [`ModelMeta::algo`] holds —
/// the nearest `AlgoSpec` relative, so version-agnostic consumers
/// (batch sizing, display fallbacks) keep working.
fn pseudo_slot(base: TriggeredBase) -> AlgoSpec {
    match base {
        TriggeredBase::MiniRocket => AlgoSpec::SMini,
        TriggeredBase::Weasel => AlgoSpec::SWeasel,
        TriggeredBase::Mlstm => AlgoSpec::SMlstm,
    }
}

/// Trains a trigger-wrapped snapshot ensemble of `base` under `spec`,
/// with the base hyper-parameters derived from `config` exactly as the
/// evaluation matrix derives them — the `train --trigger` path.
///
/// # Errors
/// Training failures.
pub fn fit_triggered_model(
    base: TriggeredBase,
    spec: &TriggerSpec,
    data: &Dataset,
    config: &RunConfig,
) -> Result<StoredModel, ServeError> {
    let tcfg = TriggeredConfig {
        seed: config.seed,
        ..TriggeredConfig::default()
    };
    let c = config.clone();
    let model = match base {
        TriggeredBase::MiniRocket => {
            let mut m = TriggeredClassifier::new(base.name(), tcfg, spec.clone(), move || {
                MiniRocketClassifier::new(MiniRocketClassifierConfig {
                    transform: c.minirocket_config(),
                    ..MiniRocketClassifierConfig::default()
                })
            });
            m.fit(data)?;
            SavedModel::TrigMini(m)
        }
        TriggeredBase::Weasel => {
            let mut m = TriggeredClassifier::new(base.name(), tcfg, spec.clone(), move || {
                WeaselClassifier::new(WeaselClassifierConfig {
                    weasel: c.weasel_config(),
                    logistic: c.logistic_config(),
                })
            });
            m.fit(data)?;
            SavedModel::TrigWeasel(m)
        }
        TriggeredBase::Mlstm => {
            let mut m = TriggeredClassifier::new(base.name(), tcfg, spec.clone(), move || {
                MlstmClassifier::new(MlstmClassifierConfig {
                    network: c.mlstm_config(),
                    lstm_grid: c.mlstm_lstm_grid.clone(),
                })
            });
            m.fit(data)?;
            SavedModel::TrigMlstm(m)
        }
    };
    Ok(StoredModel {
        meta: ModelMeta {
            algo: pseudo_slot(base),
            dataset: data.name().to_owned(),
            vars: data.vars(),
            train_len: data.max_len(),
            class_names: data.class_names().to_vec(),
            prior_label: majority_label(data),
            generation: 1,
            trigger: Some(TriggerDesc {
                base,
                spec: spec.canonical(),
            }),
        },
        model,
    })
}

/// Most frequent training label — the prior-class verdict a deadline
/// fallback commits to when a session must answer without a decision.
fn majority_label(data: &Dataset) -> usize {
    let mut counts = vec![0usize; data.n_classes()];
    for i in 0..data.len() {
        let label = data.label(i);
        if label < counts.len() {
            counts[label] += 1;
        }
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| c)
        .map_or(0, |(label, _)| label)
}

fn fit_univariate<C: EarlyClassifier + Send + 'static>(
    data: &Dataset,
    multivariate: bool,
    make: impl Fn() -> C + Send + Sync + 'static,
    plain: impl FnOnce(C) -> SavedModel,
    voting: impl FnOnce(VotingAdapter<C>) -> SavedModel,
) -> Result<SavedModel, ServeError> {
    if multivariate {
        let mut adapter = VotingAdapter::new(make);
        adapter.fit(data)?;
        Ok(voting(adapter))
    } else {
        let mut model = make();
        model.fit(data)?;
        Ok(plain(model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_datasets::{GenOptions, PaperDataset};

    fn tiny_config() -> RunConfig {
        RunConfig {
            folds: 2,
            ecec_prefixes: 4,
            teaser_prefixes_ucr: 4,
            teaser_prefixes_new: 4,
            edsc_candidates: 60,
            weasel_features: 32,
            weasel_windows: 2,
            logistic_epochs: 10,
            minirocket_features: 84,
            mlstm_epochs: 1,
            mlstm_filters: [2, 3, 2],
            mlstm_lstm_grid: vec![2],
            ..RunConfig::default()
        }
    }

    fn tiny_dataset() -> Dataset {
        PaperDataset::PowerCons.generate(GenOptions {
            height_scale: 0.1,
            length_scale: 0.2,
            seed: 9,
        })
    }

    #[test]
    fn roundtrip_preserves_predictions_univariate() {
        let data = tiny_dataset();
        let stored = fit_model(AlgoSpec::Ects, &data, &tiny_config()).unwrap();
        let bytes = stored.to_bytes().unwrap();
        let loaded = StoredModel::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.meta, stored.meta);
        for inst in data.instances() {
            let a = stored.classifier().predict_early(inst).unwrap();
            let b = loaded.classifier().predict_early(inst).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn roundtrip_preserves_predictions_voting() {
        let data = PaperDataset::BasicMotions.generate(GenOptions {
            height_scale: 0.25,
            length_scale: 0.2,
            seed: 9,
        });
        assert!(data.vars() > 1);
        let stored = fit_model(AlgoSpec::Ects, &data, &tiny_config()).unwrap();
        assert!(stored.model.is_voting());
        let bytes = stored.to_bytes().unwrap();
        let loaded = StoredModel::from_bytes(&bytes).unwrap();
        for inst in data.instances() {
            let a = stored.classifier().predict_early(inst).unwrap();
            let b = loaded.classifier().predict_early(inst).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("etsc-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ects.model");
        let data = tiny_dataset();
        let stored = fit_model(AlgoSpec::Ects, &data, &tiny_config()).unwrap();
        stored.save(&path).unwrap();
        let loaded = StoredModel::load(&path).unwrap();
        assert_eq!(loaded.meta.algo, AlgoSpec::Ects);
        assert_eq!(loaded.meta.class_names, data.class_names());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_truncation_are_rejected() {
        let data = tiny_dataset();
        let stored = fit_model(AlgoSpec::Ects, &data, &tiny_config()).unwrap();
        let mut bytes = stored.to_bytes().unwrap();
        assert!(matches!(
            StoredModel::from_bytes(&bytes[..bytes.len() - 3]),
            Err(ServeError::Codec(_))
        ));
        bytes[0] ^= 0xff;
        assert!(matches!(
            StoredModel::from_bytes(&bytes),
            Err(ServeError::Format(_))
        ));
    }

    #[test]
    fn triggered_model_roundtrips_with_trigger_section() {
        let data = tiny_dataset();
        let spec = TriggerSpec::parse("calibrated:cal=platt,threshold=0.7").unwrap();
        let stored =
            fit_triggered_model(TriggeredBase::Weasel, &spec, &data, &tiny_config()).unwrap();
        assert_eq!(stored.meta.algo_label(), "WEASEL+calibrated");
        assert!(stored.model.fitted_trigger().is_some());
        let bytes = stored.to_bytes().unwrap();
        let loaded = StoredModel::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.meta, stored.meta);
        assert_eq!(loaded.model.fitted_trigger(), stored.model.fitted_trigger());
        for inst in data.instances() {
            let a = stored.classifier().predict_early(inst).unwrap();
            let b = loaded.classifier().predict_early(inst).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn corrupt_trigger_section_is_a_checksum_error() {
        let data = tiny_dataset();
        let spec = TriggerSpec::parse("threshold:0.8").unwrap();
        let stored =
            fit_triggered_model(TriggeredBase::Weasel, &spec, &data, &tiny_config()).unwrap();
        let mut bytes = stored.to_bytes().unwrap();
        // The trigger section is last; flip a bit inside its CRC.
        let n = bytes.len();
        bytes[n - 4] ^= 0x01;
        assert!(matches!(
            StoredModel::from_bytes(&bytes),
            Err(ServeError::Checksum { section: "trigger" })
        ));
    }

    #[test]
    fn version_3_files_still_load_as_untriggered() {
        let data = tiny_dataset();
        let stored = fit_model(AlgoSpec::Ects, &data, &tiny_config()).unwrap();
        // Hand-roll a version-3 container: identical sections except
        // the meta carries no trigger descriptor byte.
        let mut e = Encoder::new();
        e.u64(MAGIC);
        e.u64(3);
        let mut meta = Encoder::new();
        meta.str(stored.meta.algo.name());
        meta.str(&stored.meta.dataset);
        meta.usize(stored.meta.vars);
        meta.usize(stored.meta.train_len);
        meta.usize(stored.meta.class_names.len());
        for name in &stored.meta.class_names {
            meta.str(name);
        }
        meta.usize(stored.meta.prior_label);
        meta.u64(stored.meta.generation);
        meta.bool(false); // voting
        write_section(&mut e, &meta.into_bytes());
        let mut payload = Encoder::new();
        stored.model.encode(&mut payload).unwrap();
        write_section(&mut e, &payload.into_bytes());
        let loaded = StoredModel::from_bytes(&e.into_bytes()).unwrap();
        assert_eq!(loaded.meta, stored.meta);
        assert!(loaded.meta.trigger.is_none());
        for inst in data.instances().iter().take(4) {
            let a = stored.classifier().predict_early(inst).unwrap();
            let b = loaded.classifier().predict_early(inst).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn newer_version_is_rejected() {
        let data = tiny_dataset();
        let stored = fit_model(AlgoSpec::Ects, &data, &tiny_config()).unwrap();
        let mut bytes = stored.to_bytes().unwrap();
        // The version field is the second u64.
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            StoredModel::from_bytes(&bytes),
            Err(ServeError::Format(_))
        ));
    }

    #[test]
    fn bit_flip_in_payload_is_a_checksum_error() {
        let data = tiny_dataset();
        let stored = fit_model(AlgoSpec::Ects, &data, &tiny_config()).unwrap();
        let mut bytes = stored.to_bytes().unwrap();
        // Flip a bit well inside the payload section, past the header
        // and the small metadata section.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            StoredModel::from_bytes(&bytes),
            Err(ServeError::Checksum { .. })
        ));
    }

    #[test]
    fn majority_label_is_recorded_as_prior() {
        let data = tiny_dataset();
        let stored = fit_model(AlgoSpec::Ects, &data, &tiny_config()).unwrap();
        assert!(stored.meta.prior_label < data.n_classes());
        let mut counts = vec![0usize; data.n_classes()];
        for i in 0..data.len() {
            counts[data.label(i)] += 1;
        }
        assert_eq!(
            counts[stored.meta.prior_label],
            *counts.iter().max().unwrap()
        );
    }

    #[test]
    fn save_keeps_previous_model_and_load_resilient_recovers() {
        let dir = std::env::temp_dir().join("etsc-serve-test-resilient");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ects.model");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(sibling(&path, "prev")).ok();
        std::fs::remove_file(sibling(&path, "quarantine")).ok();

        let data = tiny_dataset();
        let stored = fit_model(AlgoSpec::Ects, &data, &tiny_config()).unwrap();
        stored.save(&path).unwrap();
        // A clean load touches nothing.
        let clean = load_resilient(&path).unwrap();
        assert!(!clean.recovered_from_prev);
        assert!(clean.warnings.is_empty());

        // A second save retains the first as `.prev`.
        stored.save(&path).unwrap();
        assert!(sibling(&path, "prev").exists());

        // Corrupt the primary: load_resilient quarantines it and
        // serves the last-good copy.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let outcome = load_resilient(&path).unwrap();
        assert!(outcome.recovered_from_prev);
        assert_eq!(
            outcome.quarantined.as_deref(),
            Some(sibling(&path, "quarantine").as_path())
        );
        assert!(sibling(&path, "quarantine").exists());
        assert!(!path.exists());
        assert!(!outcome.warnings.is_empty());
        assert_eq!(outcome.model.meta, stored.meta);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_resilient_without_fallback_propagates_the_decode_error() {
        let dir = std::env::temp_dir().join("etsc-serve-test-nofallback");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ects.model");
        std::fs::write(&path, b"definitely not a model").unwrap();
        assert!(load_resilient(&path).is_err());
        // The corrupt file was still quarantined for inspection.
        assert!(sibling(&path, "quarantine").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
