//! Dataset replay: measure the Figure-13 ratio live.
//!
//! [`replay_dataset`] pushes every instance of a dataset through the
//! [`crate::scheduler`] as a concurrent streaming session and derives
//! the *measured* online-feasibility ratio
//!
//! ```text
//! ratio = mean decision latency / (obs_frequency · batch_len)
//! ```
//!
//! — the same quantity [`etsc_eval::online::online_cell`] computes from
//! offline cross-validation timings, but with the latency actually
//! observed while serving. Both sides share the
//! [`etsc_eval::online::feasible_ratio`] boundary convention (strictly
//! below 1.0), so the live verdict and the heatmap verdict can only
//! disagree when the measured latency itself differs, never on the
//! boundary.

use etsc_core::EtscError;
use etsc_data::Dataset;
use etsc_eval::experiment::AlgoSpec;
use etsc_eval::online::feasible_ratio;

use crate::scheduler::{serve_sessions, SchedulerConfig, ServeReport};
use crate::store::StoredModel;

/// Replay parameters.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Seconds between consecutive observations of the stream being
    /// simulated (Figure 13's parenthetical frequency).
    pub obs_frequency_secs: f64,
    /// Re-evaluation granularity in points; use
    /// [`AlgoSpec::decision_batch`] for the paper's ECEC/TEASER batch
    /// credit.
    pub batch: usize,
    /// Scheduler (workers, queue, backpressure) configuration.
    pub scheduler: SchedulerConfig,
}

/// Everything one replay measured.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Replayed algorithm.
    pub algo: AlgoSpec,
    /// Dataset name.
    pub dataset: String,
    /// Sessions served (= instances replayed).
    pub sessions: usize,
    /// Fraction of sessions whose decision matched the true label.
    pub accuracy: f64,
    /// Mean earliness over committed decisions.
    pub earliness: f64,
    /// Mean decision latency, seconds per re-evaluation.
    pub mean_latency_secs: f64,
    /// Median decision latency, seconds.
    pub p50_latency_secs: f64,
    /// 99th-percentile decision latency, seconds.
    pub p99_latency_secs: f64,
    /// Committed decisions per wall-clock second.
    pub decisions_per_sec: f64,
    /// The measured Figure-13 ratio; `None` when nothing was measured
    /// (no evaluations).
    pub measured_ratio: Option<f64>,
    /// Observation interval the ratio was computed against (s/obs).
    pub obs_frequency_secs: f64,
    /// Decision batch length the ratio was computed against.
    pub batch_len: usize,
    /// The raw scheduler report (shed/dropped counts, histograms).
    pub report: ServeReport,
}

impl ReplayOutcome {
    /// The live feasibility verdict under the shared boundary
    /// convention; `None` when no ratio was measured.
    pub fn feasible(&self) -> Option<bool> {
        self.measured_ratio.map(feasible_ratio)
    }

    /// Plain-text rendering for the CLI.
    pub fn render(&self) -> String {
        let verdict = match self.feasible() {
            Some(true) => "feasible (ratio < 1)",
            Some(false) => "infeasible (ratio >= 1)",
            None => "unmeasured",
        };
        let mut text = format!(
            "{} on {} — {} sessions\n\
             decisions      {} committed, {} dropped, {} observations shed\n\
             accuracy       {:.4}\n\
             earliness      {:.4}\n\
             latency        mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms\n\
             throughput     {:.0} decisions/s\n\
             online ratio   {} at {} s/obs x batch {} -> {}\n",
            self.algo.name(),
            self.dataset,
            self.sessions,
            self.report.committed(),
            self.report.dropped_decisions,
            self.report.shed_observations,
            self.accuracy,
            self.earliness,
            self.mean_latency_secs * 1000.0,
            self.p50_latency_secs * 1000.0,
            self.p99_latency_secs * 1000.0,
            self.decisions_per_sec,
            self.measured_ratio
                .map_or("n/a".to_owned(), |r| format!("{r:.4}")),
            self.obs_frequency_secs,
            self.batch_len,
            verdict,
        );
        let r = &self.report;
        if r.worker_panics + r.worker_restarts + r.deadline_breaches + r.fallbacks > 0
            || r.fault_schedule.is_some()
        {
            text.push_str(&format!(
                "degraded       {} worker panics, {} restarts, {} deadline breaches, {} fallback decisions, {} starved\n",
                r.worker_panics,
                r.worker_restarts,
                r.deadline_breaches,
                r.fallbacks,
                r.starved(),
            ));
        }
        if let Some(schedule) = &r.fault_schedule {
            text.push_str(&format!(
                "faults         injected {} panics, {} delays, {} NaN points{}\n",
                schedule.injected_panics(),
                schedule.injected_delays(),
                schedule.injected_nans(),
                if schedule.corrupts_model() {
                    ", model corruption"
                } else {
                    ""
                },
            ));
        }
        text
    }
}

/// Replays every instance of `data` through `model`'s scheduler and
/// measures accuracy, latency, and the live Figure-13 ratio.
///
/// # Errors
/// Scheduler infrastructure failures; per-session errors land in the
/// outcome's report instead.
pub fn replay_dataset(
    stored: &StoredModel,
    data: &Dataset,
    options: &ReplayOptions,
) -> Result<ReplayOutcome, EtscError> {
    let mut scheduler = options.scheduler.clone();
    if let Some(deadline) = scheduler.deadline.as_mut() {
        // The prior-class fallback verdict comes from the stored
        // model's training distribution, not from the caller.
        deadline.prior_label = stored.meta.prior_label;
    }
    let report = serve_sessions(
        stored.classifier(),
        data.instances(),
        options.batch,
        &scheduler,
    )?;
    let mut correct = 0usize;
    let mut committed = 0usize;
    let mut earliness_sum = 0.0;
    for (i, decision) in report.decisions.iter().enumerate() {
        if let Some(p) = decision {
            committed += 1;
            if p.label == data.label(i) {
                correct += 1;
            }
            earliness_sum += p.prefix_len as f64 / data.instance(i).len().max(1) as f64;
        }
    }
    let mut eval_latency = report.eval_latency.clone();
    let mean = eval_latency.mean().unwrap_or(0.0);
    let measured_ratio = eval_latency
        .mean()
        .map(|m| m / (options.obs_frequency_secs * options.batch.max(1) as f64));
    Ok(ReplayOutcome {
        algo: stored.meta.algo,
        dataset: data.name().to_owned(),
        sessions: data.len(),
        accuracy: if committed > 0 {
            correct as f64 / committed as f64
        } else {
            0.0
        },
        earliness: if committed > 0 {
            earliness_sum / committed as f64
        } else {
            0.0
        },
        mean_latency_secs: mean,
        p50_latency_secs: eval_latency.p50().unwrap_or(0.0),
        p99_latency_secs: eval_latency.p99().unwrap_or(0.0),
        decisions_per_sec: report.decisions_per_sec(),
        measured_ratio,
        obs_frequency_secs: options.obs_frequency_secs,
        batch_len: options.batch.max(1),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Backpressure;
    use crate::store::fit_model;
    use etsc_datasets::{GenOptions, PaperDataset};
    use etsc_eval::experiment::RunConfig;

    fn stored() -> (StoredModel, Dataset) {
        let data = PaperDataset::PowerCons.generate(GenOptions {
            height_scale: 0.1,
            length_scale: 0.2,
            seed: 5,
        });
        let config = RunConfig::fast();
        let model = fit_model(AlgoSpec::Ects, &data, &config).unwrap();
        (model, data)
    }

    #[test]
    fn replay_reports_ratio_and_verdict() {
        let (model, data) = stored();
        // Generous observation interval: trivially feasible.
        let slow = replay_dataset(
            &model,
            &data,
            &ReplayOptions {
                obs_frequency_secs: 1000.0,
                batch: 1,
                scheduler: SchedulerConfig {
                    workers: 2,
                    queue_capacity: 64,
                    backpressure: Backpressure::Block,
                    ..SchedulerConfig::default()
                },
            },
        )
        .unwrap();
        assert_eq!(slow.sessions, data.len());
        assert_eq!(slow.report.dropped_decisions, 0);
        assert_eq!(slow.feasible(), Some(true));
        assert!(slow.accuracy > 0.0);
        let text = slow.render();
        assert!(text.contains("feasible"), "{text}");

        // Impossible observation interval: the same latencies are
        // infeasible.
        let fast = replay_dataset(
            &model,
            &data,
            &ReplayOptions {
                obs_frequency_secs: 1e-12,
                batch: 1,
                scheduler: SchedulerConfig::default(),
            },
        )
        .unwrap();
        assert_eq!(fast.feasible(), Some(false));
    }
}
