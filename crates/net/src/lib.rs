//! # etsc-net
//!
//! The network edge of the streaming inference stack: everything the
//! in-process `etsc-serve` scheduler can do, over a TCP socket, with
//! zero dependencies beyond `std::net`.
//!
//! * [`proto`] — the versioned, length-prefixed, CRC-protected binary
//!   wire protocol (Hello/OpenSession/Observe/Decision/CloseSession/
//!   Shutdown/Error) with hard frame-size and queue-depth limits;
//!   rev 1 adds client deadlines and priorities on open/observe and
//!   retry classification with `retry_after_ms` hints on errors; rev 2
//!   adds the pipelined batch frames (`ObserveBatch`/`DecisionBatch`)
//!   — the minor revision is negotiated down to the common minimum at
//!   `Hello`, so rev-0 and rev-1 peers still interoperate;
//! * [`poll`] — a hand-rolled epoll readiness poller: level-triggered,
//!   a self-pipe waker for cross-thread nudges, and reserved tokens
//!   for the waker and listener;
//! * [`server`] — a readiness-driven TCP server: a fixed pool of
//!   event-loop threads, each owning a [`poll::Poller`] over its share
//!   of nonblocking connections (dealt round-robin at accept), reads
//!   drained to `EWOULDBLOCK`, vectored writes from pooled buffers,
//!   bridging into [`etsc_serve::StreamSession`] (deadlines, fallback
//!   policies, Block/Shed backpressure), overload control when
//!   [`AdmissionConfig`] is armed — CoDel-style shedding on measured
//!   sojourn, per-client token-bucket open limits, the brownout
//!   degradation ladder, and expired-deadline discard of queued dead
//!   work — seeded server-side fault injection, `etsc-obs`
//!   instrumentation, and graceful drain — in-flight sessions
//!   answered, new connections refused;
//! * [`client`] — a blocking client library multiplexing many sessions
//!   over one connection, with reconnect-and-resume of open sessions,
//!   budgeted jittered retries honouring the server's `retry_after_ms`
//!   hints, and the client-side fault hooks (torn frames, slow-loris
//!   writes, mid-session disconnects) the chaos suite drives;
//! * [`loadgen`] — the load-generator core shared by the `loadgen`
//!   bench binary and the chaos tests: replays dataset streams over N
//!   connections at a target rate — batch replay or a sliding
//!   in-flight window for overload ramps — and reports achieved
//!   decisions/sec, shed/expired classification, and end-to-end
//!   p50/p99 latency;
//! * [`router`] — a session-affine router fronting N shard servers:
//!   consistent-hash placement with virtual nodes, health-probed shard
//!   pools with per-shard circuit breakers, planned-drain detection,
//!   blue/green generation swaps, and session migration off dead
//!   shards via handoff + resume + buffered-prefix replay;
//! * [`fleet`] — the single-process fleet harness: N shards behind a
//!   router, driven by the load generator, with the seeded shard-level
//!   faults (kill, blackhole, slow shard) the chaos suite asserts
//!   against;
//! * [`options`] — the embedding API: validated [`ServerBuilder`] /
//!   [`ClientBuilder`] / [`RouterBuilder`] sharing a [`NetOptions`]
//!   core, and [`Endpoint`] as the unified front door
//!   (`serve`/`route`/`connect`/`fleet`). The flat-field config
//!   structs remain the runtime representation behind the builders.
//!
//! The paper's Figure 13 asks whether an algorithm's testing time per
//! decision keeps up with the stream's observation frequency; this
//! crate asks the production version of the same question — whether it
//! keeps up *measured over a real socket*, framing, checksums, queues
//! and all.

pub mod client;
pub mod fleet;
pub mod loadgen;
pub mod options;
pub mod poll;
pub mod proto;
pub mod router;
pub mod server;

pub use client::{reconnect_delay, Client, ClientConfig, Decision, NetError};
pub use fleet::{run_fleet, FleetOptions, FleetReport, ShardReport};
pub use loadgen::{run_loadgen, LoadReport, LoadgenOptions};
pub use options::{ClientBuilder, ConfigError, Endpoint, NetOptions, RouterBuilder, ServerBuilder};
pub use poll::{Event, Poller, WAKE_TOKEN};
pub use proto::{
    encode_frame, encode_frame_into, write_frame, BatchDecision, BufferPool, DecisionKind,
    ErrorCode, Frame, FrameDecoder, ModelInfo, ProtoError, RetryClass, BATCH_MINOR, HEADER_BYTES,
    MAX_FRAME_BYTES, MAX_PENDING_FRAMES, PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL, PROTO_MINOR,
    PROTO_VERSION,
};
pub use router::{Router, RouterConfig, RouterStats, ShardSnapshot};
pub use server::{AdmissionConfig, NetServer, ServerConfig, ServerStats};
